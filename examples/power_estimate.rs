//! Power/energy estimation on top of the Metrics Gatherer — the
//! AccelWattch-style extension: the power model attaches to *any* preset's
//! counters, so even the fastest Swift-Sim-Memory runs yield energy
//! estimates.
//!
//! ```sh
//! cargo run --release -p swift-examples --bin power_estimate [workload]
//! ```

use swiftsim_config::presets;
use swiftsim_core::{run, RunOptions, SimulatorPreset};
use swiftsim_metrics::Table;
use swiftsim_power::PowerModel;
use swiftsim_workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gemm".to_owned());
    let workload =
        swiftsim_workloads::by_name(&name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let app = workload.generate(Scale::Small);
    let gpu = presets::rtx2080ti();
    let model = PowerModel::turing_class(&gpu);

    println!("energy estimation for {} on {}:", workload.name, gpu.name);
    println!();

    let mut table = Table::new(vec!["Preset", "Cycles", "Energy (J)", "Avg power (W)"]);
    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        let result = run(&app, &gpu, &RunOptions::default().with_preset(preset))?;
        let report = model.estimate(&result.metrics);
        table.row(vec![
            preset.label().to_owned(),
            result.cycles.to_string(),
            format!("{:.4}", report.total_energy_j()),
            format!("{:.1}", report.average_power_w()),
        ]);
        if preset == SimulatorPreset::Detailed {
            println!("detailed breakdown:");
            println!("{report}");
            println!();
        }
    }
    print!("{table}");
    println!();
    println!(
        "The power model consumes only Metrics Gatherer counters, so the\n\
         energy estimate survives every level of model simplification."
    );
    Ok(())
}
