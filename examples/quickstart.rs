//! Quickstart: build a tiny application trace by hand, run it through a
//! Swift-Sim preset, and read the Metrics Gatherer's report.
//!
//! ```sh
//! cargo run -p swift-examples --bin quickstart
//! ```

use swiftsim_config::presets;
use swiftsim_core::{GpuSimulator, RunOptions, SimulatorPreset};
use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the hardware: start from the RTX 2080 Ti of the paper's
    //    Table II. Any field can be edited before building the simulator.
    let gpu = presets::rtx2080ti();
    println!(
        "GPU: {} ({} SMs, {} CUDA cores)",
        gpu.name,
        gpu.num_sms,
        gpu.cuda_cores()
    );

    // 2. Build a trace: a little vector-add-like kernel of 32 blocks, one
    //    warp each: load two operands, fuse-multiply-add, store, exit.
    let mut kernel = KernelTrace::new("vecadd", (32, 1, 1), (32, 1, 1));
    for b in 0u64..32 {
        let block = kernel.push_block();
        let warp = block.push_warp();
        let base = 0x10_0000 + b * 128;
        warp.push(
            InstBuilder::new(Opcode::Ldg)
                .pc(0x00)
                .dst(4)
                .src(1)
                .global_strided(base, 4, 4),
        );
        warp.push(
            InstBuilder::new(Opcode::Ldg)
                .pc(0x10)
                .dst(5)
                .src(2)
                .global_strided(0x20_0000 + b * 128, 4, 4),
        );
        warp.push(InstBuilder::new(Opcode::Ffma).pc(0x20).dst(6).src(4).src(5));
        warp.push(
            InstBuilder::new(Opcode::Stg)
                .pc(0x30)
                .src(6)
                .global_strided(0x30_0000 + b * 128, 4, 4),
        );
        warp.push(InstBuilder::new(Opcode::Exit).pc(0x40));
    }
    let app = ApplicationTrace::new("vecadd_demo", vec![kernel]);
    println!("trace: {} dynamic instructions", app.num_insts());

    // 3. Choose the modeling approach per module — here the paper's
    //    Swift-Sim-Basic preset: analytical ALU pipeline, cycle-accurate
    //    warp scheduling and memory hierarchy.
    let options = RunOptions::default().with_preset(SimulatorPreset::SwiftBasic);
    let sim = GpuSimulator::try_new(gpu, &options)?;
    println!("simulator: {}", sim.description());

    // 4. Run and inspect the results.
    let result = sim.run(&app)?;
    println!();
    println!("predicted cycles : {}", result.cycles);
    println!("IPC              : {:.3}", result.ipc());
    println!("wall time        : {:?}", result.wall_time);
    println!();
    println!("--- Metrics Gatherer report ---");
    print!("{}", result.metrics.to_report());
    Ok(())
}
