//! The headline trade-off: simulation speed vs prediction fidelity across
//! the three presets of the paper's evaluation, on one workload.
//!
//! ```sh
//! cargo run --release -p swift-examples --bin hybrid_speedup [workload]
//! ```

use std::time::Instant;
use swiftsim_config::presets;
use swiftsim_core::{run, RunOptions, SimulatorPreset};
use swiftsim_metrics::Table;
use swiftsim_workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "nw".to_owned());
    let workload =
        swiftsim_workloads::by_name(&name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let app = workload.generate(Scale::Small);
    println!(
        "workload {} ({}, {} instructions)",
        workload.name,
        workload.suite,
        app.num_insts()
    );
    println!();

    let mut table = Table::new(vec!["Simulator", "Cycles", "Wall time", "Speedup"]);
    let mut baseline_time = None;
    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        let options = RunOptions::default().with_preset(preset);
        let started = Instant::now();
        let result = run(&app, &presets::rtx2080ti(), &options)?;
        let elapsed = started.elapsed();
        let base = *baseline_time.get_or_insert(elapsed);
        table.row(vec![
            preset.label().to_owned(),
            result.cycles.to_string(),
            format!("{:.3}s", elapsed.as_secs_f64()),
            format!("{:.1}x", base.as_secs_f64() / elapsed.as_secs_f64()),
        ]);
    }
    print!("{table}");
    println!();
    println!(
        "Swift-Sim-Basic replaces the per-cycle ALU pipeline simulation with\n\
         the improved analytical model; Swift-Sim-Memory additionally replaces\n\
         the cache/NoC/DRAM walk with the Eq. 1 latency model. Predictions\n\
         stay close to the detailed baseline while wall time drops."
    );
    Ok(())
}
