//! Design-space exploration of the L1 cache — size and replacement policy.
//!
//! The paper's motivation (§II-B) calls out that reuse-distance analytical
//! cache models "typically assume that the cache replacement policy is
//! LRU, which makes it difficult to simulate other replacement policies
//! such as FIFO or Random". Swift-Sim's cycle-accurate cache module
//! supports all three, so this sweep uses Swift-Sim-Basic (cycle-accurate
//! memory, analytical ALU).
//!
//! ```sh
//! cargo run --release -p swift-examples --bin cache_exploration
//! ```

use swiftsim_config::{presets, ReplacementPolicy};
use swiftsim_core::{run, RunOptions, SimulatorPreset};
use swiftsim_metrics::Table;
use swiftsim_workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = swiftsim_workloads::by_name("kmeans")
        .expect("known workload")
        .generate(Scale::Small);

    println!("L1 design-space exploration on kmeans (Swift-Sim-Basic, RTX 2080 Ti base):");
    println!();

    // Sweep 1: L1 capacity (sets doubled/halved), LRU.
    let mut size_table = Table::new(vec!["L1 size", "Cycles", "L1 miss rate"]);
    for scale in [1u32, 2, 4] {
        let mut gpu = presets::rtx2080ti();
        gpu.sm.l1d.sets = gpu.sm.l1d.sets / 4 * scale; // 16/32/64 KiB
        let kib = gpu.sm.l1d.capacity_bytes() / 1024;
        let options = RunOptions::default().with_preset(SimulatorPreset::SwiftBasic);
        let r = run(&app, &gpu, &options)?;
        size_table.row(vec![
            format!("{kib} KiB"),
            r.cycles.to_string(),
            format!("{:.3}", r.metrics.ratio("mem.l1.miss_rate").unwrap_or(0.0)),
        ]);
    }
    print!("{size_table}");
    println!();

    // Sweep 2: replacement policy at the base size.
    let mut policy_table = Table::new(vec!["Replacement", "Cycles", "L1 miss rate"]);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let mut gpu = presets::rtx2080ti();
        gpu.sm.l1d.replacement = policy;
        let options = RunOptions::default().with_preset(SimulatorPreset::SwiftBasic);
        let r = run(&app, &gpu, &options)?;
        policy_table.row(vec![
            policy.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", r.metrics.ratio("mem.l1.miss_rate").unwrap_or(0.0)),
        ]);
    }
    print!("{policy_table}");
    println!();
    println!(
        "Because the cache is a cycle-accurate module here, non-LRU policies\n\
         are first-class citizens — no analytical remodeling required."
    );
    Ok(())
}
