//! Design-space exploration of warp-scheduling policies — the paper's
//! canonical hybrid-modeling scenario (§III-D): "Assuming we need to
//! explore a new warp scheduling algorithm, Warp Scheduler & Dispatch needs
//! cycle-accurate simulation ... For other modules, architects can choose
//! appropriate modeling methods as needed."
//!
//! The scheduler is always simulated cycle-accurately; everything else uses
//! the fast Swift-Sim-Memory models, so a three-policy sweep over several
//! workloads finishes in seconds.
//!
//! ```sh
//! cargo run --release -p swift-examples --bin scheduler_exploration
//! ```

use swiftsim_config::{presets, SchedulerPolicy};
use swiftsim_core::{run, RunOptions, SimulatorPreset};
use swiftsim_metrics::Table;
use swiftsim_workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apps = ["bfs", "gemm", "hotspot", "mvt", "gru"];
    let policies = [
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel,
    ];

    let mut table = Table::new(vec!["App", "GTO", "LRR", "Two-level", "Best"]);
    for app_name in apps {
        let app = swiftsim_workloads::by_name(app_name)
            .expect("known workload")
            .generate(Scale::Small);

        let mut cycles = Vec::new();
        for policy in policies {
            let mut gpu = presets::rtx2080ti();
            gpu.sm.scheduler = policy;
            let options = RunOptions::default().with_preset(SimulatorPreset::SwiftMemory);
            cycles.push(run(&app, &gpu, &options)?.cycles);
        }

        let best = policies[cycles
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)];
        table.row(vec![
            app_name.to_owned(),
            cycles[0].to_string(),
            cycles[1].to_string(),
            cycles[2].to_string(),
            best.to_string(),
        ]);
    }

    println!("Warp-scheduler exploration (cycles, Swift-Sim-Memory, RTX 2080 Ti):");
    println!();
    print!("{table}");
    println!();
    println!(
        "The Warp Scheduler & Dispatch module runs cycle-accurately in every\n\
         preset, so policy differences are faithfully modeled while the rest\n\
         of the GPU uses fast analytical models."
    );
    Ok(())
}
