//! Workspace-level integration tests: the full pipeline from config files
//! and trace files on disk through the simulator to the Metrics Gatherer,
//! crossing every crate boundary.

use swiftsim_core::{run, RunOptions, SimulatorPreset};
use swiftsim_integration_tests::small_gpu;
use swiftsim_trace::ApplicationTrace;
use swiftsim_workloads::Scale;

/// Config file → parse → simulate → metrics, end to end through the text
/// formats (what the `swiftsim` CLI does).
#[test]
fn config_and_trace_files_round_trip_through_simulation() {
    let cfg_text = small_gpu().to_config_text();
    let cfg = swiftsim_config::GpuConfig::parse(&cfg_text).expect("config round trip");

    let app = swiftsim_workloads::by_name("hotspot")
        .expect("workload")
        .generate(Scale::Tiny);
    let trace_text = app.to_trace_text();
    let parsed = ApplicationTrace::parse(&trace_text).expect("trace round trip");
    assert_eq!(parsed, app);

    let options = RunOptions::default().with_preset(SimulatorPreset::SwiftBasic);
    let direct = run(&app, &cfg, &options).expect("direct run");
    let via_files = run(&parsed, &cfg, &options).expect("file-mediated run");
    assert_eq!(
        direct.cycles, via_files.cycles,
        "serialization must not change timing"
    );
}

/// The three GPU presets must give different predictions for the same app —
/// the cross-architecture sensitivity Fig. 6 depends on.
#[test]
fn predictions_differ_across_gpu_presets() {
    let app = swiftsim_workloads::by_name("srad")
        .expect("workload")
        .generate(Scale::Tiny);
    let mut cycles = Vec::new();
    for gpu in swiftsim_config::presets::all() {
        let options = RunOptions::default().with_preset(SimulatorPreset::SwiftMemory);
        let r = run(&app, &gpu, &options).expect("run");
        cycles.push(r.cycles);
    }
    assert_eq!(cycles.len(), 3);
    assert!(
        cycles.windows(2).any(|w| w[0] != w[1]),
        "three different GPUs produced identical predictions: {cycles:?}"
    );
}

/// A bigger GPU (RTX 3090) should not be slower than a much smaller one
/// (RTX 3060) on a parallel workload.
#[test]
fn more_sms_do_not_hurt() {
    let app = swiftsim_workloads::by_name("sm")
        .expect("workload")
        .generate(Scale::Small);
    let cycles_on = |gpu| {
        let options = RunOptions::default().with_preset(SimulatorPreset::SwiftBasic);
        run(&app, &gpu, &options).expect("run").cycles
    };
    let small = cycles_on(swiftsim_config::presets::rtx3060());
    let big = cycles_on(swiftsim_config::presets::rtx3090());
    assert!(
        big <= small,
        "RTX 3090 ({big} cycles) slower than RTX 3060 ({small} cycles)"
    );
}

/// Silicon oracle interplay: prediction errors of all three presets against
/// the oracle stay within a sane band at tiny scale.
#[test]
fn prediction_errors_against_oracle_are_bounded() {
    let gpu = small_gpu();
    for name in ["bfs", "nw", "gemm"] {
        let app = swiftsim_workloads::by_name(name)
            .expect("workload")
            .generate(Scale::Tiny);
        let detailed = run(
            &app,
            &gpu,
            &RunOptions::default().with_preset(SimulatorPreset::Detailed),
        )
        .expect("run")
        .cycles;
        let hw = swiftsim_workloads::silicon::hardware_cycles(name, &gpu.name, detailed);
        for preset in [SimulatorPreset::SwiftBasic, SimulatorPreset::SwiftMemory] {
            let predicted = run(&app, &gpu, &RunOptions::default().with_preset(preset))
                .expect("run")
                .cycles;
            let err = swiftsim_metrics::rel_error(predicted as f64, hw as f64);
            assert!(err < 1.5, "{name}/{preset:?}: error {err:.2} out of band");
        }
    }
}

/// The memory substrate and the core's analytical model agree on hit-rate
/// inputs: a cache-friendly app must see lower analytical latencies than a
/// streaming one.
#[test]
fn analytical_model_reflects_locality() {
    use std::collections::HashMap;
    use swiftsim_core::mem_system::{AnalyticalMemory, LatencyTerms};
    use swiftsim_mem::PcHitRates;

    let gpu = small_gpu();
    let terms = LatencyTerms::from_config(&gpu);
    let mut rates = HashMap::new();
    rates.insert(
        1u32,
        PcHitRates {
            l1: 0.9,
            l2: 0.1,
            dram: 0.0,
        },
    );
    rates.insert(
        2u32,
        PcHitRates {
            l1: 0.0,
            l2: 0.0,
            dram: 1.0,
        },
    );
    let mem = AnalyticalMemory::new(&gpu, &rates);
    assert!(mem.latency_of(1) < mem.latency_of(2));
    assert!((mem.latency_of(2) - terms.dram).abs() < 1e-9);
}
