//! Host crate for the workspace-level integration tests in `tests/tests/`.
//!
//! The actual assertions live in the integration-test binaries; this
//! library only provides shared helpers.

use swiftsim_config::GpuConfig;

/// A reduced RTX 2080 Ti (fewer SMs and partitions) so detailed simulation
/// stays fast inside tests while preserving per-SM ratios.
pub fn small_gpu() -> GpuConfig {
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 4;
    cfg.memory.partitions = 4;
    cfg
}
