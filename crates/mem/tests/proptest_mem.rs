// The property-based suite needs the external `proptest` crate, which is
// unavailable in offline builds. Enable the crate's non-default `proptest`
// feature (after restoring the dev-dependency in Cargo.toml and the
// workspace manifest) to run it.
#![cfg(feature = "proptest")]

//! Property-based tests for the memory substrate's core invariants.

use proptest::prelude::*;
use swiftsim_config::{presets, ReplacementPolicy};
use swiftsim_mem::{
    coalesce_accesses, AccessOutcome, AddressMapping, MemTxn, ReuseDistanceAnalyzer, SectorCache,
};

fn mapping() -> AddressMapping {
    AddressMapping::new(&presets::rtx2080ti().sm.l1d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Coalescing never produces more transactions than lanes (plus line
    /// spills), covers every lane's address, and merges duplicates.
    #[test]
    fn coalescer_covers_all_lanes(
        addrs in prop::collection::vec(0u64..(1 << 30), 1..32),
        width in prop::sample::select(vec![1u8, 2, 4, 8, 16]),
    ) {
        let m = mapping();
        let txns = coalesce_accesses(&m, &addrs, width, false);
        // Bounded: at most 2 txns per lane (line-crossing access).
        prop_assert!(txns.len() <= addrs.len() * 2);
        // Every lane's first byte is covered by some transaction sector.
        for &a in &addrs {
            let line = m.line_addr(a);
            let sector_bit = 1u8 << m.sector_index(a);
            prop_assert!(
                txns.iter().any(|t| t.line_addr == line && t.sector_mask & sector_bit != 0),
                "address {a:#x} not covered"
            );
        }
        // Line addresses are unique and sorted.
        prop_assert!(txns.windows(2).all(|w| w[0].line_addr < w[1].line_addr));
    }

    /// For every replacement policy: after access+fill, re-access of the
    /// same sectors hits, and hit/miss counters are conserved.
    #[test]
    fn cache_conservation(
        lines in prop::collection::vec(0u64..64, 1..100),
        policy in prop::sample::select(vec![
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ]),
    ) {
        let mut cfg = presets::rtx2080ti().sm.l1d;
        cfg.sets = 4;
        cfg.ways = 2;
        cfg.replacement = policy;
        let mut cache = SectorCache::new(&cfg, 42);

        let mut now = 0u64;
        let mut waiter = 0u64;
        for &l in &lines {
            let txn = MemTxn { line_addr: l * 128, sector_mask: 0b0001, write: false };
            now += 10;
            waiter += 1;
            match cache.access(txn, waiter, now) {
                AccessOutcome::Miss { fetch, .. } => {
                    // Fill immediately; the line must then be present.
                    now += 100;
                    let fill = cache.fill(fetch.line_addr, now);
                    prop_assert!(fill.waiters.contains(&waiter));
                }
                AccessOutcome::Hit { ready_at, .. } => {
                    prop_assert!(ready_at >= now);
                }
                AccessOutcome::MissMerged { .. } => {
                    prop_assert!(false, "no overlapping misses in this driver");
                }
                AccessOutcome::WriteForwarded { .. } => {
                    prop_assert!(false, "reads cannot be write-forwarded");
                }
                AccessOutcome::ReservationFailure => {
                    prop_assert!(false, "MSHR is large enough to never fail here");
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lines.len() as u64);
        prop_assert_eq!(s.fills, s.misses);
        prop_assert!(s.miss_rate() >= 0.0 && s.miss_rate() <= 1.0);
    }

    /// Reuse-distance invariants: cold count equals distinct lines, hit
    /// rate is monotone in capacity and bounded by 1 - cold share.
    #[test]
    fn reuse_distance_invariants(lines in prop::collection::vec(0u64..32, 1..200)) {
        let mut rd = ReuseDistanceAnalyzer::new();
        for &l in &lines {
            if let Some(d) = rd.record(l) {
                // Distance is bounded by the number of distinct lines.
                prop_assert!(d < 32);
            }
        }
        let distinct = lines.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        prop_assert_eq!(rd.cold_misses(), distinct);
        prop_assert_eq!(rd.accesses(), lines.len() as u64);

        let mut prev = 0.0;
        for cap in [1u64, 2, 4, 8, 16, 32, 64] {
            let r = rd.hit_rate(cap);
            prop_assert!(r >= prev - 1e-12, "hit rate not monotone");
            prev = r;
        }
        // A cache big enough for everything captures every non-cold access.
        let max_rate = rd.hit_rate(64);
        let expected = (lines.len() as u64 - distinct) as f64 / lines.len() as f64;
        prop_assert!((max_rate - expected).abs() < 1e-9);
    }
}
