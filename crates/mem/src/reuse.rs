//! Reuse-distance (stack-distance) analysis.
//!
//! §III-D2 of the paper obtains the hit rates `R_L1`, `R_L2`, `R_DRAM` of
//! Eq. 1 "using a reuse distance tool or cache simulator". This module is
//! the reuse-distance tool: it computes, for every access, the number of
//! *distinct* lines touched since the previous access to the same line
//! (the Mattson stack distance). Under fully-associative LRU, an access
//! hits a cache of capacity `C` lines iff its stack distance is `< C`, so a
//! distance histogram yields hit rates for *every* capacity in one pass.
//!
//! The implementation is the classic O(log n) Bentley–Sleator style
//! algorithm: a Fenwick tree over access timestamps marks the most recent
//! occurrence of each line, and the distance is the count of marked
//! timestamps after the line's previous access.

use std::collections::HashMap;

/// Fenwick (binary indexed) tree over access timestamps, growing by
/// capacity doubling. With a power-of-two capacity `N`, node `N` holds the
/// sum of the whole range `1..=N`, so doubling only needs to copy the old
/// root into the new one — all other new nodes cover untouched (zero)
/// ranges.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<i64>,
    capacity: usize,
}

impl Fenwick {
    fn new() -> Self {
        Fenwick {
            tree: vec![0, 0],
            capacity: 1,
        }
    }

    /// Ensure capacity for 1-based index `i`.
    fn ensure(&mut self, i: usize) {
        while self.capacity < i {
            let old = self.capacity;
            self.capacity *= 2;
            self.tree.resize(self.capacity + 1, 0);
            self.tree[self.capacity] = self.tree[old];
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        self.ensure(i);
        while i <= self.capacity {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Prefix sum over `1..=i`.
    fn sum(&self, mut i: usize) -> i64 {
        let mut s = 0;
        i = i.min(self.capacity);
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming reuse-distance analyzer.
///
/// # Examples
///
/// ```
/// use swiftsim_mem::ReuseDistanceAnalyzer;
///
/// let mut rd = ReuseDistanceAnalyzer::new();
/// assert_eq!(rd.record(0x100), None);      // cold
/// assert_eq!(rd.record(0x200), None);      // cold
/// assert_eq!(rd.record(0x100), Some(1));   // one distinct line in between
/// assert_eq!(rd.record(0x100), Some(0));   // immediate reuse
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseDistanceAnalyzer {
    fenwick: Option<Fenwick>,
    last_seen: HashMap<u64, usize>,
    time: usize,
    /// histogram[d] = number of accesses with stack distance d (saturated
    /// at the last bucket).
    histogram: Vec<u64>,
    cold_misses: u64,
}

const HIST_BUCKETS: usize = 1 << 20;

impl ReuseDistanceAnalyzer {
    /// Create an empty analyzer.
    pub fn new() -> Self {
        ReuseDistanceAnalyzer {
            fenwick: Some(Fenwick::new()),
            ..Default::default()
        }
    }

    /// Record an access to `line_addr` and return its stack distance, or
    /// `None` for a cold (first-touch) access.
    pub fn record(&mut self, line_addr: u64) -> Option<u64> {
        self.time += 1;
        let now = self.time;
        let fenwick = self.fenwick.get_or_insert_with(Fenwick::new);

        let distance = match self.last_seen.insert(line_addr, now) {
            Some(prev) => {
                // Distinct lines touched strictly after `prev`.
                let d = (fenwick.sum(now - 1) - fenwick.sum(prev)) as u64;
                fenwick.add(prev, -1);
                Some(d)
            }
            None => None,
        };
        fenwick.add(now, 1);

        match distance {
            Some(d) => {
                let bucket = (d as usize).min(HIST_BUCKETS - 1);
                if self.histogram.len() <= bucket {
                    self.histogram.resize(bucket + 1, 0);
                }
                self.histogram[bucket] += 1;
            }
            None => self.cold_misses += 1,
        }
        distance
    }

    /// Total recorded accesses.
    pub fn accesses(&self) -> u64 {
        self.time as u64
    }

    /// Cold (first-touch) accesses.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Predicted hit rate for a fully-associative LRU cache holding
    /// `capacity_lines` lines: the fraction of accesses with stack distance
    /// `< capacity_lines` (cold misses always miss).
    pub fn hit_rate(&self, capacity_lines: u64) -> f64 {
        if self.time == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .histogram
            .iter()
            .take(capacity_lines.min(HIST_BUCKETS as u64) as usize)
            .sum();
        hits as f64 / self.time as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_reuse() {
        let mut rd = ReuseDistanceAnalyzer::new();
        assert_eq!(rd.record(1), None);
        assert_eq!(rd.record(1), Some(0));
        assert_eq!(rd.record(2), None);
        assert_eq!(rd.record(1), Some(1));
        assert_eq!(rd.cold_misses(), 2);
        assert_eq!(rd.accesses(), 4);
    }

    #[test]
    fn distance_counts_distinct_lines_only() {
        let mut rd = ReuseDistanceAnalyzer::new();
        rd.record(1);
        rd.record(2);
        rd.record(2);
        rd.record(2);
        // Only one distinct line (2) touched since line 1's last access.
        assert_eq!(rd.record(1), Some(1));
    }

    #[test]
    fn cyclic_pattern_distance_is_working_set() {
        let mut rd = ReuseDistanceAnalyzer::new();
        let lines: Vec<u64> = (0..8).collect();
        for &l in &lines {
            assert_eq!(rd.record(l), None);
        }
        // Second sweep: each access has distance 7.
        for &l in &lines {
            assert_eq!(rd.record(l), Some(7));
        }
    }

    #[test]
    fn hit_rate_thresholds() {
        let mut rd = ReuseDistanceAnalyzer::new();
        // Working set of 8 lines swept 10 times: 8 cold + 72 distance-7.
        for _ in 0..10 {
            for l in 0..8u64 {
                rd.record(l);
            }
        }
        // Cache of 8 lines captures all reuses: 72/80 hits.
        assert!((rd.hit_rate(8) - 0.9).abs() < 1e-12);
        // Cache of 7 lines captures none (distance 7 >= 7).
        assert_eq!(rd.hit_rate(7), 0.0);
        // Monotone in capacity.
        assert!(rd.hit_rate(16) >= rd.hit_rate(8));
    }

    #[test]
    fn empty_analyzer_hit_rate_is_zero() {
        let rd = ReuseDistanceAnalyzer::new();
        assert_eq!(rd.hit_rate(100), 0.0);
    }

    #[test]
    fn streaming_pattern_never_hits() {
        let mut rd = ReuseDistanceAnalyzer::new();
        for l in 0..1000u64 {
            rd.record(l);
        }
        assert_eq!(rd.hit_rate(1 << 19), 0.0);
        assert_eq!(rd.cold_misses(), 1000);
    }
}
