//! A fast hasher for `u64`-keyed hot-path maps.
//!
//! The standard library's SipHash is DoS-resistant but costs tens of
//! nanoseconds per lookup; simulator-internal maps keyed by line addresses
//! or token ids are touched millions of times per simulated kernel and
//! never see attacker-controlled keys, so a single splitmix64 round is the
//! right trade-off.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One-round splitmix64 hasher for integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct U64Hasher(u64);

impl Hasher for U64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: FNV-style fold (rarely used).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, mut x: u64) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// A `HashMap` using [`U64Hasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<U64Hasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_behaves_like_hashmap() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 0x80, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 0x80)), Some(&(i as u32)));
        }
        assert_eq!(m.remove(&0), Some(0));
        assert!(!m.contains_key(&0));
    }

    #[test]
    fn hashes_spread() {
        let mut h1 = U64Hasher::default();
        h1.write_u64(1);
        let mut h2 = U64Hasher::default();
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
