//! Sectored tag array with pluggable replacement.

use crate::addr::AddressMapping;
use crate::Cycle;
use swiftsim_config::{CacheConfig, ReplacementPolicy};
use swiftsim_rng::SmallRng;

/// State of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// No data, no reservation.
    Invalid,
    /// Allocated for an in-flight fill (allocate-on-miss caches).
    Reserved,
    /// Holding data; per-sector validity in the entry's sector mask.
    Valid,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    /// Valid sectors (bit per sector).
    valid_mask: u8,
    /// Dirty sectors (write-back caches).
    dirty_mask: u8,
    last_use: Cycle,
    alloc_time: Cycle,
}

impl Line {
    const INVALID: Line = Line {
        tag: 0,
        state: LineState::Invalid,
        valid_mask: 0,
        dirty_mask: 0,
        last_use: 0,
        alloc_time: 0,
    };
}

/// Serializable snapshot of one cache line (checkpointing). `state` is the
/// [`LineState`] encoded as 0 = Invalid, 1 = Reserved, 2 = Valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // mirrors the private `Line` fields one-to-one
pub struct LineSnapshot {
    pub tag: u64,
    pub state: u8,
    pub valid_mask: u8,
    pub dirty_mask: u8,
    pub last_use: Cycle,
    pub alloc_time: Cycle,
}

/// Serializable snapshot of a whole tag array: every line plus the
/// replacement policy's RNG state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagArrayState {
    /// One entry per line, in `set * ways + way` order.
    pub lines: Vec<LineSnapshot>,
    /// Replacement RNG state ([`SmallRng::state`]).
    pub rng: [u64; 4],
}

/// Result of probing the tag array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// All requested sectors valid in the named way.
    Hit {
        /// Way within the set.
        way: usize,
    },
    /// Line present (valid or reserved) but at least one requested sector is
    /// not valid — a *sector miss* that still merges into the line.
    SectorMiss {
        /// Way within the set.
        way: usize,
    },
    /// Tag not present.
    LineMiss,
}

/// A victim chosen for eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Way within the set that was reclaimed.
    pub way: usize,
    /// Line-aligned address of the evicted line, if it held data.
    pub evicted_line: Option<u64>,
    /// Dirty-sector mask of the evicted line (write-back caches must write
    /// these sectors out).
    pub dirty_mask: u8,
}

/// Sectored tag array: tags at line granularity, validity and dirtiness at
/// sector granularity, replacement per [`ReplacementPolicy`].
#[derive(Debug, Clone)]
pub struct TagArray {
    mapping: AddressMapping,
    ways: usize,
    lines: Vec<Line>,
    replacement: ReplacementPolicy,
    rng: SmallRng,
}

impl TagArray {
    /// Build a tag array for the given cache configuration. `seed` feeds
    /// the Random replacement policy so simulations stay deterministic.
    pub fn new(cfg: &CacheConfig, seed: u64) -> Self {
        TagArray {
            mapping: AddressMapping::new(cfg),
            ways: cfg.ways as usize,
            lines: vec![Line::INVALID; (cfg.sets * cfg.ways) as usize],
            replacement: cfg.replacement,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The address mapping shared with the enclosing cache.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = self.mapping.set_index(addr);
        set * self.ways..(set + 1) * self.ways
    }

    /// Probe for `addr` requesting `sector_mask` sectors; updates LRU on
    /// hits.
    pub fn probe(&mut self, addr: u64, sector_mask: u8, now: Cycle) -> Probe {
        let line_addr = self.mapping.line_addr(addr);
        let range = self.set_range(addr);
        for way_off in 0..self.ways {
            let idx = range.start + way_off;
            let line = &mut self.lines[idx];
            if line.state != LineState::Invalid && line.tag == line_addr {
                line.last_use = now;
                if line.state == LineState::Valid && line.valid_mask & sector_mask == sector_mask {
                    return Probe::Hit { way: way_off };
                }
                return Probe::SectorMiss { way: way_off };
            }
        }
        Probe::LineMiss
    }

    /// Probe without touching replacement state (for functional inspection).
    pub fn probe_silent(&self, addr: u64, sector_mask: u8) -> Probe {
        let line_addr = self.mapping.line_addr(addr);
        let range = self.set_range(addr);
        for way_off in 0..self.ways {
            let line = &self.lines[range.start + way_off];
            if line.state != LineState::Invalid && line.tag == line_addr {
                if line.state == LineState::Valid && line.valid_mask & sector_mask == sector_mask {
                    return Probe::Hit { way: way_off };
                }
                return Probe::SectorMiss { way: way_off };
            }
        }
        Probe::LineMiss
    }

    /// Allocate a way for `addr`, evicting per the replacement policy.
    /// Reserved lines are never victimized (their fills are in flight), so
    /// this returns `None` — a *reservation failure* — when every way in the
    /// set is reserved.
    pub fn allocate(&mut self, addr: u64, reserve: bool, now: Cycle) -> Option<Victim> {
        let line_addr = self.mapping.line_addr(addr);
        let range = self.set_range(addr);

        // Prefer an invalid way.
        let mut victim_off = None;
        for way_off in 0..self.ways {
            if self.lines[range.start + way_off].state == LineState::Invalid {
                victim_off = Some(way_off);
                break;
            }
        }
        // Otherwise choose among valid (non-reserved) ways.
        if victim_off.is_none() {
            let candidates: Vec<usize> = (0..self.ways)
                .filter(|off| self.lines[range.start + off].state == LineState::Valid)
                .collect();
            if candidates.is_empty() {
                return None;
            }
            victim_off = Some(match self.replacement {
                ReplacementPolicy::Lru => *candidates
                    .iter()
                    .min_by_key(|&&off| self.lines[range.start + off].last_use)
                    .expect("non-empty"),
                ReplacementPolicy::Fifo => *candidates
                    .iter()
                    .min_by_key(|&&off| self.lines[range.start + off].alloc_time)
                    .expect("non-empty"),
                ReplacementPolicy::Random => candidates[self.rng.gen_range(0..candidates.len())],
            });
        }

        let way = victim_off.expect("selected above");
        let line = &mut self.lines[range.start + way];
        let evicted_line = (line.state == LineState::Valid).then_some(line.tag);
        let dirty_mask = if line.state == LineState::Valid {
            line.dirty_mask
        } else {
            0
        };
        *line = Line {
            tag: line_addr,
            state: if reserve {
                LineState::Reserved
            } else {
                LineState::Valid
            },
            valid_mask: 0,
            dirty_mask: 0,
            last_use: now,
            alloc_time: now,
        };
        Some(Victim {
            way,
            evicted_line,
            dirty_mask,
        })
    }

    /// Mark sectors of an existing line valid (fill completion).
    ///
    /// # Panics
    ///
    /// Panics if the line is not present; fills always target a line that
    /// [`TagArray::allocate`] created.
    pub fn fill(&mut self, addr: u64, sector_mask: u8, now: Cycle) {
        let line_addr = self.mapping.line_addr(addr);
        let range = self.set_range(addr);
        for way_off in 0..self.ways {
            let line = &mut self.lines[range.start + way_off];
            if line.state != LineState::Invalid && line.tag == line_addr {
                line.state = LineState::Valid;
                line.valid_mask |= sector_mask;
                line.last_use = now;
                return;
            }
        }
        panic!("fill for absent line {line_addr:#x}");
    }

    /// Mark sectors dirty (write hit in a write-back cache).
    ///
    /// # Panics
    ///
    /// Panics if the line is not valid.
    pub fn mark_dirty(&mut self, addr: u64, sector_mask: u8) {
        let line_addr = self.mapping.line_addr(addr);
        let range = self.set_range(addr);
        for way_off in 0..self.ways {
            let line = &mut self.lines[range.start + way_off];
            if line.state == LineState::Valid && line.tag == line_addr {
                line.dirty_mask |= sector_mask;
                line.valid_mask |= sector_mask;
                return;
            }
        }
        panic!("mark_dirty for absent line {line_addr:#x}");
    }

    /// State of the line holding `addr`, if any.
    pub fn line_state(&self, addr: u64) -> Option<(LineState, u8)> {
        let line_addr = self.mapping.line_addr(addr);
        let range = self.set_range(addr);
        for way_off in 0..self.ways {
            let line = &self.lines[range.start + way_off];
            if line.state != LineState::Invalid && line.tag == line_addr {
                return Some((line.state, line.valid_mask));
            }
        }
        None
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Snapshot every line and the replacement RNG for checkpointing.
    pub fn save_state(&self) -> TagArrayState {
        TagArrayState {
            lines: self
                .lines
                .iter()
                .map(|l| LineSnapshot {
                    tag: l.tag,
                    state: match l.state {
                        LineState::Invalid => 0,
                        LineState::Reserved => 1,
                        LineState::Valid => 2,
                    },
                    valid_mask: l.valid_mask,
                    dirty_mask: l.dirty_mask,
                    last_use: l.last_use,
                    alloc_time: l.alloc_time,
                })
                .collect(),
            rng: self.rng.state(),
        }
    }

    /// Restore a snapshot taken from an identically configured array.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose geometry or line-state encoding does not
    /// match this array.
    pub fn restore_state(&mut self, state: &TagArrayState) -> Result<(), String> {
        if state.lines.len() != self.lines.len() {
            return Err(format!(
                "tag array snapshot has {} lines, this array has {}",
                state.lines.len(),
                self.lines.len()
            ));
        }
        for (line, snap) in self.lines.iter_mut().zip(&state.lines) {
            *line = Line {
                tag: snap.tag,
                state: match snap.state {
                    0 => LineState::Invalid,
                    1 => LineState::Reserved,
                    2 => LineState::Valid,
                    other => return Err(format!("invalid line state encoding {other}")),
                },
                valid_mask: snap.valid_mask,
                dirty_mask: snap.dirty_mask,
                last_use: snap.last_use,
                alloc_time: snap.alloc_time,
            };
        }
        self.rng = SmallRng::from_state(state.rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn small_cfg(replacement: ReplacementPolicy) -> CacheConfig {
        let mut cfg = presets::rtx2080ti().sm.l1d;
        cfg.sets = 2;
        cfg.ways = 2;
        cfg.replacement = replacement;
        cfg
    }

    #[test]
    fn probe_miss_then_fill_hits() {
        let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Lru), 0);
        assert_eq!(t.probe(0x1000, 0b0001, 0), Probe::LineMiss);
        t.allocate(0x1000, true, 0).expect("allocation");
        assert_eq!(t.probe(0x1000, 0b0001, 1), Probe::SectorMiss { way: 0 });
        t.fill(0x1000, 0b0001, 2);
        assert_eq!(t.probe(0x1000, 0b0001, 3), Probe::Hit { way: 0 });
        // A different sector of the same line still sector-misses.
        assert_eq!(t.probe(0x1020, 0b0010, 4), Probe::SectorMiss { way: 0 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Lru), 0);
        // Set 0 holds lines 0x0000 and 0x0100 (2 sets of 128 B lines).
        for (i, addr) in [0x0000u64, 0x0100].iter().enumerate() {
            t.allocate(*addr, false, i as u64).unwrap();
            t.fill(*addr, 0b1111, i as u64);
        }
        // Touch 0x0000 so 0x0100 is LRU.
        t.probe(0x0000, 0b0001, 10);
        let victim = t.allocate(0x0200, false, 11).unwrap();
        assert_eq!(victim.evicted_line, Some(0x0100));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Fifo), 0);
        for (i, addr) in [0x0000u64, 0x0100].iter().enumerate() {
            t.allocate(*addr, false, i as u64).unwrap();
            t.fill(*addr, 0b1111, i as u64);
        }
        // Touch 0x0000; FIFO must still evict it (allocated first).
        t.probe(0x0000, 0b0001, 10);
        let victim = t.allocate(0x0200, false, 11).unwrap();
        assert_eq!(victim.evicted_line, Some(0x0000));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let pick = |seed: u64| {
            let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Random), seed);
            for (i, addr) in [0x0000u64, 0x0100].iter().enumerate() {
                t.allocate(*addr, false, i as u64).unwrap();
                t.fill(*addr, 0b1111, i as u64);
            }
            t.allocate(0x0200, false, 11).unwrap().evicted_line
        };
        assert_eq!(pick(7), pick(7));
    }

    #[test]
    fn reserved_lines_are_not_victims() {
        let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Lru), 0);
        t.allocate(0x0000, true, 0).unwrap();
        t.allocate(0x0100, true, 1).unwrap();
        // Both ways of set 0 reserved: allocation fails.
        assert!(t.allocate(0x0200, true, 2).is_none());
        // But set 1 is unaffected.
        assert!(t.allocate(0x0080, true, 2).is_some());
    }

    #[test]
    fn eviction_reports_dirty_mask() {
        let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Lru), 0);
        t.allocate(0x0000, false, 0).unwrap();
        t.fill(0x0000, 0b0011, 0);
        t.mark_dirty(0x0000, 0b0010);
        t.allocate(0x0100, false, 1).unwrap();
        t.fill(0x0100, 0b1111, 1);
        let victim = t.allocate(0x0200, false, 2).unwrap();
        assert_eq!(victim.evicted_line, Some(0x0000));
        assert_eq!(victim.dirty_mask, 0b0010);
    }

    #[test]
    fn silent_probe_does_not_disturb_lru() {
        let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Lru), 0);
        for (i, addr) in [0x0000u64, 0x0100].iter().enumerate() {
            t.allocate(*addr, false, i as u64).unwrap();
            t.fill(*addr, 0b1111, i as u64);
        }
        // Silent probe of 0x0000 must NOT refresh it.
        assert_eq!(t.probe_silent(0x0000, 0b0001), Probe::Hit { way: 0 });
        let victim = t.allocate(0x0200, false, 11).unwrap();
        assert_eq!(victim.evicted_line, Some(0x0000));
    }

    #[test]
    #[should_panic(expected = "absent line")]
    fn fill_absent_line_panics() {
        let mut t = TagArray::new(&small_cfg(ReplacementPolicy::Lru), 0);
        t.fill(0x1000, 0b0001, 0);
    }
}
