//! DRAM channel model.
//!
//! Each of the GPU's memory partitions (22 on the RTX 2080 Ti, Table II)
//! owns one DRAM channel. The model is latency + bandwidth + bounded
//! queueing: every sector transaction pays the fixed access latency (227
//! core cycles on the 2080 Ti) and channels issue at most one transaction
//! every `cycles_per_txn` cycles, so bursts queue up and see contention —
//! the "additional latency due to resource contention" that both the
//! cycle-accurate and analytical memory models must account for (§III-D2).

use crate::Cycle;

/// Lifetime counters of one DRAM channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // self-describing counters
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub queued_cycles: u64,
    pub busy_cycles: u64,
    pub rejections: u64,
}

impl DramStats {
    /// Average queueing delay per serviced transaction, in cycles.
    pub fn avg_queue_delay(&self) -> f64 {
        let served = self.reads + self.writes;
        if served == 0 {
            return 0.0;
        }
        self.queued_cycles as f64 / served as f64
    }
}

/// One DRAM channel: fixed access latency, issue bandwidth, bounded queue.
#[derive(Debug, Clone)]
pub struct DramChannel {
    latency: Cycle,
    cycles_per_txn: Cycle,
    queue_depth: usize,
    /// Cycle at which the channel can start its next transaction.
    next_free: Cycle,
    /// Completion times of in-flight transactions (ascending).
    in_flight: std::collections::VecDeque<Cycle>,
    stats: DramStats,
}

impl DramChannel {
    /// Create a channel with the given access latency, issue interval, and
    /// queue depth.
    pub fn new(latency: u32, cycles_per_txn: u32, queue_depth: u32) -> Self {
        DramChannel {
            latency: Cycle::from(latency),
            cycles_per_txn: Cycle::from(cycles_per_txn),
            queue_depth: queue_depth as usize,
            next_free: 0,
            in_flight: std::collections::VecDeque::new(),
            stats: DramStats::default(),
        }
    }

    /// Submit one sector transaction at cycle `now`.
    ///
    /// Returns the completion cycle, or `None` if the queue is full (the
    /// caller must retry; this back-pressure propagates up the hierarchy).
    pub fn submit(&mut self, write: bool, now: Cycle) -> Option<Cycle> {
        self.drain(now);
        if self.in_flight.len() >= self.queue_depth {
            self.stats.rejections += 1;
            return None;
        }
        let start = now.max(self.next_free);
        self.stats.queued_cycles += start - now;
        self.next_free = start + self.cycles_per_txn;
        self.stats.busy_cycles += self.cycles_per_txn;
        let done = start + self.latency;
        self.in_flight.push_back(done);
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        Some(done)
    }

    /// Retire transactions whose completion time has passed.
    fn drain(&mut self, now: Cycle) {
        while let Some(&front) = self.in_flight.front() {
            if front <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Transactions currently outstanding at cycle `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.drain(now);
        self.in_flight.len()
    }

    /// Earliest cycle at which a submission could be accepted; rejected
    /// senders use this to schedule their retry instead of polling every
    /// cycle.
    pub fn earliest_accept(&mut self, now: Cycle) -> Cycle {
        self.drain(now);
        if self.in_flight.len() < self.queue_depth {
            now
        } else {
            self.in_flight.front().copied().unwrap_or(now) + 1
        }
    }

    /// Completion time of the oldest in-flight transaction, if any — the
    /// channel's next-event hint for event-driven engines (completions
    /// retire in submission order).
    pub fn next_completion(&self) -> Option<Cycle> {
        self.in_flight.front().copied()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Snapshot the channel's persistent state for checkpointing.
    ///
    /// Unlike caches, a DRAM channel may legitimately hold in-flight
    /// completion times at a kernel boundary: writes complete without any
    /// upstream event, so their scheduled completions can lie in the
    /// future. They are part of the snapshot.
    pub fn save_state(&self) -> DramChannelState {
        DramChannelState {
            next_free: self.next_free,
            in_flight: self.in_flight.iter().copied().collect(),
            stats: self.stats,
        }
    }

    /// Restore a snapshot taken from an identically configured channel.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot holding more in-flight transactions than this
    /// channel's queue depth.
    pub fn restore_state(&mut self, state: &DramChannelState) -> Result<(), String> {
        if state.in_flight.len() > self.queue_depth {
            return Err(format!(
                "snapshot has {} in-flight transactions, queue depth is {}",
                state.in_flight.len(),
                self.queue_depth
            ));
        }
        self.next_free = state.next_free;
        self.in_flight = state.in_flight.iter().copied().collect();
        self.stats = state.stats;
        Ok(())
    }
}

/// Serializable snapshot of a [`DramChannel`]'s persistent state
/// (checkpointing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramChannelState {
    /// Cycle at which the channel can start its next transaction.
    pub next_free: Cycle,
    /// Completion times of in-flight transactions (ascending).
    pub in_flight: Vec<Cycle>,
    /// Lifetime counters.
    pub stats: DramStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_latency() {
        let mut d = DramChannel::new(227, 2, 64);
        assert_eq!(d.submit(false, 100), Some(327));
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().queued_cycles, 0);
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        let mut d = DramChannel::new(100, 2, 64);
        // Four transactions in the same cycle: starts 0, 2, 4, 6.
        let done: Vec<Cycle> = (0..4).map(|_| d.submit(false, 0).unwrap()).collect();
        assert_eq!(done, vec![100, 102, 104, 106]);
        assert_eq!(d.stats().queued_cycles, 2 + 4 + 6);
        assert!((d.stats().avg_queue_delay() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn queue_full_rejects() {
        let mut d = DramChannel::new(1000, 1, 2);
        assert!(d.submit(false, 0).is_some());
        assert!(d.submit(false, 0).is_some());
        assert!(d.submit(false, 0).is_none());
        assert_eq!(d.stats().rejections, 1);
        // After completions drain, submissions succeed again.
        assert!(d.submit(false, 2000).is_some());
    }

    #[test]
    fn occupancy_drains_over_time() {
        let mut d = DramChannel::new(50, 1, 8);
        d.submit(false, 0);
        d.submit(true, 0);
        assert_eq!(d.occupancy(10), 2);
        assert_eq!(d.occupancy(60), 0);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn idle_channel_restarts_cleanly() {
        let mut d = DramChannel::new(100, 4, 8);
        d.submit(false, 0);
        // Long idle gap: next submission is not penalized.
        assert_eq!(d.submit(false, 10_000), Some(10_100));
        assert_eq!(d.stats().queued_cycles, 0);
    }
}
