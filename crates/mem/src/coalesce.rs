//! Per-warp memory-access coalescing.
//!
//! When a warp executes a load or store, the LD/ST unit merges the 32 lane
//! addresses into the minimal set of line-granularity transactions, each
//! carrying a sector mask (32 B sectors within 128 B lines on the modeled
//! GPUs). A fully coalesced warp access touches one line (4 sectors); a
//! fully divergent one touches up to 32 distinct lines — this transaction
//! count is what drives cache pressure, NoC traffic, and DRAM bandwidth in
//! both the cycle-accurate and the analytical memory models.

use crate::addr::AddressMapping;

/// One line-granularity memory transaction produced by the coalescer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemTxn {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Sectors of the line touched (bit per sector).
    pub sector_mask: u8,
    /// Whether this is a store.
    pub write: bool,
}

impl MemTxn {
    /// Number of sectors this transaction moves.
    pub fn num_sectors(&self) -> u32 {
        self.sector_mask.count_ones()
    }
}

/// Coalesce per-lane addresses into line transactions.
///
/// `addresses` holds one byte address per active lane; `width` is the
/// per-lane access width in bytes. Transactions are returned in ascending
/// line-address order so downstream behavior is deterministic.
///
/// # Examples
///
/// ```
/// use swiftsim_config::presets;
/// use swiftsim_mem::{coalesce_accesses, AddressMapping};
///
/// let mapping = AddressMapping::new(&presets::rtx2080ti().sm.l1d);
/// // 32 consecutive 4-byte words: one 128 B line, all four sectors.
/// let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
/// let txns = coalesce_accesses(&mapping, &addrs, 4, false);
/// assert_eq!(txns.len(), 1);
/// assert_eq!(txns[0].num_sectors(), 4);
/// ```
pub fn coalesce_accesses(
    mapping: &AddressMapping,
    addresses: &[u64],
    width: u8,
    write: bool,
) -> Vec<MemTxn> {
    // The transaction list is kept sorted by line address so each lane
    // costs one binary search instead of a linear scan over every
    // transaction accumulated so far; a fully divergent warp is
    // O(lanes log lanes) rather than O(lanes^2), and the ascending output
    // order falls out for free.
    let mut txns: Vec<MemTxn> = Vec::with_capacity(4);
    let upsert = |txns: &mut Vec<MemTxn>, line_addr: u64, mask: u8| {
        let pos = txns.partition_point(|t| t.line_addr < line_addr);
        match txns.get_mut(pos) {
            Some(txn) if txn.line_addr == line_addr => txn.sector_mask |= mask,
            _ => txns.insert(
                pos,
                MemTxn {
                    line_addr,
                    sector_mask: mask,
                    write,
                },
            ),
        }
    };
    for &addr in addresses {
        let line_addr = mapping.line_addr(addr);
        let mask = mapping.sector_mask(addr, u32::from(width));
        upsert(&mut txns, line_addr, mask);
        // Accesses wider than the distance to the line end spill into the
        // next line's first sector(s).
        let end = addr + u64::from(width.max(1)) - 1;
        let end_line = mapping.line_addr(end);
        if end_line != line_addr {
            let spill_mask = mapping.sector_mask(end_line, (end - end_line + 1) as u32);
            upsert(&mut txns, end_line, spill_mask);
        }
    }
    txns
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&presets::rtx2080ti().sm.l1d)
    }

    #[test]
    fn fully_coalesced_warp_is_one_txn() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x2000 + i * 4).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].line_addr, 0x2000);
        assert_eq!(txns[0].sector_mask, 0b1111);
        assert!(!txns[0].write);
    }

    #[test]
    fn single_sector_access() {
        // 8 lanes in one 32 B sector.
        let addrs: Vec<u64> = (0..8).map(|i| 0x2000 + i * 4).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].sector_mask, 0b0001);
        assert_eq!(txns[0].num_sectors(), 1);
    }

    #[test]
    fn strided_access_fans_out() {
        // Stride of one line: every lane its own line, one sector each.
        let addrs: Vec<u64> = (0..32).map(|i| 0x4000 + i * 128).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert_eq!(txns.len(), 32);
        assert!(txns.iter().all(|t| t.sector_mask == 0b0001));
        // Sorted by line address.
        assert!(txns.windows(2).all(|w| w[0].line_addr < w[1].line_addr));
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs = vec![0x1000u64; 32];
        let txns = coalesce_accesses(&mapping(), &addrs, 4, true);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].sector_mask, 0b0001);
        assert!(txns[0].write);
    }

    #[test]
    fn wide_access_crossing_line_boundary_spills() {
        // A 16-byte access starting 8 bytes before the line end.
        let txns = coalesce_accesses(&mapping(), &[0x1078], 16, false);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].line_addr, 0x1000);
        assert_eq!(txns[0].sector_mask, 0b1000);
        assert_eq!(txns[1].line_addr, 0x1080);
        assert_eq!(txns[1].sector_mask, 0b0001);
    }

    #[test]
    fn empty_input_yields_no_txns() {
        assert!(coalesce_accesses(&mapping(), &[], 4, false).is_empty());
    }

    #[test]
    fn random_access_txn_count_bounded_by_lanes() {
        let addrs: Vec<u64> = (0..32).map(|i| (i * 7919 + 13) * 64).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert!(txns.len() <= 32);
        assert!(!txns.is_empty());
    }

    fn mapping_with(line_bytes: u32, sector_bytes: u32) -> AddressMapping {
        let mut cfg = presets::rtx2080ti().sm.l1d;
        cfg.line_bytes = line_bytes;
        cfg.sector_bytes = sector_bytes;
        cfg.validate("test-l1").expect("geometry must validate");
        AddressMapping::new(&cfg)
    }

    /// The straightforward linear-scan coalescer the optimized version must
    /// match exactly (modulo its final sort).
    fn naive_coalesce(
        mapping: &AddressMapping,
        addresses: &[u64],
        width: u8,
        write: bool,
    ) -> Vec<MemTxn> {
        let mut txns: Vec<MemTxn> = Vec::new();
        let merge = |txns: &mut Vec<MemTxn>, line_addr: u64, sector_mask: u8| match txns
            .iter_mut()
            .find(|t| t.line_addr == line_addr)
        {
            Some(t) => t.sector_mask |= sector_mask,
            None => txns.push(MemTxn {
                line_addr,
                sector_mask,
                write,
            }),
        };
        for &addr in addresses {
            let line_addr = mapping.line_addr(addr);
            merge(
                &mut txns,
                line_addr,
                mapping.sector_mask(addr, u32::from(width)),
            );
            let end = addr + u64::from(width.max(1)) - 1;
            let end_line = mapping.line_addr(end);
            if end_line != line_addr {
                let spill = mapping.sector_mask(end_line, (end - end_line + 1) as u32);
                merge(&mut txns, end_line, spill);
            }
        }
        txns.sort_by_key(|t| t.line_addr);
        txns
    }

    #[test]
    fn coalesce_64b_lines_32b_sectors() {
        let m = mapping_with(64, 32);
        // 32 consecutive 4-byte words span two 64 B lines.
        let addrs: Vec<u64> = (0..32).map(|i| 0x2000 + i * 4).collect();
        let txns = coalesce_accesses(&m, &addrs, 4, false);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].line_addr, 0x2000);
        assert_eq!(txns[0].sector_mask, 0b11);
        assert_eq!(txns[1].line_addr, 0x2040);
        assert_eq!(txns[1].sector_mask, 0b11);
    }

    #[test]
    fn coalesce_128b_lines_16b_sectors_width_crosses_sector() {
        let m = mapping_with(128, 16);
        // An 8-byte access straddling the sector boundary at 0x10.
        let txns = coalesce_accesses(&m, &[0x100c], 8, false);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].sector_mask, 0b0000_0011);
        // And one straddling the top sector boundary, lighting bit 7.
        let txns = coalesce_accesses(&m, &[0x106c], 8, false);
        assert_eq!(txns[0].sector_mask, 0b1100_0000);
    }

    #[test]
    fn coalesce_64b_lines_16b_sectors_width_crosses_line() {
        let m = mapping_with(64, 16);
        // A 16-byte access starting 8 bytes before the line end spills into
        // the next line's first sector.
        let txns = coalesce_accesses(&m, &[0x1038], 16, false);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].line_addr, 0x1000);
        assert_eq!(txns[0].sector_mask, 0b1000);
        assert_eq!(txns[1].line_addr, 0x1040);
        assert_eq!(txns[1].sector_mask, 0b0001);
        // A second lane in the spill line merges with the spilled sector.
        let txns = coalesce_accesses(&m, &[0x1038, 0x1048], 16, true);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].sector_mask, 0b1000);
        assert_eq!(txns[1].sector_mask, 0b0011);
        assert!(txns.iter().all(|t| t.write));
    }

    #[test]
    fn coalesce_matches_naive_reference_across_geometries() {
        for (line, sector) in [(128, 32), (64, 32), (64, 16), (128, 16)] {
            let m = mapping_with(line, sector);
            for width in [1u8, 4, 8, 16, 32] {
                // Deterministic pseudo-random lane addresses, including
                // duplicates and descending runs.
                let addrs: Vec<u64> = (0..32u64)
                    .map(|i| (i.wrapping_mul(2654435761) % 4096) ^ ((i % 3) * 8))
                    .collect();
                let fast = coalesce_accesses(&m, &addrs, width, false);
                let slow = naive_coalesce(&m, &addrs, width, false);
                assert_eq!(fast, slow, "line={line} sector={sector} width={width}");
                // Output must be strictly ascending by line address.
                assert!(fast.windows(2).all(|w| w[0].line_addr < w[1].line_addr));
            }
        }
    }
}
