//! Per-warp memory-access coalescing.
//!
//! When a warp executes a load or store, the LD/ST unit merges the 32 lane
//! addresses into the minimal set of line-granularity transactions, each
//! carrying a sector mask (32 B sectors within 128 B lines on the modeled
//! GPUs). A fully coalesced warp access touches one line (4 sectors); a
//! fully divergent one touches up to 32 distinct lines — this transaction
//! count is what drives cache pressure, NoC traffic, and DRAM bandwidth in
//! both the cycle-accurate and the analytical memory models.

use crate::addr::AddressMapping;

/// One line-granularity memory transaction produced by the coalescer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemTxn {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Sectors of the line touched (bit per sector).
    pub sector_mask: u8,
    /// Whether this is a store.
    pub write: bool,
}

impl MemTxn {
    /// Number of sectors this transaction moves.
    pub fn num_sectors(&self) -> u32 {
        self.sector_mask.count_ones()
    }
}

/// Coalesce per-lane addresses into line transactions.
///
/// `addresses` holds one byte address per active lane; `width` is the
/// per-lane access width in bytes. Transactions are returned in ascending
/// line-address order so downstream behavior is deterministic.
///
/// # Examples
///
/// ```
/// use swiftsim_config::presets;
/// use swiftsim_mem::{coalesce_accesses, AddressMapping};
///
/// let mapping = AddressMapping::new(&presets::rtx2080ti().sm.l1d);
/// // 32 consecutive 4-byte words: one 128 B line, all four sectors.
/// let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
/// let txns = coalesce_accesses(&mapping, &addrs, 4, false);
/// assert_eq!(txns.len(), 1);
/// assert_eq!(txns[0].num_sectors(), 4);
/// ```
pub fn coalesce_accesses(
    mapping: &AddressMapping,
    addresses: &[u64],
    width: u8,
    write: bool,
) -> Vec<MemTxn> {
    let mut txns: Vec<MemTxn> = Vec::new();
    for &addr in addresses {
        let line_addr = mapping.line_addr(addr);
        let mask = mapping.sector_mask(addr, u32::from(width));
        match txns.iter_mut().find(|t| t.line_addr == line_addr) {
            Some(txn) => txn.sector_mask |= mask,
            None => txns.push(MemTxn {
                line_addr,
                sector_mask: mask,
                write,
            }),
        }
        // Accesses wider than the distance to the line end spill into the
        // next line's first sector(s).
        let end = addr + u64::from(width.max(1)) - 1;
        let end_line = mapping.line_addr(end);
        if end_line != line_addr {
            let spill_mask = mapping.sector_mask(end_line, (end - end_line + 1) as u32);
            match txns.iter_mut().find(|t| t.line_addr == end_line) {
                Some(txn) => txn.sector_mask |= spill_mask,
                None => txns.push(MemTxn {
                    line_addr: end_line,
                    sector_mask: spill_mask,
                    write,
                }),
            }
        }
    }
    txns.sort_by_key(|t| t.line_addr);
    txns
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&presets::rtx2080ti().sm.l1d)
    }

    #[test]
    fn fully_coalesced_warp_is_one_txn() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x2000 + i * 4).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].line_addr, 0x2000);
        assert_eq!(txns[0].sector_mask, 0b1111);
        assert!(!txns[0].write);
    }

    #[test]
    fn single_sector_access() {
        // 8 lanes in one 32 B sector.
        let addrs: Vec<u64> = (0..8).map(|i| 0x2000 + i * 4).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].sector_mask, 0b0001);
        assert_eq!(txns[0].num_sectors(), 1);
    }

    #[test]
    fn strided_access_fans_out() {
        // Stride of one line: every lane its own line, one sector each.
        let addrs: Vec<u64> = (0..32).map(|i| 0x4000 + i * 128).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert_eq!(txns.len(), 32);
        assert!(txns.iter().all(|t| t.sector_mask == 0b0001));
        // Sorted by line address.
        assert!(txns.windows(2).all(|w| w[0].line_addr < w[1].line_addr));
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs = vec![0x1000u64; 32];
        let txns = coalesce_accesses(&mapping(), &addrs, 4, true);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].sector_mask, 0b0001);
        assert!(txns[0].write);
    }

    #[test]
    fn wide_access_crossing_line_boundary_spills() {
        // A 16-byte access starting 8 bytes before the line end.
        let txns = coalesce_accesses(&mapping(), &[0x1078], 16, false);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].line_addr, 0x1000);
        assert_eq!(txns[0].sector_mask, 0b1000);
        assert_eq!(txns[1].line_addr, 0x1080);
        assert_eq!(txns[1].sector_mask, 0b0001);
    }

    #[test]
    fn empty_input_yields_no_txns() {
        assert!(coalesce_accesses(&mapping(), &[], 4, false).is_empty());
    }

    #[test]
    fn random_access_txn_count_bounded_by_lanes() {
        let addrs: Vec<u64> = (0..32).map(|i| (i * 7919 + 13) * 64).collect();
        let txns = coalesce_accesses(&mapping(), &addrs, 4, false);
        assert!(txns.len() <= 32);
        assert!(!txns.is_empty());
    }
}
