//! Fast functional (timing-free) cache-hierarchy simulation.
//!
//! This is the "cache simulator" option the paper names for obtaining the
//! per-PC hit rates `R_L1`, `R_L2`, `R_DRAM` of the analytical memory model
//! (Eq. 1). It replays an application's coalesced memory transactions
//! through functional copies of every L1 and every L2 slice — same sectored
//! tag arrays and replacement policies as the cycle-accurate caches, but no
//! MSHRs, queues, or cycle ticking — and accumulates, for each load PC,
//! where its accesses were served.
//!
//! One pass over the trace with this simulator is orders of magnitude
//! cheaper than a cycle-accurate run, which is exactly why
//! Swift-Sim-Memory's precomputation step does not erase its speedup.

use crate::addr::AddressMapping;
use crate::coalesce::MemTxn;
use crate::tag_array::{Probe, TagArray};
use std::collections::HashMap;
use swiftsim_config::GpuConfig;

/// Where a PC's accesses were served, as fractions summing to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcHitRates {
    /// Fraction of accesses hitting in L1 (`R_L1` in Eq. 1).
    pub l1: f64,
    /// Fraction hitting in L2 (`R_L2`).
    pub l2: f64,
    /// Fraction served by DRAM (`R_DRAM`).
    pub dram: f64,
}

impl PcHitRates {
    /// Rates for a PC that was never observed: everything from DRAM, the
    /// conservative default.
    pub fn all_dram() -> Self {
        PcHitRates {
            l1: 0.0,
            l2: 0.0,
            dram: 1.0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    l1_hits: u64,
    l2_hits: u64,
    dram: u64,
}

impl Counts {
    fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.dram
    }
}

/// Functional two-level sectored cache simulation over a whole GPU.
#[derive(Debug, Clone)]
pub struct FunctionalCacheSim {
    l1s: Vec<TagArray>,
    l2s: Vec<TagArray>,
    line_bytes: u32,
    partitions: u32,
    per_pc: HashMap<u32, Counts>,
    overall: Counts,
    time: u64,
}

impl FunctionalCacheSim {
    /// Build functional caches for every SM and memory partition of `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        FunctionalCacheSim {
            l1s: (0..cfg.num_sms)
                .map(|i| TagArray::new(&cfg.sm.l1d, u64::from(i)))
                .collect(),
            l2s: (0..cfg.memory.partitions)
                .map(|i| TagArray::new(&cfg.memory.l2, 0x1_0000 + u64::from(i)))
                .collect(),
            line_bytes: cfg.memory.l2.line_bytes,
            partitions: cfg.memory.partitions,
            per_pc: HashMap::new(),
            overall: Counts::default(),
            time: 0,
        }
    }

    /// Replay one coalesced transaction issued by SM `sm` at load/store PC
    /// `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range for the configured GPU.
    pub fn access(&mut self, sm: usize, pc: u32, txn: MemTxn) {
        self.time += 1;
        let now = self.time;
        let counts = self.per_pc.entry(pc).or_default();

        // Write-through, no-write-allocate L1: stores skip L1 presence.
        let l1_serves = if txn.write {
            false
        } else {
            match self.l1s[sm].probe(txn.line_addr, txn.sector_mask, now) {
                Probe::Hit { .. } => true,
                Probe::SectorMiss { .. } => {
                    self.l1s[sm].fill(txn.line_addr, txn.sector_mask, now);
                    false
                }
                Probe::LineMiss => {
                    self.l1s[sm].allocate(txn.line_addr, false, now);
                    self.l1s[sm].fill(txn.line_addr, txn.sector_mask, now);
                    false
                }
            }
        };
        if l1_serves {
            counts.l1_hits += 1;
            self.overall.l1_hits += 1;
            return;
        }

        let part = AddressMapping::partition_index(txn.line_addr, self.line_bytes, self.partitions);
        let l2 = &mut self.l2s[part];
        let l2_serves = match l2.probe(txn.line_addr, txn.sector_mask, now) {
            Probe::Hit { .. } => true,
            Probe::SectorMiss { .. } => {
                l2.fill(txn.line_addr, txn.sector_mask, now);
                false
            }
            Probe::LineMiss => {
                l2.allocate(txn.line_addr, false, now);
                l2.fill(txn.line_addr, txn.sector_mask, now);
                false
            }
        };
        if l2_serves {
            counts.l2_hits += 1;
            self.overall.l2_hits += 1;
        } else {
            counts.dram += 1;
            self.overall.dram += 1;
        }
    }

    /// Hit rates observed for `pc`, or the all-DRAM default if the PC was
    /// never replayed.
    pub fn rates(&self, pc: u32) -> PcHitRates {
        match self.per_pc.get(&pc) {
            Some(c) if c.total() > 0 => {
                let t = c.total() as f64;
                PcHitRates {
                    l1: c.l1_hits as f64 / t,
                    l2: c.l2_hits as f64 / t,
                    dram: c.dram as f64 / t,
                }
            }
            _ => PcHitRates::all_dram(),
        }
    }

    /// Aggregate hit rates over all replayed transactions.
    pub fn overall_rates(&self) -> PcHitRates {
        let c = self.overall;
        if c.total() == 0 {
            return PcHitRates::all_dram();
        }
        let t = c.total() as f64;
        PcHitRates {
            l1: c.l1_hits as f64 / t,
            l2: c.l2_hits as f64 / t,
            dram: c.dram as f64 / t,
        }
    }

    /// Total transactions replayed.
    pub fn accesses(&self) -> u64 {
        self.time
    }

    /// Distinct load/store PCs observed.
    pub fn num_pcs(&self) -> usize {
        self.per_pc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn read(line: u64) -> MemTxn {
        MemTxn {
            line_addr: line,
            sector_mask: 0b0001,
            write: false,
        }
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut sim = FunctionalCacheSim::new(&presets::rtx2080ti());
        sim.access(0, 0x10, read(0x1000));
        for _ in 0..9 {
            sim.access(0, 0x10, read(0x1000));
        }
        let r = sim.rates(0x10);
        assert!((r.l1 - 0.9).abs() < 1e-12, "r = {r:?}");
        assert!((r.dram - 0.1).abs() < 1e-12);
        assert_eq!(sim.accesses(), 10);
        assert_eq!(sim.num_pcs(), 1);
    }

    #[test]
    fn cross_sm_reuse_hits_l2_not_l1() {
        let mut sim = FunctionalCacheSim::new(&presets::rtx2080ti());
        sim.access(0, 0x10, read(0x1000));
        // A different SM misses its own L1 but finds the line in shared L2.
        sim.access(1, 0x10, read(0x1000));
        let r = sim.rates(0x10);
        assert_eq!(r.l1, 0.0);
        assert!((r.l2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rates_sum_to_one() {
        let mut sim = FunctionalCacheSim::new(&presets::rtx2080ti());
        for i in 0..500u64 {
            sim.access((i % 4) as usize, 0x20, read((i % 37) * 0x80));
        }
        let r = sim.rates(0x20);
        assert!((r.l1 + r.l2 + r.dram - 1.0).abs() < 1e-9);
        let o = sim.overall_rates();
        assert!((o.l1 + o.l2 + o.dram - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_pc_defaults_to_dram() {
        let sim = FunctionalCacheSim::new(&presets::rtx2080ti());
        assert_eq!(sim.rates(0xdead), PcHitRates::all_dram());
        assert_eq!(sim.overall_rates(), PcHitRates::all_dram());
    }

    #[test]
    fn stores_bypass_l1() {
        let mut sim = FunctionalCacheSim::new(&presets::rtx2080ti());
        let w = MemTxn {
            line_addr: 0x2000,
            sector_mask: 1,
            write: true,
        };
        sim.access(0, 0x30, w);
        sim.access(0, 0x30, w);
        let r = sim.rates(0x30);
        // Second store hits L2 (allocated by the first), never L1.
        assert_eq!(r.l1, 0.0);
        assert!((r.l2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_pc_rates_are_independent() {
        let mut sim = FunctionalCacheSim::new(&presets::rtx2080ti());
        // PC 1 streams (never reuses); PC 2 hammers one line.
        for i in 0..100u64 {
            sim.access(0, 1, read(0x10_0000 + i * 0x80));
            sim.access(0, 2, read(0x2000));
        }
        assert_eq!(sim.rates(1).l1, 0.0);
        assert!(sim.rates(2).l1 > 0.9);
    }
}
