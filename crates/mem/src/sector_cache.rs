//! A complete banked sector cache: tag array + MSHR file + bank timing.
//!
//! One [`SectorCache`] instance models the per-SM L1 data cache; another
//! (one per memory partition) models an L2 slice. Behavioral differences —
//! streaming allocate-on-fill vs allocate-on-miss, write-through vs
//! write-back, no-write-allocate vs write-allocate — all come from the
//! [`CacheConfig`], so exploring cache policies (one of the paper's
//! motivating use cases) only requires editing the configuration file.

use crate::coalesce::MemTxn;
use crate::fasthash::FastMap;
use crate::mshr::{MshrCounters, MshrFile, MshrOutcome};
use crate::tag_array::{LineState, Probe, TagArray, TagArrayState};
use crate::Cycle;
use swiftsim_config::{AllocPolicy, CacheConfig, CacheWriteAllocate, CacheWritePolicy};

/// Outcome of one cache access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessOutcome {
    /// All requested sectors present. `ready_at` is when data returns;
    /// `downstream_write` carries the forwarded store for write-through
    /// caches.
    Hit {
        /// Cycle at which the data is available to the requester.
        ready_at: Cycle,
        /// Write-through traffic to forward to the next level, if any.
        downstream_write: Option<MemTxn>,
    },
    /// Miss: an MSHR entry was allocated and `fetch` must be forwarded to
    /// the next level. The requester's `waiter` token is woken by
    /// [`SectorCache::fill`].
    Miss {
        /// The fetch to forward downstream.
        fetch: MemTxn,
        /// Write-through traffic to forward alongside the fetch, if any.
        downstream_write: Option<MemTxn>,
    },
    /// Miss merged into an in-flight MSHR entry: no downstream traffic, the
    /// waiter is woken by the already-pending fill.
    MissMerged {
        /// Write-through traffic to forward, if any.
        downstream_write: Option<MemTxn>,
    },
    /// A store handled without allocation (write-through +
    /// no-write-allocate): the store is simply forwarded downstream and the
    /// warp does not wait for it.
    WriteForwarded {
        /// The store to forward downstream.
        forward: MemTxn,
    },
    /// The access could not be accepted this cycle (MSHR full, merge limit
    /// hit, or every way in the set reserved). The requester must retry.
    ReservationFailure,
}

/// An evicted dirty line that must be written back downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// Dirty sectors to write out.
    pub dirty_mask: u8,
}

/// Result of completing a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillResult {
    /// Waiter tokens registered by [`SectorCache::access`] for this line.
    pub waiters: Vec<u64>,
    /// Dirty victim to write back downstream, if the fill evicted one.
    pub writeback: Option<EvictedLine>,
}

/// Hot-path counters, reported to the Metrics Gatherer after simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // self-describing counters
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub merged_misses: u64,
    pub write_forwards: u64,
    pub reservation_failures: u64,
    pub bank_conflicts: u64,
    pub bank_stall_cycles: u64,
    pub writebacks: u64,
    pub fills: u64,
}

impl CacheStats {
    /// Miss rate over demand accesses (misses + merged misses over all
    /// demand accesses that probed the tags).
    pub fn miss_rate(&self) -> f64 {
        let demand = self.hits + self.misses + self.merged_misses;
        if demand == 0 {
            return 0.0;
        }
        (self.misses + self.merged_misses) as f64 / demand as f64
    }
}

/// A banked, sectored, MSHR-backed cache.
#[derive(Debug, Clone)]
pub struct SectorCache {
    tags: TagArray,
    mshr: MshrFile,
    latency: Cycle,
    alloc: AllocPolicy,
    write_policy: CacheWritePolicy,
    write_allocate: CacheWriteAllocate,
    bank_free_at: Vec<Cycle>,
    /// Sectors to mark dirty when a write-allocate fill returns.
    pending_dirty: FastMap<u64, u8>,
    /// Dirty victims evicted at allocation time (allocate-on-miss caches),
    /// surfaced with the next fill.
    staged_writebacks: Vec<EvictedLine>,
    stats: CacheStats,
}

impl SectorCache {
    /// Build a cache from its configuration. `seed` feeds the Random
    /// replacement policy (deterministic per seed).
    pub fn new(cfg: &CacheConfig, seed: u64) -> Self {
        SectorCache {
            tags: TagArray::new(cfg, seed),
            mshr: MshrFile::new(cfg.mshr_entries, cfg.mshr_max_merge),
            latency: Cycle::from(cfg.latency),
            alloc: cfg.alloc,
            write_policy: cfg.write_policy,
            write_allocate: cfg.write_allocate,
            bank_free_at: vec![0; cfg.banks as usize],
            pending_dirty: FastMap::default(),
            staged_writebacks: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Present one coalesced transaction to the cache at cycle `now`.
    /// `waiter` identifies the requester; it is returned by the matching
    /// [`SectorCache::fill`] so the caller can wake the stalled warp.
    pub fn access(&mut self, txn: MemTxn, waiter: u64, now: Cycle) -> AccessOutcome {
        self.stats.accesses += 1;

        // Bank arbitration: the transaction occupies its bank for one cycle.
        let bank = self
            .tags
            .mapping()
            .bank_index(txn.line_addr | lowest_sector_offset(txn));
        let start = now.max(self.bank_free_at[bank]);
        if start > now {
            self.stats.bank_conflicts += 1;
            self.stats.bank_stall_cycles += start - now;
        }

        let probe = self.tags.probe(txn.line_addr, txn.sector_mask, start);

        if txn.write {
            return self.handle_write(txn, waiter, probe, bank, start);
        }

        match probe {
            Probe::Hit { .. } => {
                self.bank_free_at[bank] = start + 1;
                self.stats.hits += 1;
                AccessOutcome::Hit {
                    ready_at: start + self.latency,
                    downstream_write: None,
                }
            }
            Probe::SectorMiss { .. } | Probe::LineMiss => {
                self.handle_read_miss(txn, waiter, probe, bank, start)
            }
        }
    }

    fn handle_read_miss(
        &mut self,
        txn: MemTxn,
        waiter: u64,
        probe: Probe,
        bank: usize,
        start: Cycle,
    ) -> AccessOutcome {
        // For allocate-on-miss caches a brand-new line needs a way *and* an
        // MSHR entry; check the way first without committing.
        if self.alloc == AllocPolicy::OnMiss
            && matches!(probe, Probe::LineMiss)
            && !self.mshr.contains(txn.line_addr)
        {
            // Tentatively allocate; failure = every way reserved.
            match self.tags.allocate(txn.line_addr, true, start) {
                Some(victim) => {
                    if let Some(evicted) = victim.evicted_line {
                        if victim.dirty_mask != 0 {
                            // Dirty eviction at allocation time: surfaced to
                            // the caller with the next fill.
                            self.staged_writebacks.push(EvictedLine {
                                line_addr: evicted,
                                dirty_mask: victim.dirty_mask,
                            });
                        }
                    }
                }
                None => {
                    self.stats.reservation_failures += 1;
                    return AccessOutcome::ReservationFailure;
                }
            }
        }

        match self.mshr.allocate(txn.line_addr, txn.sector_mask, waiter) {
            MshrOutcome::Allocated => {
                self.bank_free_at[bank] = start + 1;
                self.stats.misses += 1;
                AccessOutcome::Miss {
                    fetch: MemTxn {
                        write: false,
                        ..txn
                    },
                    downstream_write: None,
                }
            }
            MshrOutcome::Merged => {
                self.bank_free_at[bank] = start + 1;
                self.stats.merged_misses += 1;
                AccessOutcome::MissMerged {
                    downstream_write: None,
                }
            }
            MshrOutcome::ReservationFailure => {
                self.stats.reservation_failures += 1;
                AccessOutcome::ReservationFailure
            }
        }
    }

    fn handle_write(
        &mut self,
        txn: MemTxn,
        waiter: u64,
        probe: Probe,
        bank: usize,
        start: Cycle,
    ) -> AccessOutcome {
        match self.write_policy {
            CacheWritePolicy::WriteThrough => {
                // Update the line on hit, forward the store regardless.
                if matches!(probe, Probe::Hit { .. } | Probe::SectorMiss { .. })
                    && self.tags.line_state(txn.line_addr).map(|(s, _)| s) == Some(LineState::Valid)
                {
                    // Refresh written sectors as valid (write-validate).
                    self.tags.fill(txn.line_addr, txn.sector_mask, start);
                }
                self.bank_free_at[bank] = start + 1;
                if matches!(probe, Probe::Hit { .. }) {
                    self.stats.hits += 1;
                    AccessOutcome::Hit {
                        ready_at: start + self.latency,
                        downstream_write: Some(txn),
                    }
                } else {
                    self.stats.write_forwards += 1;
                    AccessOutcome::WriteForwarded { forward: txn }
                }
            }
            CacheWritePolicy::WriteBack => match probe {
                Probe::Hit { .. } => {
                    self.tags.mark_dirty(txn.line_addr, txn.sector_mask);
                    self.bank_free_at[bank] = start + 1;
                    self.stats.hits += 1;
                    AccessOutcome::Hit {
                        ready_at: start + self.latency,
                        downstream_write: None,
                    }
                }
                Probe::SectorMiss { .. } | Probe::LineMiss => {
                    if self.write_allocate == CacheWriteAllocate::NoWriteAllocate {
                        self.bank_free_at[bank] = start + 1;
                        self.stats.write_forwards += 1;
                        return AccessOutcome::WriteForwarded { forward: txn };
                    }
                    // Fetch-on-write: allocate like a read miss, remember to
                    // dirty the written sectors when the fill lands.
                    let outcome = self.handle_read_miss(
                        MemTxn {
                            write: false,
                            ..txn
                        },
                        waiter,
                        probe,
                        bank,
                        start,
                    );
                    if !matches!(outcome, AccessOutcome::ReservationFailure) {
                        *self.pending_dirty.entry(txn.line_addr).or_insert(0) |= txn.sector_mask;
                    }
                    outcome
                }
            },
        }
    }

    /// Complete the in-flight fill for `line_addr` at cycle `now`.
    ///
    /// Returns the waiters to wake and, possibly, a dirty victim to write
    /// back downstream.
    ///
    /// # Panics
    ///
    /// Panics if no fill is in flight for `line_addr` — that is a protocol
    /// violation by the caller.
    pub fn fill(&mut self, line_addr: u64, now: Cycle) -> FillResult {
        let (waiters, sector_mask) = self
            .mshr
            .fill(line_addr)
            .unwrap_or_else(|| panic!("fill for line {line_addr:#x} with no MSHR entry"));
        self.stats.fills += 1;

        let mut writeback = self.staged_writebacks.pop();

        match self.alloc {
            AllocPolicy::OnMiss => {
                // Usually the way was reserved at miss time. A *sector*
                // miss, however, targets an already-valid line, and that
                // line may have been evicted while the fill was in flight —
                // re-allocate it (or, if every way is reserved, serve the
                // waiters without caching the data).
                if self.tags.line_state(line_addr).is_none() {
                    if let Some(victim) = self.tags.allocate(line_addr, false, now) {
                        if let Some(evicted) = victim.evicted_line {
                            if victim.dirty_mask != 0 {
                                writeback = Some(EvictedLine {
                                    line_addr: evicted,
                                    dirty_mask: victim.dirty_mask,
                                });
                            }
                        }
                    }
                }
                if self.tags.line_state(line_addr).is_some() {
                    self.tags.fill(line_addr, sector_mask, now);
                }
            }
            AllocPolicy::OnFill => {
                // Allocate now; on-fill caches have no reserved lines so a
                // victim always exists.
                let victim = self
                    .tags
                    .allocate(line_addr, false, now)
                    .expect("allocate-on-fill cache always has a victim");
                if let (Some(evicted), true) = (victim.evicted_line, victim.dirty_mask != 0) {
                    writeback = Some(EvictedLine {
                        line_addr: evicted,
                        dirty_mask: victim.dirty_mask,
                    });
                }
                self.tags.fill(line_addr, sector_mask, now);
            }
        }

        if let Some(dirty) = self.pending_dirty.remove(&line_addr) {
            // The line may have bypassed caching above (every way reserved);
            // the dirty data then goes straight back downstream.
            if matches!(self.tags.line_state(line_addr), Some((LineState::Valid, _))) {
                self.tags.mark_dirty(line_addr, dirty);
            } else if writeback.is_none() {
                writeback = Some(EvictedLine {
                    line_addr,
                    dirty_mask: dirty,
                });
            }
        }
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        FillResult { waiters, writeback }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.merged_misses = self.mshr.merges();
        s
    }

    /// In-flight MSHR occupancy (for the Metrics Gatherer and tests).
    pub fn mshr_occupancy(&self) -> usize {
        self.mshr.occupancy()
    }

    /// The longest-outstanding in-flight MSHR line and its waiter count,
    /// for deadlock diagnostics.
    pub fn oldest_mshr_line(&self) -> Option<(u64, usize)> {
        self.mshr.oldest_line()
    }

    /// The cache's address mapping.
    pub fn mapping(&self) -> &crate::AddressMapping {
        self.tags.mapping()
    }

    /// Snapshot the cache's persistent state for checkpointing.
    ///
    /// Only valid at a quiescent point: no in-flight fills, no pending
    /// dirty marks, no staged writebacks. (Kernel boundaries satisfy this —
    /// the engine drains all memory traffic before a kernel completes.)
    ///
    /// # Errors
    ///
    /// Rejects the snapshot when transient state is outstanding.
    pub fn save_state(&self) -> Result<SectorCacheState, String> {
        if self.mshr.occupancy() != 0 {
            return Err(format!(
                "cache has {} MSHR fills in flight",
                self.mshr.occupancy()
            ));
        }
        if !self.pending_dirty.is_empty() {
            return Err(format!(
                "cache has {} pending dirty marks",
                self.pending_dirty.len()
            ));
        }
        if !self.staged_writebacks.is_empty() {
            return Err(format!(
                "cache has {} staged writebacks",
                self.staged_writebacks.len()
            ));
        }
        Ok(SectorCacheState {
            tags: self.tags.save_state(),
            bank_free_at: self.bank_free_at.clone(),
            mshr: self.mshr.counters(),
            stats: self.stats,
        })
    }

    /// Restore a snapshot taken from an identically configured cache.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose geometry does not match this cache.
    pub fn restore_state(&mut self, state: &SectorCacheState) -> Result<(), String> {
        if state.bank_free_at.len() != self.bank_free_at.len() {
            return Err(format!(
                "snapshot has {} banks, this cache has {}",
                state.bank_free_at.len(),
                self.bank_free_at.len()
            ));
        }
        self.tags.restore_state(&state.tags)?;
        self.bank_free_at.copy_from_slice(&state.bank_free_at);
        self.mshr.restore_counters(&state.mshr)?;
        self.stats = state.stats;
        Ok(())
    }
}

/// Serializable snapshot of a [`SectorCache`]'s persistent state
/// (checkpointing). Transient state — in-flight MSHR entries, pending
/// dirty marks, staged writebacks — must be empty at snapshot time, so it
/// is not represented.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorCacheState {
    /// Tag array lines + replacement RNG.
    pub tags: TagArrayState,
    /// Per-bank busy-until cycles.
    pub bank_free_at: Vec<Cycle>,
    /// MSHR lifetime counters.
    pub mshr: MshrCounters,
    /// Cache lifetime counters (raw, without the derived
    /// `merged_misses` — [`SectorCache::stats`] re-derives it).
    pub stats: CacheStats,
}

/// Offset of the lowest requested sector, used for bank selection.
fn lowest_sector_offset(txn: MemTxn) -> u64 {
    u64::from(txn.sector_mask.trailing_zeros()) * 32
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn l1() -> SectorCache {
        SectorCache::new(&presets::rtx2080ti().sm.l1d, 0)
    }

    fn l2() -> SectorCache {
        SectorCache::new(&presets::rtx2080ti().memory.l2, 0)
    }

    fn read(line: u64, sectors: u8) -> MemTxn {
        MemTxn {
            line_addr: line,
            sector_mask: sectors,
            write: false,
        }
    }

    fn write(line: u64, sectors: u8) -> MemTxn {
        MemTxn {
            line_addr: line,
            sector_mask: sectors,
            write: true,
        }
    }

    #[test]
    fn read_miss_fill_hit() {
        let mut c = l1();
        let out = c.access(read(0x1000, 0b0001), 7, 0);
        let AccessOutcome::Miss { fetch, .. } = out else {
            panic!("expected miss, got {out:?}");
        };
        assert_eq!(fetch.line_addr, 0x1000);
        assert!(!fetch.write);

        let fill = c.fill(0x1000, 100);
        assert_eq!(fill.waiters, vec![7]);
        assert!(fill.writeback.is_none());

        let out = c.access(read(0x1000, 0b0001), 8, 101);
        assert!(matches!(out, AccessOutcome::Hit { ready_at, .. } if ready_at == 101 + 32));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn second_miss_merges() {
        let mut c = l1();
        assert!(matches!(
            c.access(read(0x1000, 0b0001), 1, 0),
            AccessOutcome::Miss { .. }
        ));
        assert!(matches!(
            c.access(read(0x1000, 0b0010), 2, 1),
            AccessOutcome::MissMerged { .. }
        ));
        let fill = c.fill(0x1000, 50);
        assert_eq!(fill.waiters, vec![1, 2]);
        // Both sectors are now valid.
        assert!(matches!(
            c.access(read(0x1000, 0b0011), 3, 51),
            AccessOutcome::Hit { .. }
        ));
    }

    #[test]
    fn sector_miss_on_valid_line() {
        let mut c = l1();
        c.access(read(0x1000, 0b0001), 1, 0);
        c.fill(0x1000, 10);
        // Same line, different sector: miss again (sectored behavior).
        assert!(matches!(
            c.access(read(0x1000, 0b1000), 2, 11),
            AccessOutcome::Miss { .. }
        ));
    }

    #[test]
    fn write_through_l1_forwards_stores() {
        let mut c = l1();
        // Write miss: forwarded, no allocation, no MSHR.
        let out = c.access(write(0x2000, 0b0001), 1, 0);
        let AccessOutcome::WriteForwarded { forward } = out else {
            panic!("expected forward, got {out:?}");
        };
        assert!(forward.write);
        assert_eq!(c.mshr_occupancy(), 0);

        // Fill the line via a read, then a write hit still forwards.
        c.access(read(0x2000, 0b0001), 2, 1);
        c.fill(0x2000, 20);
        let out = c.access(write(0x2000, 0b0001), 3, 21);
        assert!(
            matches!(out, AccessOutcome::Hit { downstream_write: Some(w), .. } if w.write),
            "write-through hit must forward the store"
        );
    }

    #[test]
    fn write_back_l2_dirties_and_writes_back() {
        let mut cfg = presets::rtx2080ti().memory.l2;
        cfg.sets = 2;
        cfg.ways = 1;
        let mut c = SectorCache::new(&cfg, 0);

        // Write miss with write-allocate: fetches the line.
        let out = c.access(write(0x0000, 0b0001), 1, 0);
        assert!(matches!(out, AccessOutcome::Miss { fetch, .. } if !fetch.write));
        c.fill(0x0000, 10);

        // Evicting the dirty line (same set: 2 sets of 128 B lines → +0x100)
        // must produce a writeback.
        let out = c.access(read(0x0100, 0b0001), 2, 11);
        assert!(matches!(out, AccessOutcome::Miss { .. }));
        let fill = c.fill(0x0100, 200);
        let wb = fill.writeback.expect("dirty line written back");
        assert_eq!(wb.line_addr, 0x0000);
        assert_eq!(wb.dirty_mask, 0b0001);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_back_hit_does_not_go_downstream() {
        let mut c = l2();
        c.access(read(0x3000, 0b0001), 1, 0);
        c.fill(0x3000, 10);
        let out = c.access(write(0x3000, 0b0001), 2, 11);
        assert!(matches!(
            out,
            AccessOutcome::Hit {
                downstream_write: None,
                ..
            }
        ));
    }

    #[test]
    fn mshr_exhaustion_is_reservation_failure() {
        let mut cfg = presets::rtx2080ti().sm.l1d;
        cfg.mshr_entries = 2;
        cfg.mshr_max_merge = 1;
        let mut c = SectorCache::new(&cfg, 0);
        assert!(matches!(
            c.access(read(0x0000, 1), 1, 0),
            AccessOutcome::Miss { .. }
        ));
        assert!(matches!(
            c.access(read(0x1000, 1), 2, 0),
            AccessOutcome::Miss { .. }
        ));
        assert!(matches!(
            c.access(read(0x2000, 1), 3, 0),
            AccessOutcome::ReservationFailure
        ));
        assert_eq!(c.stats().reservation_failures, 1);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut c = l1();
        // Two transactions to the same bank (same sector offset) in the same
        // cycle: the second stalls.
        c.access(read(0x0000, 0b0001), 1, 0);
        c.access(read(0x8000, 0b0001), 2, 0);
        let s = c.stats();
        assert_eq!(s.bank_conflicts, 1);
        assert!(s.bank_stall_cycles >= 1);

        // Different banks in the same cycle: no new conflict.
        let mut c2 = l1();
        c2.access(read(0x0000, 0b0001), 1, 0);
        c2.access(read(0x0000, 0b0010), 2, 0);
        assert_eq!(c2.stats().bank_conflicts, 0);
    }

    #[test]
    fn miss_rate_counts_merges() {
        let mut c = l1();
        c.access(read(0x0000, 1), 1, 0);
        c.access(read(0x0000, 1), 2, 0); // merged
        c.fill(0x0000, 10);
        c.access(read(0x0000, 1), 3, 11); // hit
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.merged_misses, 1);
        assert_eq!(s.hits, 1);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no MSHR entry")]
    fn fill_without_miss_panics() {
        let mut c = l1();
        c.fill(0x1234, 0);
    }

    #[test]
    fn streaming_l1_never_tag_reservation_fails() {
        // Allocate-on-fill: misses don't reserve ways, so a tiny cache with
        // a big MSHR can have unbounded outstanding lines.
        let mut cfg = presets::rtx2080ti().sm.l1d;
        cfg.sets = 2;
        cfg.ways = 1;
        let mut c = SectorCache::new(&cfg, 0);
        for i in 0..16u64 {
            let out = c.access(read(i * 0x80, 1), i, 0);
            assert!(
                matches!(out, AccessOutcome::Miss { .. }),
                "access {i} gave {out:?}"
            );
        }
        for i in 0..16u64 {
            c.fill(i * 0x80, 100 + i);
        }
        assert_eq!(c.stats().fills, 16);
    }
}
