//! Memory-hierarchy substrate for the Swift-Sim GPU simulation framework.
//!
//! The paper's modeled GPU (§II-A / Table II) has a sectored, streaming,
//! write-through L1 per SM and a sectored, write-back, banked L2 shared by
//! all SMs through the interconnect; L2 misses go to partitioned DRAM. This
//! crate implements every piece of that hierarchy from scratch:
//!
//! * [`AddressMapping`] — line/sector/set/bank/partition address math.
//! * [`TagArray`] — sectored tag array with LRU / FIFO / Random replacement.
//! * [`MshrFile`] — miss-status holding registers with per-entry merge
//!   limits (256×8 for the 2080 Ti L1, 192×4 for its L2).
//! * [`SectorCache`] — a complete banked sector cache combining the above,
//!   with hit/miss/reservation-failure outcomes and fill handling, usable
//!   as either L1 or L2.
//! * [`DramChannel`] — a latency/bandwidth DRAM channel with a bounded
//!   request queue, one per memory partition.
//! * [`coalesce`] — the per-warp memory-access coalescer that merges lane
//!   addresses into 32 B sector transactions.
//! * [`ReuseDistanceAnalyzer`] and [`FunctionalCacheSim`] — the two tools
//!   the paper names for obtaining the per-PC hit rates `R_L1`, `R_L2`,
//!   `R_DRAM` consumed by the analytical memory model (Eq. 1): a
//!   reuse-distance tool and a (functional) cache simulator.
//!
//! All timing here is expressed through explicit `now` cycle arguments so
//! the same structures serve the detailed cycle-accurate simulator and the
//! fast hybrid ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod coalesce;
mod dram;
pub mod fasthash;
mod funcsim;
mod mshr;
mod reuse;
mod sector_cache;
mod tag_array;

pub use addr::AddressMapping;
pub use coalesce::{coalesce_accesses, MemTxn};
pub use dram::{DramChannel, DramChannelState, DramStats};
pub use fasthash::FastMap;
pub use funcsim::{FunctionalCacheSim, PcHitRates};
pub use mshr::{MshrCounters, MshrFile, MshrOutcome};
pub use reuse::ReuseDistanceAnalyzer;
pub use sector_cache::{
    AccessOutcome, CacheStats, EvictedLine, FillResult, SectorCache, SectorCacheState,
};
pub use tag_array::{LineSnapshot, LineState, TagArray, TagArrayState};

/// A simulation cycle index.
pub type Cycle = u64;
