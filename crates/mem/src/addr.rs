//! Address decomposition for sectored caches and partitioned memory.

use swiftsim_config::CacheConfig;

/// Pre-computed address math for one cache level plus the global partition
/// hash.
///
/// All fields are derived from a [`CacheConfig`]; powers of two are
/// exploited with shifts and masks because this sits on the hottest path of
/// the cycle-accurate simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    line_shift: u32,
    sector_shift: u32,
    sectors_per_line: u32,
    set_mask: u64,
    banks: u64,
}

impl AddressMapping {
    /// Build the mapping for a cache configuration.
    ///
    /// # Panics
    ///
    /// Panics if line or sector sizes are not powers of two or the set count
    /// is zero; [`CacheConfig::validate`] rejects such configurations before
    /// simulation starts.
    pub fn new(cfg: &CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            cfg.sector_bytes.is_power_of_two(),
            "sector size must be a power of two"
        );
        assert!(cfg.sets > 0, "cache must have at least one set");
        AddressMapping {
            line_shift: cfg.line_bytes.trailing_zeros(),
            sector_shift: cfg.sector_bytes.trailing_zeros(),
            sectors_per_line: cfg.sectors_per_line(),
            set_mask: u64::from(cfg.sets - 1),
            banks: u64::from(cfg.banks),
        }
    }

    /// Line-aligned address (the tag + index bits).
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    /// Set index of a byte or line address.
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Sector index of a byte address within its line.
    pub fn sector_index(&self, addr: u64) -> u32 {
        ((addr >> self.sector_shift) as u32) & (self.sectors_per_line - 1)
    }

    /// One-hot sector mask covering `width` bytes starting at `addr`,
    /// clipped to this line.
    ///
    /// The mask is a `u8`, one bit per sector, so it can only represent
    /// lines with at most 8 sectors; `CacheConfig::validate` rejects larger
    /// geometries (e.g. 256 B lines with 16 B sectors) before a mapping is
    /// ever built, keeping the `1 << s` shifts below in range.
    pub fn sector_mask(&self, addr: u64, width: u32) -> u8 {
        let first = self.sector_index(addr);
        let last_byte = addr + u64::from(width.max(1)) - 1;
        let last = if self.line_addr(last_byte) == self.line_addr(addr) {
            self.sector_index(last_byte)
        } else {
            self.sectors_per_line - 1
        };
        let mut mask = 0u8;
        for s in first..=last {
            mask |= 1 << s;
        }
        mask
    }

    /// Bank serving this address. Sector-granularity interleaving, matching
    /// the banked L1 of Table II.
    pub fn bank_index(&self, addr: u64) -> usize {
        ((addr >> self.sector_shift) % self.banks) as usize
    }

    /// Sectors per line.
    pub fn sectors_per_line(&self) -> u32 {
        self.sectors_per_line
    }

    /// Memory partition owning a line address, for `partitions` partitions.
    ///
    /// Uses an xor-folded hash of the line address, the standard trick to
    /// spread strided traffic across partitions (22 of them on the 2080 Ti,
    /// which is not a power of two).
    pub fn partition_index(addr: u64, line_bytes: u32, partitions: u32) -> usize {
        let line = addr >> line_bytes.trailing_zeros();
        let folded = line ^ (line >> 11) ^ (line >> 23);
        (folded % u64::from(partitions)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn l1_mapping() -> AddressMapping {
        AddressMapping::new(&presets::rtx2080ti().sm.l1d)
    }

    #[test]
    fn line_alignment() {
        let m = l1_mapping();
        assert_eq!(m.line_addr(0x1234), 0x1200);
        assert_eq!(m.line_addr(0x1280), 0x1280);
        assert_eq!(m.line_addr(0), 0);
    }

    #[test]
    fn set_index_wraps() {
        let m = l1_mapping();
        // 128 sets, 128 B lines: addresses 128*128 bytes apart share a set.
        assert_eq!(m.set_index(0x80), m.set_index(0x80 + 128 * 128));
        assert_ne!(m.set_index(0x80), m.set_index(0x100));
        assert!(m.set_index(u64::MAX) < 128);
    }

    #[test]
    fn sector_index_and_mask() {
        let m = l1_mapping();
        assert_eq!(m.sector_index(0x00), 0);
        assert_eq!(m.sector_index(0x20), 1);
        assert_eq!(m.sector_index(0x7f), 3);
        // A 4-byte access touches one sector.
        assert_eq!(m.sector_mask(0x00, 4), 0b0001);
        assert_eq!(m.sector_mask(0x20, 4), 0b0010);
        // A 16-byte access crossing a sector boundary touches two.
        assert_eq!(m.sector_mask(0x1c, 16), 0b0011);
        // An access that would run past the line is clipped to its end.
        assert_eq!(m.sector_mask(0x7c, 16), 0b1000);
    }

    #[test]
    fn sector_mask_zero_width_is_one_sector() {
        let m = l1_mapping();
        assert_eq!(m.sector_mask(0x40, 0), 0b0100);
    }

    fn mapping_with(line_bytes: u32, sector_bytes: u32) -> AddressMapping {
        let mut cfg = presets::rtx2080ti().sm.l1d;
        cfg.line_bytes = line_bytes;
        cfg.sector_bytes = sector_bytes;
        cfg.validate("test-l1").expect("geometry must validate");
        AddressMapping::new(&cfg)
    }

    #[test]
    fn sector_mask_64b_lines_32b_sectors() {
        // 2 sectors per line.
        let m = mapping_with(64, 32);
        assert_eq!(m.sectors_per_line(), 2);
        assert_eq!(m.sector_mask(0x00, 4), 0b01);
        assert_eq!(m.sector_mask(0x20, 4), 0b10);
        // Crossing the sector boundary inside the line.
        assert_eq!(m.sector_mask(0x1e, 8), 0b11);
        // Running past the line end clips to the last sector.
        assert_eq!(m.sector_mask(0x3c, 16), 0b10);
        // Whole line.
        assert_eq!(m.sector_mask(0x00, 64), 0b11);
    }

    #[test]
    fn sector_mask_128b_lines_16b_sectors() {
        // 8 sectors per line: the u8 mask's upper limit. The top sector
        // exercises `1 << 7`, the widest shift a u8 mask allows.
        let m = mapping_with(128, 16);
        assert_eq!(m.sectors_per_line(), 8);
        assert_eq!(m.sector_mask(0x00, 1), 0b0000_0001);
        assert_eq!(m.sector_mask(0x70, 4), 0b1000_0000);
        // Width spanning several sectors.
        assert_eq!(m.sector_mask(0x10, 48), 0b0000_1110);
        // Crossing into the next line clips to the end of this one.
        assert_eq!(m.sector_mask(0x78, 32), 0b1000_0000);
        // Whole line lights every bit.
        assert_eq!(m.sector_mask(0x00, 128), 0xff);
    }

    #[test]
    fn sector_mask_64b_lines_16b_sectors() {
        // 4 sectors per line with a smaller line: boundary positions shift.
        let m = mapping_with(64, 16);
        assert_eq!(m.sectors_per_line(), 4);
        // Access crossing a sector boundary.
        assert_eq!(m.sector_mask(0x0c, 8), 0b0011);
        // Access starting mid-line and running past the line end.
        assert_eq!(m.sector_mask(0x34, 32), 0b1000);
        // Full line coverage from an unaligned start is clipped, not wrapped.
        assert_eq!(m.sector_mask(0x04, 64), 0b1111);
    }

    #[test]
    fn bank_interleaves_by_sector() {
        let m = l1_mapping();
        // 4 banks, 32 B sectors: consecutive sectors hit consecutive banks.
        assert_eq!(m.bank_index(0x00), 0);
        assert_eq!(m.bank_index(0x20), 1);
        assert_eq!(m.bank_index(0x40), 2);
        assert_eq!(m.bank_index(0x60), 3);
        assert_eq!(m.bank_index(0x80), 0);
    }

    #[test]
    fn partition_index_in_range_and_spread() {
        let partitions = 22;
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let p = AddressMapping::partition_index(i * 128, 128, partitions);
            assert!(p < partitions as usize);
            seen.insert(p);
        }
        // Strided traffic should reach every partition.
        assert_eq!(seen.len(), partitions as usize);
    }

    #[test]
    fn same_line_same_partition() {
        for addr in [0x1000u64, 0x1004, 0x107f] {
            assert_eq!(
                AddressMapping::partition_index(addr, 128, 22),
                AddressMapping::partition_index(0x1000, 128, 22)
            );
        }
    }
}
