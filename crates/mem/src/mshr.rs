//! Miss-status holding registers.
//!
//! An MSHR file tracks in-flight line fills. A miss to a line that already
//! has an entry *merges* into it (up to the per-entry merge limit — "8
//! maximum merge / MSHR" for the 2080 Ti L1 in Table II) instead of sending
//! a duplicate request to the next level. When the file is full, or an
//! entry's merge budget is exhausted, the access suffers a *reservation
//! failure* and must be retried — the very failure mode the paper observes
//! dominating Accel-Sim's RTX 3090 mispredictions (§IV-B3).

use crate::fasthash::FastMap;

/// Result of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated; the caller must forward one fill request to the
    /// next memory level.
    Allocated,
    /// Merged into an existing in-flight entry; no new downstream request.
    Merged,
    /// No entry available (file full) or merge limit reached; retry later.
    ReservationFailure,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Waiter tokens to wake when the fill returns.
    waiters: Vec<u64>,
    /// Union of sectors requested by all merged misses.
    sector_mask: u8,
    /// Allocation order (monotonic), so the oldest in-flight fill can be
    /// named in deadlock diagnostics.
    allocated_seq: u64,
}

/// Lifetime counter snapshot of an MSHR file (checkpointing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // mirrors the counter fields one-to-one
pub struct MshrCounters {
    pub peak: u64,
    pub merges: u64,
    pub reservation_failures: u64,
    pub seq: u64,
}

/// The MSHR file of one cache.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: FastMap<u64, Entry>,
    capacity: usize,
    max_merge: usize,
    /// Lifetime peak occupancy, reported to the Metrics Gatherer.
    peak: usize,
    merges: u64,
    reservation_failures: u64,
    /// Monotonic allocation counter feeding [`Entry::allocated_seq`].
    seq: u64,
}

impl MshrFile {
    /// Create a file with `capacity` entries and `max_merge` merged requests
    /// per entry (the allocating request counts toward the limit).
    pub fn new(capacity: u32, max_merge: u32) -> Self {
        MshrFile {
            entries: FastMap::default(),
            capacity: capacity as usize,
            max_merge: max_merge as usize,
            peak: 0,
            merges: 0,
            reservation_failures: 0,
            seq: 0,
        }
    }

    /// Present a miss for `line_addr` requesting `sector_mask`, with
    /// `waiter` woken on fill.
    pub fn allocate(&mut self, line_addr: u64, sector_mask: u8, waiter: u64) -> MshrOutcome {
        if let Some(entry) = self.entries.get_mut(&line_addr) {
            if entry.waiters.len() >= self.max_merge {
                self.reservation_failures += 1;
                return MshrOutcome::ReservationFailure;
            }
            entry.waiters.push(waiter);
            entry.sector_mask |= sector_mask;
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            self.reservation_failures += 1;
            return MshrOutcome::ReservationFailure;
        }
        self.entries.insert(
            line_addr,
            Entry {
                waiters: vec![waiter],
                sector_mask,
                allocated_seq: self.seq,
            },
        );
        self.seq += 1;
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Complete the fill for `line_addr`: frees the entry and returns the
    /// waiter tokens together with the union sector mask to fill.
    ///
    /// Returns `None` if no entry exists (callers treat that as a protocol
    /// bug and panic at a higher level).
    pub fn fill(&mut self, line_addr: u64) -> Option<(Vec<u64>, u8)> {
        self.entries
            .remove(&line_addr)
            .map(|e| (e.waiters, e.sector_mask))
    }

    /// Whether a fill for `line_addr` is in flight.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// Entries currently in flight.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Lifetime peak occupancy.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Lifetime merge count.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Lifetime reservation failures.
    pub fn reservation_failures(&self) -> u64 {
        self.reservation_failures
    }

    /// Lifetime counter snapshot for checkpointing.
    pub fn counters(&self) -> MshrCounters {
        MshrCounters {
            peak: self.peak as u64,
            merges: self.merges,
            reservation_failures: self.reservation_failures,
            seq: self.seq,
        }
    }

    /// Restore lifetime counters captured by [`MshrFile::counters`].
    ///
    /// Only valid on an *empty* file — checkpoints are taken at kernel
    /// boundaries where every fill has returned, so in-flight entries never
    /// need restoring.
    ///
    /// # Errors
    ///
    /// Rejects the restore when entries are in flight.
    pub fn restore_counters(&mut self, counters: &MshrCounters) -> Result<(), String> {
        if !self.entries.is_empty() {
            return Err(format!(
                "cannot restore MSHR counters with {} entries in flight",
                self.entries.len()
            ));
        }
        self.peak = counters.peak as usize;
        self.merges = counters.merges;
        self.reservation_failures = counters.reservation_failures;
        self.seq = counters.seq;
        Ok(())
    }

    /// The longest-outstanding in-flight line, with its waiter count —
    /// the entry a stuck simulation is most likely blocked on (deadlock
    /// diagnostics and event-engine introspection).
    pub fn oldest_line(&self) -> Option<(u64, usize)> {
        self.entries
            .iter()
            .min_by_key(|(_, e)| e.allocated_seq)
            .map(|(&line, e)| (line, e.waiters.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge_then_fill() {
        let mut m = MshrFile::new(4, 3);
        assert_eq!(m.allocate(0x1000, 0b0001, 1), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x1000, 0b0010, 2), MshrOutcome::Merged);
        assert_eq!(m.allocate(0x1000, 0b0100, 3), MshrOutcome::Merged);
        // Merge limit (3) reached.
        assert_eq!(
            m.allocate(0x1000, 0b1000, 4),
            MshrOutcome::ReservationFailure
        );
        assert!(m.contains(0x1000));
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.merges(), 2);
        assert_eq!(m.reservation_failures(), 1);

        let (waiters, mask) = m.fill(0x1000).expect("entry present");
        assert_eq!(waiters, vec![1, 2, 3]);
        assert_eq!(mask, 0b0111);
        assert!(!m.contains(0x1000));
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn capacity_limit_fails_new_lines_only() {
        let mut m = MshrFile::new(2, 8);
        assert_eq!(m.allocate(0x1000, 1, 1), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x2000, 1, 2), MshrOutcome::Allocated);
        // File full: new line fails...
        assert_eq!(m.allocate(0x3000, 1, 3), MshrOutcome::ReservationFailure);
        // ...but merging into an existing line still succeeds.
        assert_eq!(m.allocate(0x1000, 2, 4), MshrOutcome::Merged);
        assert_eq!(m.peak_occupancy(), 2);
    }

    #[test]
    fn fill_without_entry_is_none() {
        let mut m = MshrFile::new(2, 2);
        assert!(m.fill(0xdead).is_none());
    }

    #[test]
    fn oldest_line_tracks_allocation_order() {
        let mut m = MshrFile::new(4, 8);
        assert_eq!(m.oldest_line(), None);
        m.allocate(0x2000, 1, 1);
        m.allocate(0x1000, 1, 2);
        m.allocate(0x1000, 2, 3); // merge does not change age
        assert_eq!(m.oldest_line(), Some((0x2000, 1)));
        m.fill(0x2000);
        assert_eq!(m.oldest_line(), Some((0x1000, 2)));
    }

    #[test]
    fn distinct_lines_use_distinct_entries() {
        let mut m = MshrFile::new(8, 1);
        for i in 0..5u64 {
            assert_eq!(m.allocate(i * 0x80, 1, i), MshrOutcome::Allocated);
        }
        assert_eq!(m.occupancy(), 5);
        // max_merge = 1: the allocating request exhausts the budget.
        assert_eq!(m.allocate(0, 1, 99), MshrOutcome::ReservationFailure);
    }
}
