//! The 20-application benchmark suite.
//!
//! Each entry substitutes one application from the paper's evaluation
//! (Fig. 4 / Fig. 6) with a synthetic generator reproducing its
//! architectural character. Suites and the application set follow §IV-A2:
//! Rodinia, Polybench, Mars, Tango, and Pannotia, covering pattern
//! recognition, graph computing, linear algebra, stencils, web data
//! analysis, and deep learning.

use crate::gen::{MemPattern, Mix, PatternKernel, Scale};
use swiftsim_trace::ApplicationTrace;

/// Benchmark suite of origin (§IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia: heterogeneous computing kernels.
    Rodinia,
    /// Polybench: polyhedral linear-algebra and stencil kernels.
    Polybench,
    /// Mars: MapReduce on GPUs.
    Mars,
    /// Tango: deep neural networks.
    Tango,
    /// Pannotia: irregular graph analytics.
    Pannotia,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Rodinia => f.write_str("Rodinia"),
            Suite::Polybench => f.write_str("Polybench"),
            Suite::Mars => f.write_str("Mars"),
            Suite::Tango => f.write_str("Tango"),
            Suite::Pannotia => f.write_str("Pannotia"),
        }
    }
}

/// One benchmark application: a named, deterministic trace generator.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Application name as it appears on the paper's figure axes.
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    kernels: Vec<PatternKernel>,
}

impl Workload {
    /// Generate the application trace at the given scale.
    pub fn generate(&self, scale: Scale) -> ApplicationTrace {
        ApplicationTrace::new(
            self.name,
            self.kernels.iter().map(|k| k.generate(scale)).collect(),
        )
    }

    /// The kernel specs (for inspection in tests and docs).
    pub fn kernels(&self) -> &[PatternKernel] {
        &self.kernels
    }
}

fn kernel(
    name: &str,
    blocks: u32,
    threads: u32,
    iters: u32,
    mix: Mix,
    pattern: MemPattern,
) -> PatternKernel {
    PatternKernel {
        name: name.to_owned(),
        blocks,
        threads_per_block: threads,
        iters,
        mix,
        pattern,
        shared_mem_bytes: 0,
        regs_per_thread: 32,
        barrier: false,
    }
}

/// The full 20-application suite in figure order.
pub fn suite() -> Vec<Workload> {
    let mut v = Vec::new();

    // ---------------- Rodinia ----------------
    // BFS: frontier expansion, graph-irregular loads, little compute.
    v.push(Workload {
        name: "bfs",
        suite: Suite::Rodinia,
        kernels: (0..2)
            .map(|i| {
                kernel(
                    &format!("bfs_kernel{i}"),
                    192,
                    256,
                    24,
                    Mix {
                        loads: 3,
                        stores: 1,
                        int_ops: 4,
                        ..Mix::default()
                    },
                    MemPattern::Irregular {
                        footprint_lines: 200_000,
                        hot_fraction: 0.35,
                    },
                )
            })
            .collect(),
    });
    // NW: Needleman-Wunsch wavefront; streaming, memory-dominated, almost
    // no arithmetic — one of the paper's >1000x Swift-Sim-Memory apps.
    v.push(Workload {
        name: "nw",
        suite: Suite::Rodinia,
        kernels: vec![{
            let mut k = kernel(
                "nw_dynproc",
                256,
                128,
                48,
                Mix {
                    loads: 4,
                    stores: 2,
                    int_ops: 2,
                    fp: 0,
                    ..Mix::default()
                },
                MemPattern::Streaming,
            );
            k.shared_mem_bytes = 8_192;
            k
        }],
    });
    // HOTSPOT: 2D thermal stencil with shared-memory tiling and barriers.
    v.push(Workload {
        name: "hotspot",
        suite: Suite::Rodinia,
        kernels: vec![{
            let mut k = kernel(
                "hotspot_calc",
                224,
                256,
                20,
                Mix {
                    loads: 3,
                    stores: 1,
                    fp: 8,
                    int_ops: 3,
                    shared_ld: 2,
                    shared_st: 1,
                    ..Mix::default()
                },
                MemPattern::Stencil {
                    row_bytes: 8_192,
                    rows: 3,
                },
            );
            k.shared_mem_bytes = 12_288;
            k.barrier = true;
            k
        }],
    });
    // PATHFINDER: dynamic-programming row sweep.
    v.push(Workload {
        name: "pathfinder",
        suite: Suite::Rodinia,
        kernels: vec![{
            let mut k = kernel(
                "pathfinder_dynproc",
                160,
                256,
                28,
                Mix {
                    loads: 2,
                    stores: 1,
                    int_ops: 6,
                    shared_ld: 1,
                    shared_st: 1,
                    ..Mix::default()
                },
                MemPattern::Streaming,
            );
            k.shared_mem_bytes = 4_096;
            k.barrier = true;
            k
        }],
    });
    // BACKPROP: two dense layers, FP-heavy with strided weight access.
    v.push(Workload {
        name: "backprop",
        suite: Suite::Rodinia,
        kernels: vec![
            kernel(
                "backprop_forward",
                192,
                256,
                16,
                Mix {
                    loads: 2,
                    stores: 1,
                    fp: 10,
                    int_ops: 2,
                    sfu: 1,
                    ..Mix::default()
                },
                MemPattern::Strided { lane_stride: 64 },
            ),
            kernel(
                "backprop_adjust",
                192,
                256,
                12,
                Mix {
                    loads: 3,
                    stores: 2,
                    fp: 6,
                    int_ops: 2,
                    ..Mix::default()
                },
                MemPattern::Streaming,
            ),
        ],
    });
    // SRAD: speckle-reducing diffusion stencil, FP-heavy with SFU.
    v.push(Workload {
        name: "srad",
        suite: Suite::Rodinia,
        kernels: vec![kernel(
            "srad_main",
            224,
            256,
            18,
            Mix {
                loads: 4,
                stores: 1,
                fp: 12,
                int_ops: 3,
                sfu: 2,
                ..Mix::default()
            },
            MemPattern::Stencil {
                row_bytes: 16_384,
                rows: 3,
            },
        )],
    });

    // ---------------- Polybench ----------------
    // ADI: alternating-direction implicit sweeps; long streaming passes,
    // trivial compute — a >1000x Swift-Sim-Memory app.
    v.push(Workload {
        name: "adi",
        suite: Suite::Polybench,
        kernels: (0..2)
            .map(|i| {
                kernel(
                    &format!("adi_sweep{i}"),
                    144,
                    128,
                    28,
                    Mix {
                        loads: 4,
                        stores: 2,
                        fp: 2,
                        int_ops: 1,
                        ..Mix::default()
                    },
                    if i == 0 {
                        MemPattern::Streaming
                    } else {
                        MemPattern::Strided { lane_stride: 512 }
                    },
                )
            })
            .collect(),
    });
    // GEMM: tiled matrix multiply — compute-bound, shared-memory reuse.
    v.push(Workload {
        name: "gemm",
        suite: Suite::Polybench,
        kernels: vec![{
            let mut k = kernel(
                "gemm_tiled",
                256,
                256,
                24,
                Mix {
                    loads: 2,
                    stores: 1,
                    fp: 16,
                    int_ops: 2,
                    shared_ld: 4,
                    shared_st: 2,
                    ..Mix::default()
                },
                MemPattern::Tiled { tile_bytes: 16_384 },
            );
            k.shared_mem_bytes = 16_384;
            k.barrier = true;
            k.regs_per_thread = 48;
            k
        }],
    });
    // LU: decomposition with shrinking parallelism and strided columns.
    v.push(Workload {
        name: "lu",
        suite: Suite::Polybench,
        kernels: vec![
            kernel(
                "lu_diag",
                96,
                128,
                20,
                Mix {
                    loads: 3,
                    stores: 1,
                    fp: 6,
                    int_ops: 3,
                    ..Mix::default()
                },
                MemPattern::Strided { lane_stride: 256 },
            ),
            kernel(
                "lu_perimeter",
                160,
                256,
                16,
                Mix {
                    loads: 3,
                    stores: 2,
                    fp: 8,
                    int_ops: 2,
                    ..Mix::default()
                },
                MemPattern::Streaming,
            ),
        ],
    });
    // MVT: matrix-vector transpose product; bandwidth-bound.
    v.push(Workload {
        name: "mvt",
        suite: Suite::Polybench,
        kernels: vec![kernel(
            "mvt_main",
            112,
            256,
            16,
            Mix {
                loads: 3,
                stores: 1,
                fp: 3,
                int_ops: 1,
                ..Mix::default()
            },
            MemPattern::Strided { lane_stride: 128 },
        )],
    });
    // 2DCONV: small-stencil convolution; streaming with modest compute.
    v.push(Workload {
        name: "2dconv",
        suite: Suite::Polybench,
        kernels: vec![kernel(
            "conv2d_main",
            256,
            256,
            24,
            Mix {
                loads: 3,
                stores: 1,
                fp: 9,
                int_ops: 2,
                ..Mix::default()
            },
            MemPattern::Stencil {
                row_bytes: 8_192,
                rows: 3,
            },
        )],
    });

    // ---------------- Mars ----------------
    // SM (StringMatch): byte streaming + integer compares — memory
    // dominated, a >1000x Swift-Sim-Memory app.
    v.push(Workload {
        name: "sm",
        suite: Suite::Mars,
        kernels: vec![kernel(
            "sm_match",
            288,
            256,
            40,
            Mix {
                loads: 4,
                stores: 1,
                int_ops: 6,
                ..Mix::default()
            },
            MemPattern::Streaming,
        )],
    });
    // WC (WordCount): streaming map + irregular reduce.
    v.push(Workload {
        name: "wc",
        suite: Suite::Mars,
        kernels: vec![
            kernel(
                "wc_map",
                224,
                256,
                24,
                Mix {
                    loads: 3,
                    stores: 1,
                    int_ops: 5,
                    ..Mix::default()
                },
                MemPattern::Streaming,
            ),
            kernel(
                "wc_reduce",
                96,
                128,
                16,
                Mix {
                    loads: 2,
                    stores: 1,
                    int_ops: 4,
                    ..Mix::default()
                },
                MemPattern::Irregular {
                    footprint_lines: 30_000,
                    hot_fraction: 0.5,
                },
            ),
        ],
    });
    // KMEANS: distance computation (FP) over streaming points with hot
    // centroids.
    v.push(Workload {
        name: "kmeans",
        suite: Suite::Mars,
        kernels: vec![kernel(
            "kmeans_assign",
            224,
            256,
            20,
            Mix {
                loads: 3,
                stores: 1,
                fp: 10,
                int_ops: 3,
                sfu: 1,
                ..Mix::default()
            },
            MemPattern::Irregular {
                footprint_lines: 50_000,
                hot_fraction: 0.75,
            },
        )],
    });

    // ---------------- Tango ----------------
    // GRU: small recurrent cells — many short memory-bound steps with SFU
    // activations; a >1000x Swift-Sim-Memory app.
    v.push(Workload {
        name: "gru",
        suite: Suite::Tango,
        kernels: (0..3)
            .map(|i| {
                kernel(
                    &format!("gru_cell{i}"),
                    128,
                    128,
                    36,
                    Mix {
                        loads: 4,
                        stores: 2,
                        fp: 4,
                        int_ops: 1,
                        sfu: 2,
                        ..Mix::default()
                    },
                    MemPattern::Streaming,
                )
            })
            .collect(),
    });
    // LSTM: like GRU with more gates and more FP.
    v.push(Workload {
        name: "lstm",
        suite: Suite::Tango,
        kernels: (0..2)
            .map(|i| {
                kernel(
                    &format!("lstm_cell{i}"),
                    144,
                    128,
                    28,
                    Mix {
                        loads: 4,
                        stores: 2,
                        fp: 8,
                        int_ops: 1,
                        sfu: 3,
                        ..Mix::default()
                    },
                    MemPattern::Streaming,
                )
            })
            .collect(),
    });
    // ALEXNET: convolution + dense layers, tensor-core heavy, tiled reuse.
    v.push(Workload {
        name: "alexnet",
        suite: Suite::Tango,
        kernels: vec![
            {
                let mut k = kernel(
                    "alexnet_conv",
                    256,
                    256,
                    20,
                    Mix {
                        loads: 2,
                        stores: 1,
                        fp: 6,
                        tensor: 4,
                        int_ops: 2,
                        shared_ld: 2,
                        shared_st: 1,
                        ..Mix::default()
                    },
                    MemPattern::Tiled { tile_bytes: 32_768 },
                );
                k.shared_mem_bytes = 32_768;
                k.barrier = true;
                k
            },
            kernel(
                "alexnet_fc",
                128,
                256,
                16,
                Mix {
                    loads: 3,
                    stores: 1,
                    fp: 12,
                    int_ops: 1,
                    sfu: 1,
                    ..Mix::default()
                },
                MemPattern::Streaming,
            ),
        ],
    });

    // ---------------- Pannotia ----------------
    // PAGERANK: scatter/gather over a power-law graph.
    v.push(Workload {
        name: "pagerank",
        suite: Suite::Pannotia,
        kernels: (0..2)
            .map(|i| {
                kernel(
                    &format!("pagerank_phase{i}"),
                    192,
                    256,
                    20,
                    Mix {
                        loads: 4,
                        stores: 1,
                        fp: 2,
                        int_ops: 3,
                        ..Mix::default()
                    },
                    MemPattern::Irregular {
                        footprint_lines: 300_000,
                        hot_fraction: 0.45,
                    },
                )
            })
            .collect(),
    });
    // COLOR: graph coloring — irregular with wide fan-out.
    v.push(Workload {
        name: "color",
        suite: Suite::Pannotia,
        kernels: vec![kernel(
            "color_maxmin",
            176,
            256,
            22,
            Mix {
                loads: 5,
                stores: 1,
                int_ops: 5,
                ..Mix::default()
            },
            MemPattern::Irregular {
                footprint_lines: 250_000,
                hot_fraction: 0.3,
            },
        )],
    });
    // SSSP: single-source shortest paths — frontier relaxation.
    v.push(Workload {
        name: "sssp",
        suite: Suite::Pannotia,
        kernels: vec![kernel(
            "sssp_relax",
            192,
            256,
            24,
            Mix {
                loads: 4,
                stores: 2,
                int_ops: 4,
                ..Mix::default()
            },
            MemPattern::Irregular {
                footprint_lines: 220_000,
                hot_fraction: 0.4,
            },
        )],
    });

    debug_assert_eq!(v.len(), 20);
    v
}

/// Look up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_20_unique_apps_across_5_suites() {
        let s = suite();
        assert_eq!(s.len(), 20);
        let names: HashSet<&str> = s.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 20);
        let suites: HashSet<_> = s.iter().map(|w| format!("{}", w.suite)).collect();
        assert_eq!(suites.len(), 5);
    }

    #[test]
    fn all_apps_generate_consistent_traces() {
        for w in suite() {
            let app = w.generate(Scale::Tiny);
            assert_eq!(app.name, w.name);
            assert!(!app.kernels().is_empty());
            for k in app.kernels() {
                assert!(k.is_consistent(32), "{} / {}", w.name, k.name);
            }
            assert!(app.num_insts() > 0);
        }
    }

    #[test]
    fn apps_have_distinct_memory_intensity() {
        // Memory-dominated apps (the paper's >1000x set) must be more
        // memory-intense than the compute-bound GEMM.
        let intensity = |name: &str| {
            by_name(name)
                .unwrap()
                .generate(Scale::Tiny)
                .stats()
                .memory_intensity()
        };
        for heavy in ["nw", "adi", "sm", "gru"] {
            assert!(
                intensity(heavy) > intensity("gemm"),
                "{heavy} should be more memory-bound than gemm"
            );
        }
    }

    #[test]
    fn by_name_finds_and_rejects() {
        assert!(by_name("bfs").is_some());
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn generation_is_deterministic_per_app() {
        for w in suite().into_iter().take(4) {
            assert_eq!(w.generate(Scale::Tiny), w.generate(Scale::Tiny));
        }
    }
}
