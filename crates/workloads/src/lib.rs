//! Synthetic benchmark suite and silicon oracle for the Swift-Sim
//! reproduction.
//!
//! The paper evaluates Swift-Sim on applications from five suites —
//! Rodinia, Polybench, Mars, Tango, and Pannotia — whose traces are
//! captured on real NVIDIA GPUs with an NVBit extension. No GPU is
//! available in this environment, so this crate substitutes each
//! application with a **seeded, deterministic trace generator** that
//! reproduces the application's architectural character: launch geometry,
//! instruction mix, control behaviour, shared-memory usage, and — most
//! importantly for the memory models — the memory-access pattern
//! (streaming, strided, stencil, tiled, graph-irregular). See DESIGN.md §3
//! for the substitution rationale.
//!
//! The crate also provides the [`silicon`] module: the stand-in for the
//! paper's Nsight-Compute measurements of real-hardware cycles, against
//! which prediction error (Figs. 4 and 6) is computed.
//!
//! # Examples
//!
//! ```
//! use swiftsim_workloads::{suite, Scale};
//!
//! let workloads = suite();
//! assert_eq!(workloads.len(), 20);
//! let bfs = workloads.iter().find(|w| w.name == "bfs").unwrap();
//! let app = bfs.generate(Scale::Tiny);
//! assert!(app.num_insts() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod gen;
pub mod silicon;

pub use apps::{by_name, suite, Suite, Workload};
pub use gen::{ingest_stress_app, MemPattern, Mix, PatternKernel, Scale};
