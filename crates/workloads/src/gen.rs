//! Trace-generation primitives.
//!
//! A [`PatternKernel`] describes a kernel the way an architect would
//! characterize it — launch geometry, per-iteration instruction [`Mix`],
//! and [`MemPattern`] — and deterministically expands into a
//! [`KernelTrace`]. Static PCs repeat across loop iterations exactly as in
//! real SASS, which is what gives the analytical memory model's per-PC hit
//! rates (Eq. 1) something meaningful to attach to.

use swiftsim_rng::SmallRng;
use swiftsim_trace::{InstBuilder, KernelTrace, Opcode, WarpTrace};

/// How much of the paper-scale workload to generate.
///
/// `Paper` sizes drive the figure-regeneration harness; `Small` keeps
/// example binaries snappy; `Tiny` keeps unit tests fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit-test scale (a few blocks, a few iterations).
    Tiny,
    /// Example/CI scale.
    Small,
    /// Evaluation scale used by the benchmark harness.
    Paper,
}

impl Scale {
    fn div(self) -> u32 {
        match self {
            Scale::Tiny => 32,
            Scale::Small => 8,
            Scale::Paper => 1,
        }
    }

    /// Scale down a paper-scale count, keeping at least `min`.
    pub fn apply(self, paper_value: u32, min: u32) -> u32 {
        (paper_value / self.div()).max(min)
    }
}

/// Per-loop-iteration instruction mix of a generated kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // counts of instructions per iteration, self-describing
pub struct Mix {
    pub loads: u32,
    pub stores: u32,
    pub fp: u32,
    pub int_ops: u32,
    pub sfu: u32,
    pub tensor: u32,
    pub dp: u32,
    pub shared_ld: u32,
    pub shared_st: u32,
}

/// Memory-access pattern of a generated kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemPattern {
    /// Fully coalesced streaming: each warp walks consecutive cache lines
    /// (dense linear algebra and stencil sweeps).
    Streaming,
    /// Per-lane stride in bytes; strides ≥ one line fan a warp access out
    /// into many transactions (column-major walks, AoS layouts).
    Strided {
        /// Byte distance between consecutive lanes.
        lane_stride: u64,
    },
    /// Row stencil: each iteration loads the `rows` neighbouring rows
    /// (hotspot/SRAD/ADI-like).
    Stencil {
        /// Bytes per matrix row.
        row_bytes: u64,
        /// Neighbouring rows touched per load slot.
        rows: u32,
    },
    /// Graph-irregular: uniformly random lines from a footprint, with a
    /// hot subset absorbing part of the traffic (BFS/pagerank-like).
    Irregular {
        /// Distinct 128 B lines in the footprint.
        footprint_lines: u64,
        /// Fraction of accesses hitting the hot 8% of the footprint.
        hot_fraction: f64,
    },
    /// Block-tiled with reuse: all warps of a block read the same tile
    /// (GEMM-like; pairs naturally with shared memory and barriers).
    Tiled {
        /// Tile size in bytes.
        tile_bytes: u64,
    },
}

/// A parameterized synthetic kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternKernel {
    /// Kernel name (appears in traces and reports).
    pub name: String,
    /// Thread blocks at paper scale.
    pub blocks: u32,
    /// Threads per block (multiple of 32).
    pub threads_per_block: u32,
    /// Loop iterations per warp at paper scale.
    pub iters: u32,
    /// Instruction mix per iteration.
    pub mix: Mix,
    /// Memory-access pattern.
    pub pattern: MemPattern,
    /// Static shared memory per block in bytes.
    pub shared_mem_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Whether each iteration ends with a block-wide barrier.
    pub barrier: bool,
}

impl PatternKernel {
    /// Expand into a kernel trace at the given scale. Generation is
    /// deterministic: the same spec and scale always produce the same
    /// trace.
    pub fn generate(&self, scale: Scale) -> KernelTrace {
        let blocks = scale.apply(self.blocks, 2);
        let iters = scale.apply(self.iters, 2);
        let threads = self.threads_per_block.max(32) / 32 * 32;
        let warps = threads / 32;

        let mut kernel = KernelTrace::new(self.name.clone(), (blocks, 1, 1), (threads, 1, 1));
        kernel.shared_mem_bytes = self.shared_mem_bytes;
        kernel.regs_per_thread = self.regs_per_thread;

        // App-level base address: distinct apps touch distinct regions.
        let app_base = (hash64(&self.name) % 0x1000) << 24;

        for b in 0..blocks {
            let block = kernel.push_block();
            for w in 0..warps {
                let mut rng = SmallRng::seed_from_u64(
                    hash64(&self.name) ^ (u64::from(b) << 20) ^ u64::from(w),
                );
                *block.push_warp() = self.generate_warp(app_base, b, w, iters, warps, &mut rng);
            }
        }
        kernel
    }

    /// Number of static instructions in the loop body (constant PCs across
    /// iterations).
    fn body_len(&self) -> u32 {
        let m = &self.mix;
        let barrier = u32::from(self.barrier);
        m.loads
            + m.shared_st
            + m.shared_ld
            + m.fp
            + m.int_ops
            + m.sfu
            + m.tensor
            + m.dp
            + m.stores
            + barrier
            + 3 // loop counter, compare, branch
    }

    fn generate_warp(
        &self,
        app_base: u64,
        block: u32,
        warp: u32,
        iters: u32,
        warps_per_block: u32,
        rng: &mut SmallRng,
    ) -> WarpTrace {
        let mut out = WarpTrace::new();
        let m = &self.mix;
        let global_warp = u64::from(block) * u64::from(warps_per_block) + u64::from(warp);

        for iter in 0..iters {
            let mut pc = 0u32;
            let next_pc = |pc: &mut u32| {
                let cur = *pc;
                *pc += 16;
                cur
            };
            // Rotating register allocation: loads feed the FP chain, the FP
            // chain feeds the stores — real RAW dependences.
            let mut last_loaded: u16 = 8;
            let mut fp_acc: u16 = 24;

            for l in 0..m.loads {
                let dst = 8 + ((iter * m.loads + l) % 8) as u16;
                let addr = self.load_address(app_base, global_warp, iter, l, rng);
                let inst = match self.pattern {
                    MemPattern::Strided { lane_stride } => InstBuilder::new(Opcode::Ldg)
                        .pc(next_pc(&mut pc))
                        .dst(dst)
                        .src(2)
                        .global_strided(addr, lane_stride, 4),
                    _ => InstBuilder::new(Opcode::Ldg)
                        .pc(next_pc(&mut pc))
                        .dst(dst)
                        .src(2)
                        .global_strided(addr, 4, 4),
                };
                out.push(inst);
                last_loaded = dst;
            }

            for s in 0..m.shared_st {
                let addr = u64::from((warp * 32 + s) % 64) * 4;
                out.push(
                    InstBuilder::new(Opcode::Sts)
                        .pc(next_pc(&mut pc))
                        .src(last_loaded)
                        .global_strided(addr, 4, 4),
                );
            }
            if self.barrier {
                out.push(InstBuilder::new(Opcode::Bar).pc(next_pc(&mut pc)));
            }
            for s in 0..m.shared_ld {
                let dst = 16 + (s % 4) as u16;
                let addr = u64::from((warp * 7 + s * 13) % 64) * 4;
                out.push(
                    InstBuilder::new(Opcode::Lds)
                        .pc(next_pc(&mut pc))
                        .dst(dst)
                        .src(2)
                        .global_strided(addr, 4, 4),
                );
                last_loaded = dst;
            }

            for _ in 0..m.fp {
                let dst = fp_acc;
                out.push(
                    InstBuilder::new(Opcode::Ffma)
                        .pc(next_pc(&mut pc))
                        .dst(dst)
                        .src(last_loaded)
                        .src(fp_acc),
                );
                fp_acc = 24 + ((fp_acc + 1) % 6);
            }
            for i in 0..m.int_ops {
                out.push(
                    InstBuilder::new(if i % 3 == 0 {
                        Opcode::Imad
                    } else {
                        Opcode::Iadd
                    })
                    .pc(next_pc(&mut pc))
                    .dst(4 + (i % 3) as u16)
                    .src(4 + (i % 3) as u16),
                );
            }
            for _ in 0..m.sfu {
                out.push(
                    InstBuilder::new(Opcode::Mufu)
                        .pc(next_pc(&mut pc))
                        .dst(30)
                        .src(fp_acc),
                );
            }
            for _ in 0..m.tensor {
                out.push(
                    InstBuilder::new(Opcode::Hmma)
                        .pc(next_pc(&mut pc))
                        .dst(32)
                        .src(last_loaded)
                        .src(fp_acc),
                );
            }
            for _ in 0..m.dp {
                out.push(
                    InstBuilder::new(Opcode::Dfma)
                        .pc(next_pc(&mut pc))
                        .dst(40)
                        .src(40),
                );
            }

            for s in 0..m.stores {
                let addr = self.store_address(app_base, global_warp, iter, s);
                out.push(
                    InstBuilder::new(Opcode::Stg)
                        .pc(next_pc(&mut pc))
                        .src(fp_acc)
                        .global_strided(addr, 4, 4),
                );
            }

            // Loop bookkeeping: counter, compare, branch.
            out.push(
                InstBuilder::new(Opcode::Iadd)
                    .pc(next_pc(&mut pc))
                    .dst(2)
                    .src(2),
            );
            out.push(
                InstBuilder::new(Opcode::Isetp)
                    .pc(next_pc(&mut pc))
                    .dst(7)
                    .src(2),
            );
            out.push(InstBuilder::new(Opcode::Bra).pc(next_pc(&mut pc)).src(7));
            debug_assert_eq!(pc / 16, self.body_len());
        }
        out.push(InstBuilder::new(Opcode::Exit).pc(self.body_len() * 16));
        out
    }

    fn load_address(
        &self,
        app_base: u64,
        global_warp: u64,
        iter: u32,
        slot: u32,
        rng: &mut SmallRng,
    ) -> u64 {
        match self.pattern {
            MemPattern::Streaming => {
                app_base
                    + (global_warp * u64::from(self.iters.max(1)) + u64::from(iter)) * 128
                    + u64::from(slot) * 0x40_0000
            }
            MemPattern::Strided { lane_stride } => {
                app_base
                    + (global_warp * u64::from(self.iters.max(1)) + u64::from(iter))
                        * lane_stride
                        * 32
                    + u64::from(slot) * 0x40_0000
            }
            MemPattern::Stencil { row_bytes, rows } => {
                let row = u64::from(slot % rows.max(1));
                app_base
                    + (global_warp * u64::from(self.iters.max(1)) + u64::from(iter)) * 128
                    + row * row_bytes
            }
            MemPattern::Irregular {
                footprint_lines,
                hot_fraction,
            } => {
                let hot_lines = (footprint_lines / 12).max(1);
                let line = if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot_lines)
                } else {
                    rng.gen_range(0..footprint_lines.max(1))
                };
                app_base + line * 128
            }
            MemPattern::Tiled { tile_bytes } => {
                // All warps of the block stream the same tile.
                let block = global_warp / 8; // approximate block id
                let offset = (u64::from(iter) * 128 + u64::from(slot) * 32) % tile_bytes.max(128);
                app_base + block * tile_bytes + offset
            }
        }
    }

    fn store_address(&self, app_base: u64, global_warp: u64, iter: u32, slot: u32) -> u64 {
        // Output regions are streaming for every pattern (results written
        // once), offset away from the input region.
        app_base
            + 0x2000_0000
            + (global_warp * u64::from(self.iters.max(1)) + u64::from(iter)) * 128
            + u64::from(slot) * 0x10_0000
    }
}

/// Generate a multi-kernel application with at least `target_insts`
/// traced instructions, for stressing the trace-ingestion pipeline.
///
/// The app cycles through the five memory patterns across eight kernels of
/// roughly equal size, so streaming ingestion (which holds ~2 decoded
/// kernels) has a meaningful memory advantage over eager loading (which
/// holds all eight). Deterministic: the same target always produces the
/// same trace.
pub fn ingest_stress_app(target_insts: u64) -> swiftsim_trace::ApplicationTrace {
    const KERNELS: u64 = 8;
    let mix = Mix {
        loads: 2,
        stores: 1,
        fp: 6,
        int_ops: 4,
        ..Mix::default()
    };
    let patterns = [
        MemPattern::Streaming,
        MemPattern::Strided { lane_stride: 128 },
        MemPattern::Stencil {
            row_bytes: 4096,
            rows: 3,
        },
        MemPattern::Tiled { tile_bytes: 8192 },
        MemPattern::Irregular {
            footprint_lines: 4096,
            hot_fraction: 0.5,
        },
    ];

    let threads_per_block = 128u32; // 4 warps
    let iters = 8u32;
    // Per warp: body * iters + EXIT; body = mix ops + 3 loop instructions.
    let body = u64::from(mix.loads + mix.stores + mix.fp + mix.int_ops + 3);
    let per_block = u64::from(threads_per_block / 32) * (body * u64::from(iters) + 1);
    let per_kernel = target_insts.div_ceil(KERNELS);
    let blocks = per_kernel.div_ceil(per_block).max(2) as u32;

    let kernels = (0..KERNELS)
        .map(|i| {
            PatternKernel {
                name: format!("ingest_k{i}"),
                blocks,
                threads_per_block,
                iters,
                mix,
                pattern: patterns[i as usize % patterns.len()],
                shared_mem_bytes: 0,
                regs_per_thread: 32,
                barrier: false,
            }
            .generate(Scale::Paper)
        })
        .collect();
    swiftsim_trace::ApplicationTrace::new("ingest_stress", kernels)
}

/// FNV-1a hash for deterministic per-name seeds.
pub(crate) fn hash64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PatternKernel {
        PatternKernel {
            name: "test_kernel".into(),
            blocks: 64,
            threads_per_block: 128,
            iters: 16,
            mix: Mix {
                loads: 2,
                stores: 1,
                fp: 4,
                int_ops: 2,
                ..Mix::default()
            },
            pattern: MemPattern::Streaming,
            shared_mem_bytes: 0,
            regs_per_thread: 32,
            barrier: false,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate(Scale::Tiny);
        let b = spec().generate(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_controls_size() {
        let tiny = spec().generate(Scale::Tiny);
        let small = spec().generate(Scale::Small);
        let paper = spec().generate(Scale::Paper);
        assert!(tiny.num_insts() < small.num_insts());
        assert!(small.num_insts() < paper.num_insts());
    }

    #[test]
    fn trace_is_consistent_with_geometry() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
            let k = spec().generate(scale);
            assert!(k.is_consistent(32), "scale {scale:?}");
        }
    }

    #[test]
    fn pcs_repeat_across_iterations() {
        let k = spec().generate(Scale::Small);
        let warp = &k.blocks()[0].warps()[0];
        let mut pcs: Vec<u32> = warp.iter().map(|i| i.pc).collect();
        pcs.sort_unstable();
        pcs.dedup();
        // Static footprint = body length + EXIT, regardless of iterations.
        assert_eq!(pcs.len() as u32, spec().body_len() + 1);
    }

    #[test]
    fn every_instruction_is_well_formed() {
        let patterns = [
            MemPattern::Streaming,
            MemPattern::Strided { lane_stride: 128 },
            MemPattern::Stencil {
                row_bytes: 4096,
                rows: 3,
            },
            MemPattern::Irregular {
                footprint_lines: 1000,
                hot_fraction: 0.5,
            },
            MemPattern::Tiled { tile_bytes: 8192 },
        ];
        for pattern in patterns {
            let mut s = spec();
            s.pattern = pattern;
            s.mix.shared_ld = 1;
            s.mix.shared_st = 1;
            s.barrier = true;
            let k = s.generate(Scale::Tiny);
            for block in k.blocks() {
                for warp in block.warps() {
                    for inst in warp {
                        assert!(inst.is_well_formed(), "{inst:?} under {pattern:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn irregular_pattern_stays_in_footprint() {
        let mut s = spec();
        let footprint = 64u64;
        s.pattern = MemPattern::Irregular {
            footprint_lines: footprint,
            hot_fraction: 0.6,
        };
        let k = s.generate(Scale::Small);
        let app_base = (hash64("test_kernel") % 0x1000) << 24;
        for block in k.blocks() {
            for warp in block.warps() {
                for inst in warp {
                    if inst.opcode == Opcode::Ldg {
                        if let Some(mem) = &inst.mem {
                            let addrs = mem.addresses.expand(inst.active_lanes());
                            assert!(addrs[0] >= app_base);
                            assert!(addrs[0] < app_base + footprint * 128 + 128);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ingest_stress_app_meets_target_and_is_deterministic() {
        let app = ingest_stress_app(100_000);
        assert!(app.num_insts() >= 100_000, "got {}", app.num_insts());
        assert_eq!(app.kernels().len(), 8);
        for k in app.kernels() {
            assert!(k.is_consistent(32));
        }
        assert_eq!(app, ingest_stress_app(100_000));
    }

    #[test]
    fn hash_is_stable_and_distinct() {
        assert_eq!(hash64("bfs"), hash64("bfs"));
        assert_ne!(hash64("bfs"), hash64("gemm"));
    }
}
