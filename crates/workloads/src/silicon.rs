//! The silicon oracle: a stand-in for real-GPU cycle measurements.
//!
//! The paper computes prediction error against cycles measured on real
//! hardware with NVIDIA Nsight Compute (§IV-A1). Without hardware, this
//! module models "real silicon" as the detailed baseline's prediction
//! perturbed by a deterministic, per-(application, GPU) lognormal factor
//! representing behaviour no academic simulator captures (clock
//! management, instruction replay, driver overheads, undisclosed
//! microarchitecture). The dispersion is calibrated so the *baseline's*
//! mean absolute error lands near the paper's ~20%; the Swift-Sim presets'
//! errors are then **emergent** — they are measured against the same
//! oracle, so the accuracy deltas between simulators come from genuine
//! model differences, not from this module. See DESIGN.md §3.

use crate::gen::hash64;

/// Dispersion of the lognormal perturbation (σ of ln-factor). 0.26 yields
/// a mean absolute relative deviation of ≈20%, matching the accuracy level
/// the paper reports for Accel-Sim on the RTX 2080 Ti.
const SIGMA: f64 = 0.26;

/// Dispersion for non-cycle statistics. Ratio-valued stats (miss rates)
/// drift less between silicon and simulator than absolute counters do, so
/// they get a tighter σ.
const SIGMA_RATE: f64 = 0.12;

/// Deterministic standard-normal-ish variate for an arbitrary key, via the
/// Irwin–Hall sum of 12 hash-derived uniforms.
fn z_of(key: &str) -> f64 {
    let mut sum = 0.0;
    for i in 0..12u64 {
        let h = splitmix64(hash64(&format!("{key}|{i}")));
        sum += (h >> 11) as f64 / (1u64 << 53) as f64;
    }
    sum - 6.0
}

/// Deterministic standard-normal-ish variate for (app, gpu).
fn z_score(app: &str, gpu: &str) -> f64 {
    z_of(&format!("{app}|{gpu}"))
}

/// Finalizing mix (splitmix64): FNV's raw output is not uniform enough in
/// its high bits for short, similar strings.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The hardware/simulator discrepancy factor for (app, gpu): real cycles
/// are modeled as `baseline_prediction * factor`.
pub fn discrepancy_factor(app: &str, gpu: &str) -> f64 {
    (z_score(app, gpu) * SIGMA).exp()
}

/// "Measured" hardware cycles for `app` on `gpu`, given the detailed
/// baseline's prediction.
///
/// # Examples
///
/// ```
/// use swiftsim_workloads::silicon;
///
/// let cycles = silicon::hardware_cycles("bfs", "RTX 2080 Ti", 1_000_000);
/// assert!(cycles > 300_000 && cycles < 3_000_000);
/// ```
pub fn hardware_cycles(app: &str, gpu: &str, baseline_prediction: u64) -> u64 {
    let cycles = baseline_prediction as f64 * discrepancy_factor(app, gpu);
    cycles.round().max(1.0) as u64
}

/// The hardware/simulator discrepancy factor for one *statistic* of
/// (app, gpu) — the per-stat generalization behind [`hardware_stat`].
///
/// Consistency constraints are enforced rather than sampled:
///
/// * `"cycles"` uses [`discrepancy_factor`] verbatim, so the per-stat
///   oracle agrees with [`hardware_cycles`] exactly;
/// * `"ipc"` is its reciprocal — the dynamic instruction stream is
///   trace-driven and identical on hardware, so measured IPC is
///   `instructions / measured cycles` by definition;
/// * `"instructions"` is exactly 1.0 for the same reason;
/// * every other stat gets an independent deterministic lognormal factor
///   keyed on (app, gpu, stat), with a tighter dispersion for `*_rate`
///   ratios.
pub fn stat_discrepancy_factor(app: &str, gpu: &str, stat: &str) -> f64 {
    match stat {
        "cycles" => discrepancy_factor(app, gpu),
        "ipc" => 1.0 / discrepancy_factor(app, gpu),
        "instructions" => 1.0,
        _ => {
            let sigma = if stat.ends_with("_rate") {
                SIGMA_RATE
            } else {
                SIGMA
            };
            (z_of(&format!("{app}|{gpu}#{stat}")) * sigma).exp()
        }
    }
}

/// "Measured" hardware value of one statistic for `app` on `gpu`, given
/// the detailed baseline's prediction for it. Ratio-valued stats
/// (`*_rate`, `ipc` excluded — IPC is unbounded) are clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use swiftsim_workloads::silicon;
///
/// let rate = silicon::hardware_stat("bfs", "RTX 2080 Ti", "l1_miss_rate", 0.4);
/// assert!((0.0..=1.0).contains(&rate));
/// // The per-stat oracle agrees with the cycles oracle exactly.
/// let c = silicon::hardware_stat("bfs", "RTX 2080 Ti", "cycles", 1.0e6);
/// assert_eq!(c.round() as u64, silicon::hardware_cycles("bfs", "RTX 2080 Ti", 1_000_000));
/// ```
pub fn hardware_stat(app: &str, gpu: &str, stat: &str, baseline_prediction: f64) -> f64 {
    let v = baseline_prediction * stat_discrepancy_factor(app, gpu, stat);
    if stat.ends_with("_rate") {
        v.clamp(0.0, 1.0)
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_deterministic() {
        assert_eq!(
            hardware_cycles("bfs", "RTX 2080 Ti", 123_456),
            hardware_cycles("bfs", "RTX 2080 Ti", 123_456)
        );
    }

    #[test]
    fn factors_vary_per_app_and_gpu() {
        let a = discrepancy_factor("bfs", "RTX 2080 Ti");
        let b = discrepancy_factor("gemm", "RTX 2080 Ti");
        let c = discrepancy_factor("bfs", "RTX 3090");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dispersion_is_calibrated_to_about_20_percent() {
        // Mean |factor - 1| over many (app, gpu) pairs should sit near the
        // paper's ~20% baseline error band.
        let mut total = 0.0;
        let mut n = 0;
        for app in 0..200 {
            for gpu in ["a", "b", "c"] {
                let f = discrepancy_factor(&format!("app{app}"), gpu);
                total += (f - 1.0).abs();
                n += 1;
            }
        }
        let mean = total / f64::from(n);
        assert!(
            (0.12..=0.30).contains(&mean),
            "mean |factor-1| = {mean:.3} outside the calibration band"
        );
    }

    #[test]
    fn factors_are_positive_and_bounded() {
        for app in ["bfs", "nw", "adi", "gemm", "sssp"] {
            for gpu in ["RTX 2080 Ti", "RTX 3060", "RTX 3090"] {
                let f = discrepancy_factor(app, gpu);
                assert!(f > 0.3 && f < 3.0, "{app}/{gpu}: {f}");
            }
        }
    }

    #[test]
    fn hardware_cycles_never_zero() {
        assert_eq!(hardware_cycles("x", "y", 0), 1);
    }

    #[test]
    fn per_stat_oracle_is_deterministic_and_platform_independent() {
        // Identical across calls...
        for stat in ["cycles", "ipc", "l1_miss_rate", "dram_reads"] {
            assert_eq!(
                hardware_stat("bfs", "RTX 2080 Ti", stat, 0.37).to_bits(),
                hardware_stat("bfs", "RTX 2080 Ti", stat, 0.37).to_bits()
            );
        }
        // ...and across builds/platforms: the pipeline is integer hashing
        // plus a fixed sequence of IEEE-754 double operations, so the exact
        // bit pattern is part of the contract (checkpoints and thresholds
        // depend on it). If this assertion fires, the oracle changed and
        // every stored accuracy threshold must be re-baselined.
        assert_eq!(
            stat_discrepancy_factor("bfs", "RTX 2080 Ti", "dram_reads").to_bits(),
            stat_discrepancy_factor("bfs", "RTX 2080 Ti", "dram_reads").to_bits()
        );
        let f = stat_discrepancy_factor("bfs", "RTX 2080 Ti", "dram_reads");
        assert!(f > 0.3 && f < 3.0, "{f}");
    }

    #[test]
    fn per_stat_factors_are_consistent_with_cycles() {
        let cycles = stat_discrepancy_factor("nw", "RTX 3090", "cycles");
        assert_eq!(cycles, discrepancy_factor("nw", "RTX 3090"));
        let ipc = stat_discrepancy_factor("nw", "RTX 3090", "ipc");
        assert!((ipc * cycles - 1.0).abs() < 1e-12);
        assert_eq!(
            stat_discrepancy_factor("nw", "RTX 3090", "instructions"),
            1.0
        );
    }

    #[test]
    fn per_stat_factors_vary_per_stat() {
        let a = stat_discrepancy_factor("bfs", "RTX 2080 Ti", "dram_reads");
        let b = stat_discrepancy_factor("bfs", "RTX 2080 Ti", "dram_writes");
        assert_ne!(a, b);
    }

    #[test]
    fn rate_stats_stay_in_unit_interval() {
        for app in ["bfs", "nw", "gemm"] {
            let v = hardware_stat(app, "RTX 2080 Ti", "l1_miss_rate", 0.95);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
        assert_eq!(hardware_stat("x", "y", "l2_miss_rate", 40.0), 1.0);
    }
}
