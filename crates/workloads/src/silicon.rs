//! The silicon oracle: a stand-in for real-GPU cycle measurements.
//!
//! The paper computes prediction error against cycles measured on real
//! hardware with NVIDIA Nsight Compute (§IV-A1). Without hardware, this
//! module models "real silicon" as the detailed baseline's prediction
//! perturbed by a deterministic, per-(application, GPU) lognormal factor
//! representing behaviour no academic simulator captures (clock
//! management, instruction replay, driver overheads, undisclosed
//! microarchitecture). The dispersion is calibrated so the *baseline's*
//! mean absolute error lands near the paper's ~20%; the Swift-Sim presets'
//! errors are then **emergent** — they are measured against the same
//! oracle, so the accuracy deltas between simulators come from genuine
//! model differences, not from this module. See DESIGN.md §3.

use crate::gen::hash64;

/// Dispersion of the lognormal perturbation (σ of ln-factor). 0.26 yields
/// a mean absolute relative deviation of ≈20%, matching the accuracy level
/// the paper reports for Accel-Sim on the RTX 2080 Ti.
const SIGMA: f64 = 0.26;

/// Deterministic standard-normal-ish variate for (app, gpu), via the
/// Irwin–Hall sum of 12 hash-derived uniforms.
fn z_score(app: &str, gpu: &str) -> f64 {
    let mut sum = 0.0;
    for i in 0..12u64 {
        let h = splitmix64(hash64(&format!("{app}|{gpu}|{i}")));
        sum += (h >> 11) as f64 / (1u64 << 53) as f64;
    }
    sum - 6.0
}

/// Finalizing mix (splitmix64): FNV's raw output is not uniform enough in
/// its high bits for short, similar strings.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The hardware/simulator discrepancy factor for (app, gpu): real cycles
/// are modeled as `baseline_prediction * factor`.
pub fn discrepancy_factor(app: &str, gpu: &str) -> f64 {
    (z_score(app, gpu) * SIGMA).exp()
}

/// "Measured" hardware cycles for `app` on `gpu`, given the detailed
/// baseline's prediction.
///
/// # Examples
///
/// ```
/// use swiftsim_workloads::silicon;
///
/// let cycles = silicon::hardware_cycles("bfs", "RTX 2080 Ti", 1_000_000);
/// assert!(cycles > 300_000 && cycles < 3_000_000);
/// ```
pub fn hardware_cycles(app: &str, gpu: &str, baseline_prediction: u64) -> u64 {
    let cycles = baseline_prediction as f64 * discrepancy_factor(app, gpu);
    cycles.round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_deterministic() {
        assert_eq!(
            hardware_cycles("bfs", "RTX 2080 Ti", 123_456),
            hardware_cycles("bfs", "RTX 2080 Ti", 123_456)
        );
    }

    #[test]
    fn factors_vary_per_app_and_gpu() {
        let a = discrepancy_factor("bfs", "RTX 2080 Ti");
        let b = discrepancy_factor("gemm", "RTX 2080 Ti");
        let c = discrepancy_factor("bfs", "RTX 3090");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dispersion_is_calibrated_to_about_20_percent() {
        // Mean |factor - 1| over many (app, gpu) pairs should sit near the
        // paper's ~20% baseline error band.
        let mut total = 0.0;
        let mut n = 0;
        for app in 0..200 {
            for gpu in ["a", "b", "c"] {
                let f = discrepancy_factor(&format!("app{app}"), gpu);
                total += (f - 1.0).abs();
                n += 1;
            }
        }
        let mean = total / f64::from(n);
        assert!(
            (0.12..=0.30).contains(&mean),
            "mean |factor-1| = {mean:.3} outside the calibration band"
        );
    }

    #[test]
    fn factors_are_positive_and_bounded() {
        for app in ["bfs", "nw", "adi", "gemm", "sssp"] {
            for gpu in ["RTX 2080 Ti", "RTX 3060", "RTX 3090"] {
                let f = discrepancy_factor(app, gpu);
                assert!(f > 0.3 && f < 3.0, "{app}/{gpu}: {f}");
            }
        }
    }

    #[test]
    fn hardware_cycles_never_zero() {
        assert_eq!(hardware_cycles("x", "y", 0), 1);
    }
}
