//! Observability primitives under adversarial inputs: histogram merge
//! algebra, quantile error bounds, degenerate (empty / overflow) buckets,
//! and Prometheus text-exposition escaping.
//!
//! These are the guarantees the serve daemon leans on when it merges
//! worker-shipped histograms into its own and exposes the result to a
//! scraper: merging must be order-independent, quantiles must never
//! under-report, and hostile label values must not corrupt the exposition.

use swiftsim_metrics::{escape_label_value, sanitize_metric_name, Histogram, Json, Registry};

/// A deterministic xorshift stream so the tests are reproducible without
/// a random-number dependency.
fn xorshift(seed: &mut u64) -> u64 {
    let mut x = *seed;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *seed = x;
    x
}

/// A histogram over `n` pseudo-random samples in `[0, span)`, plus the raw
/// samples for ground-truth comparisons.
fn sample_hist(seed: u64, n: usize, span: u64) -> (Histogram, Vec<u64>) {
    let mut h = Histogram::new();
    let mut values = Vec::with_capacity(n);
    let mut s = seed;
    for _ in 0..n {
        let v = xorshift(&mut s) % span;
        h.record(v);
        values.push(v);
    }
    (h, values)
}

#[test]
fn merge_is_associative_and_commutative() {
    let (a, _) = sample_hist(0x5eed_0001, 500, 1 << 20);
    let (b, _) = sample_hist(0x5eed_0002, 300, 1 << 8);
    let (c, _) = sample_hist(0x5eed_0003, 700, u64::MAX);

    // (a ⊕ b) ⊕ c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);

    // a ⊕ (b ⊕ c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);

    assert_eq!(left, right, "merge must be associative");

    // b ⊕ a == a ⊕ b
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must be commutative");

    // The merged summary stats equal the union's.
    assert_eq!(left.count(), 1500);
    assert_eq!(
        left.sum(),
        a.sum().saturating_add(b.sum()).saturating_add(c.sum())
    );
    assert_eq!(left.min(), a.min().min(b.min()).min(c.min()));
    assert_eq!(left.max(), a.max().max(b.max()).max(c.max()));
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(left.quantile(q), right.quantile(q), "q={q}");
    }
}

#[test]
fn quantile_never_under_reports_and_over_reports_within_bound() {
    let (h, mut values) = sample_hist(0xfeed_beef, 2000, 1 << 40);
    values.sort_unstable();
    for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        // Nearest-rank ground truth over the raw samples.
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let est = h.quantile(q).expect("non-empty");
        assert!(est >= truth, "q={q}: estimate {est} under-reports {truth}");
        assert!(
            est as f64 <= truth as f64 * 1.125 + 1.0,
            "q={q}: estimate {est} over-reports {truth} by more than 12.5%"
        );
    }
}

#[test]
fn empty_histogram_is_inert() {
    let empty = Histogram::new();
    assert!(empty.is_empty());
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.sum(), 0);
    assert_eq!(empty.min(), None);
    assert_eq!(empty.max(), None);
    assert_eq!(empty.mean(), None);
    assert_eq!(empty.quantile(0.5), None);
    assert_eq!(empty.buckets().count(), 0);

    // Merging with empty is the identity in both directions.
    let (populated, _) = sample_hist(0xabad_cafe, 100, 1000);
    let mut merged = populated.clone();
    merged.merge(&empty);
    assert_eq!(merged, populated, "x ⊕ empty == x");
    let mut from_empty = Histogram::new();
    from_empty.merge(&populated);
    assert_eq!(from_empty, populated, "empty ⊕ x == x");

    // An untouched histogram still renders a valid (all-zero) exposition.
    let reg = Registry::new();
    reg.merge_histogram("silent_us", &empty);
    let text = reg.prometheus_text("t");
    assert!(text.contains("# TYPE t_silent_us histogram"), "{text}");
    assert!(text.contains("t_silent_us_bucket{le=\"+Inf\"} 0"), "{text}");
    assert!(text.contains("t_silent_us_count 0"), "{text}");
}

#[test]
fn overflow_values_land_in_the_top_bucket() {
    let mut h = Histogram::new();
    h.record(0);
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(u64::MAX));
    // The top quantile is clamped to the observed max, not a bucket bound
    // beyond u64 range.
    assert_eq!(h.quantile(1.0), Some(u64::MAX));
    // The sum saturates instead of wrapping.
    assert_eq!(h.sum(), u64::MAX);
    // Both extreme samples are really in buckets (no silent drop).
    let total: u64 = h.buckets().map(|(_, n)| n).sum();
    assert_eq!(total, 3);
}

#[test]
fn exposition_bucket_rows_are_cumulative_and_consistent() {
    let reg = Registry::new();
    let (h, _) = sample_hist(0x0dd_ba11, 256, 1 << 16);
    reg.merge_histogram("lat_us", &h);
    let text = reg.prometheus_text("swiftsim");

    let mut last = 0u64;
    let mut rows = 0;
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("swiftsim_lat_us_bucket{le=\"") else {
            continue;
        };
        let (le, count) = rest.split_once("\"} ").expect("bucket row shape");
        let count: u64 = count.parse().expect("bucket count");
        assert!(count >= last, "bucket rows must be cumulative: {line}");
        last = count;
        rows += 1;
        if le == "+Inf" {
            assert_eq!(count, h.count(), "+Inf bucket carries the total");
        }
    }
    assert!(rows > 2, "expected several bucket rows:\n{text}");
    assert_eq!(last, h.count(), "final cumulative equals _count");
    assert!(text.contains(&format!("swiftsim_lat_us_count {}", h.count())));
    assert!(text.contains(&format!("swiftsim_lat_us_sum {}", h.sum())));
}

#[test]
fn exposition_escapes_hostile_label_values_and_names() {
    let reg = Registry::new();
    // A client name chosen to break out of the quoted label value.
    reg.incr_labeled(
        "client_submissions",
        &[("client", "evil\"} 9\nfake_metric 1\\")],
    );
    // A metric name using the CounterSet dot convention plus invalid chars.
    reg.counters().incr("queue.depth-total");
    reg.gauge("workers connected").set(2);
    let text = reg.prometheus_text("swiftsim");

    // The hostile value is fully escaped on one line; nothing injected.
    assert!(
        text.contains(r#"swiftsim_client_submissions{client="evil\"} 9\nfake_metric 1\\"} 1"#),
        "escaped label row missing:\n{text}"
    );
    assert!(
        !text.contains("\nfake_metric"),
        "label value injected a row"
    );

    // Names are sanitized to the Prometheus charset.
    assert!(text.contains("swiftsim_queue_depth_total 1"), "{text}");
    assert!(text.contains("swiftsim_workers_connected 2"), "{text}");

    // The helpers behave as documented on their own.
    assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    assert_eq!(sanitize_metric_name("9a.b-c"), "_a_b_c");

    // Every non-comment line parses as `name{labels}? value`.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("row shape");
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
    }
}

#[test]
fn registry_json_quantiles_match_histogram() {
    let reg = Registry::new();
    let (h, _) = sample_hist(0x50_50_50, 128, 1 << 12);
    reg.merge_histogram("lat_us", &h);
    let json = reg.to_json();
    let row = json
        .get("histograms")
        .and_then(|m| m.get("lat_us"))
        .expect("histogram row");
    assert_eq!(row.get("count").and_then(Json::as_u64), Some(h.count()));
    assert_eq!(row.get("p50").and_then(Json::as_u64), h.quantile(0.5));
    assert_eq!(row.get("p99").and_then(Json::as_u64), h.quantile(0.99));
}
