// The property-based suite needs the external `proptest` crate, which is
// unavailable in offline builds. Enable the crate's non-default `proptest`
// feature (after restoring the dev-dependency in Cargo.toml and the
// workspace manifest) to run it.
#![cfg(feature = "proptest")]

//! Property-based tests for the Metrics Gatherer's aggregation helpers.

use proptest::prelude::*;
use swiftsim_metrics::{geomean, mean, mean_abs, rel_error, MetricsCollector, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The geometric mean of positive values lies between min and max and
    /// never exceeds the arithmetic mean (AM–GM).
    #[test]
    fn geomean_between_min_and_max(values in prop::collection::vec(0.01f64..1e6, 1..40)) {
        let g = geomean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * (1.0 - 1e-9));
        prop_assert!(g <= max * (1.0 + 1e-9));
        prop_assert!(g <= mean(&values) * (1.0 + 1e-9));
    }

    /// Scaling every value scales the geometric mean by the same factor.
    #[test]
    fn geomean_is_homogeneous(values in prop::collection::vec(0.01f64..1e4, 1..20), k in 0.1f64..100.0) {
        let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
        let lhs = geomean(&scaled);
        let rhs = geomean(&values) * k;
        prop_assert!((lhs - rhs).abs() <= rhs.abs() * 1e-9);
    }

    /// Relative error is symmetric under over/under prediction of the same
    /// multiplicative distance measured against the same reference.
    #[test]
    fn rel_error_basics(actual in 1.0f64..1e9, delta in 0.0f64..5.0) {
        prop_assert!((rel_error(actual * (1.0 + delta), actual) - delta).abs() < 1e-6);
        prop_assert_eq!(rel_error(actual, actual), 0.0);
        prop_assert!(mean_abs(&[-delta, delta]) >= 0.0);
    }

    /// Accumulating counts in any interleaving yields the total.
    #[test]
    fn collector_accumulation_is_order_independent(amounts in prop::collection::vec(0u64..1000, 1..50)) {
        let total: u64 = amounts.iter().sum();
        let mut forward = MetricsCollector::new();
        for &a in &amounts {
            forward.add("x", a);
        }
        let mut backward = MetricsCollector::new();
        for &a in amounts.iter().rev() {
            backward.add("x", a);
        }
        prop_assert_eq!(forward.count("x"), Some(total));
        prop_assert_eq!(backward.count("x"), Some(total));
    }

    /// Absorbing worker collectors preserves every entry under its prefix.
    #[test]
    fn absorb_preserves_entries(values in prop::collection::vec(0u64..1000, 1..20)) {
        let mut main = MetricsCollector::new();
        for (i, &v) in values.iter().enumerate() {
            let mut worker = MetricsCollector::new();
            worker.set("cycles", Value::Cycles(v));
            main.absorb(&format!("w{i}"), &worker);
        }
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(main.cycles(&format!("w{i}.cycles")), Some(v));
        }
        prop_assert_eq!(main.len(), values.len());
    }
}
