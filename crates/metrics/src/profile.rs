//! Self-profiling instrumentation: where does the *simulator* spend its
//! own wall-clock time?
//!
//! The paper's headline numbers (Fig. 4/5) are wall-clock claims, so the
//! framework needs to attribute its own run time to the modules of §III —
//! block scheduler, warp scheduler, ALU pipeline, LD/ST + coalescer, L1,
//! NoC, L2, DRAM — to know which component to parallelize or approximate
//! next. This module provides that substrate:
//!
//! * [`Profiler`] — a per-shard recorder of module wall-time and cycle
//!   attribution. When disabled every call is a single branch on an enum
//!   discriminant, so instrumented hot loops pay effectively nothing.
//! * [`ProfileReport`] — the merged result: per-kernel frames with
//!   per-module totals, renderable as a text attribution [`Table`] or as a
//!   Chrome trace-event / Perfetto-compatible [`Json`] document.
//!
//! Timing granularity is deliberately coarse: one span per module per
//! simulated kernel (a *frame*), accumulated from many small
//! [`Profiler::record`] calls. That keeps `--profile` overhead low while
//! still answering "where did the time go" per kernel and per module.

use crate::json::Json;
use crate::table::Table;
use std::time::{Duration, Instant};

/// A simulator module that can be attributed wall time and cycles.
///
/// Mirrors the module decomposition of the paper's Fig. 1: the SM-side
/// pipeline stages, the memory hierarchy levels, and the analytical memory
/// model that replaces the latter under the `swift-sim-memory` preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfModule {
    /// Kernel/block dispatch bookkeeping.
    BlockScheduler,
    /// Warp scan, stall classification, and pick.
    WarpScheduler,
    /// ALU/SFU/tensor issue and write-back pipeline.
    Alu,
    /// LD/ST unit: address generation and the coalescer.
    LdSt,
    /// L1 data cache (tag checks, MSHR, fills).
    L1,
    /// Interconnect between SMs and memory partitions.
    Noc,
    /// L2 cache slices.
    L2,
    /// DRAM timing model.
    Dram,
    /// The analytical memory model (Eq. 1) used by `swift-sim-memory`.
    MemAnalytical,
    /// Trace ingestion: decoding a kernel from its `TraceSource` (runs on
    /// the prefetch thread, overlapping simulation of the prior kernel).
    TraceDecode,
    /// Everything not covered by a finer-grained module (event-loop glue,
    /// time advance, termination checks).
    Other,
    /// Quiescent cycles the event-driven engine fast-forwarded over instead
    /// of ticking (cycle attribution only; skipping costs no wall time).
    CycleSkip,
    /// Two-phase parallel engine synchronization: the coordinator waiting
    /// on shard compute phases and committing their buffered events.
    PhaseSync,
}

impl ProfModule {
    /// Every module, in fixed report order.
    pub const ALL: [ProfModule; 13] = [
        ProfModule::BlockScheduler,
        ProfModule::WarpScheduler,
        ProfModule::Alu,
        ProfModule::LdSt,
        ProfModule::L1,
        ProfModule::Noc,
        ProfModule::L2,
        ProfModule::Dram,
        ProfModule::MemAnalytical,
        ProfModule::TraceDecode,
        ProfModule::Other,
        ProfModule::CycleSkip,
        ProfModule::PhaseSync,
    ];

    /// Dense index of this module in [`ProfModule::ALL`].
    pub fn index(self) -> usize {
        match self {
            ProfModule::BlockScheduler => 0,
            ProfModule::WarpScheduler => 1,
            ProfModule::Alu => 2,
            ProfModule::LdSt => 3,
            ProfModule::L1 => 4,
            ProfModule::Noc => 5,
            ProfModule::L2 => 6,
            ProfModule::Dram => 7,
            ProfModule::MemAnalytical => 8,
            ProfModule::TraceDecode => 9,
            ProfModule::Other => 10,
            ProfModule::CycleSkip => 11,
            ProfModule::PhaseSync => 12,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ProfModule::BlockScheduler => "block-scheduler",
            ProfModule::WarpScheduler => "warp-scheduler",
            ProfModule::Alu => "alu-pipeline",
            ProfModule::LdSt => "ldst-coalescer",
            ProfModule::L1 => "l1-cache",
            ProfModule::Noc => "noc",
            ProfModule::L2 => "l2-cache",
            ProfModule::Dram => "dram",
            ProfModule::MemAnalytical => "mem-analytical",
            ProfModule::TraceDecode => "trace-decode",
            ProfModule::Other => "other",
            ProfModule::CycleSkip => "cycle-skip",
            ProfModule::PhaseSync => "phase-sync",
        }
    }

    /// Inverse of [`ProfModule::name`], for deserializing reports shipped
    /// between processes (worker → coordinator).
    pub fn from_name(name: &str) -> Option<ProfModule> {
        ProfModule::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Trace-event category: which side of the GPU the module sits on.
    fn category(self) -> &'static str {
        match self {
            ProfModule::BlockScheduler
            | ProfModule::WarpScheduler
            | ProfModule::Alu
            | ProfModule::LdSt => "core",
            ProfModule::L1
            | ProfModule::Noc
            | ProfModule::L2
            | ProfModule::Dram
            | ProfModule::MemAnalytical => "mem",
            ProfModule::TraceDecode
            | ProfModule::Other
            | ProfModule::CycleSkip
            | ProfModule::PhaseSync => "sim",
        }
    }
}

const NUM_MODULES: usize = ProfModule::ALL.len();

/// Per-module accumulators within one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ModuleTotals {
    wall_ns: u64,
    cycles: u64,
    events: u64,
}

/// One profiled span of simulation — in practice, one kernel on one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfFrame {
    /// Display name, e.g. `"k0:matmul"`.
    pub name: String,
    /// Track (shard) the frame ran on; track 0 is the single-threaded run.
    pub track: usize,
    /// Frame start, nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Frame end, nanoseconds since the profiler epoch.
    pub end_ns: u64,
    totals: [ModuleTotals; NUM_MODULES],
}

impl ProfFrame {
    /// Wall time attributed to `module` in this frame.
    pub fn wall(&self, module: ProfModule) -> Duration {
        Duration::from_nanos(self.totals[module.index()].wall_ns)
    }

    /// Simulated cycles attributed to `module` in this frame.
    pub fn cycles(&self, module: ProfModule) -> u64 {
        self.totals[module.index()].cycles
    }

    /// Number of recorded events for `module` in this frame.
    pub fn events(&self, module: ProfModule) -> u64 {
        self.totals[module.index()].events
    }

    /// Total frame duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }

    /// Build a frame from explicit per-module `(module, wall_ns, cycles,
    /// events)` entries — the constructor used when deserializing frames
    /// recorded in another process.
    pub fn from_parts(
        name: &str,
        track: usize,
        start_ns: u64,
        end_ns: u64,
        entries: &[(ProfModule, u64, u64, u64)],
    ) -> ProfFrame {
        let mut totals = [ModuleTotals::default(); NUM_MODULES];
        for &(module, wall_ns, cycles, events) in entries {
            let t = &mut totals[module.index()];
            t.wall_ns = t.wall_ns.saturating_add(wall_ns);
            t.cycles = t.cycles.saturating_add(cycles);
            t.events = t.events.saturating_add(events);
        }
        ProfFrame {
            name: name.to_owned(),
            track,
            start_ns,
            end_ns,
            totals,
        }
    }

    /// Serialize to JSON. Module totals are emitted by stable module name
    /// as `[wall_ns, cycles, events]` triples; inactive modules are
    /// omitted.
    pub fn to_json(&self) -> Json {
        let totals: Vec<(String, Json)> = ProfModule::ALL
            .iter()
            .filter_map(|&m| {
                let t = self.totals[m.index()];
                if t.wall_ns == 0 && t.cycles == 0 && t.events == 0 {
                    return None;
                }
                Some((
                    m.name().to_owned(),
                    Json::Arr(vec![
                        Json::int(t.wall_ns),
                        Json::int(t.cycles),
                        Json::int(t.events),
                    ]),
                ))
            })
            .collect();
        Json::obj(vec![
            ("name", Json::str(self.name.as_str())),
            ("track", Json::int(self.track as u64)),
            ("start_ns", Json::int(self.start_ns)),
            ("end_ns", Json::int(self.end_ns)),
            ("totals", Json::Obj(totals)),
        ])
    }

    /// Deserialize a frame written by [`ProfFrame::to_json`]. Module names
    /// from a different build that no longer resolve are skipped rather
    /// than rejected, so traces stay forward-compatible.
    pub fn from_json(v: &Json) -> Result<ProfFrame, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("frame missing name")?;
        let track = v
            .get("track")
            .and_then(Json::as_u64)
            .ok_or("frame missing track")? as usize;
        let start_ns = v
            .get("start_ns")
            .and_then(Json::as_u64)
            .ok_or("frame missing start_ns")?;
        let end_ns = v
            .get("end_ns")
            .and_then(Json::as_u64)
            .ok_or("frame missing end_ns")?;
        let mut entries = Vec::new();
        if let Some(Json::Obj(totals)) = v.get("totals") {
            for (module_name, triple) in totals {
                let Some(module) = ProfModule::from_name(module_name) else {
                    continue;
                };
                let triple = triple.as_arr().ok_or("totals entry not an array")?;
                let get = |i: usize| triple.get(i).and_then(Json::as_u64).unwrap_or(0);
                entries.push((module, get(0), get(1), get(2)));
            }
        }
        Ok(ProfFrame::from_parts(
            name, track, start_ns, end_ns, &entries,
        ))
    }
}

/// Records module wall-time and cycle attribution for one execution shard.
///
/// All methods are near-free when the profiler is disabled: [`Profiler::start`]
/// returns `None` without reading the clock, and the other entry points
/// check `enabled` first. The hot-loop contract is
///
/// ```
/// use swiftsim_metrics::{ProfModule, Profiler};
///
/// let mut prof = Profiler::enabled();
/// prof.begin_frame("k0:demo");
/// let t0 = prof.start();            // None when disabled — no clock read
/// // ... do module work ...
/// prof.record(ProfModule::Alu, t0); // no-op when t0 is None
/// prof.add_cycles(ProfModule::Alu, 4);
/// prof.end_frame();
/// assert_eq!(prof.frames().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    enabled: bool,
    epoch: Instant,
    track: usize,
    frames: Vec<ProfFrame>,
    current: Option<ProfFrame>,
}

impl Profiler {
    /// A disabled profiler: every call is a cheap no-op.
    pub fn disabled() -> Self {
        Profiler {
            enabled: false,
            epoch: Instant::now(),
            track: 0,
            frames: Vec::new(),
            current: None,
        }
    }

    /// An enabled profiler with its own epoch, recording on track 0.
    pub fn enabled() -> Self {
        Profiler {
            enabled: true,
            epoch: Instant::now(),
            track: 0,
            frames: Vec::new(),
            current: None,
        }
    }

    /// An enabled profiler sharing `epoch` with sibling shards, recording
    /// on `track`. Parallel runs hand every shard the same epoch so their
    /// frames line up on one timeline.
    pub fn enabled_on_track(epoch: Instant, track: usize) -> Self {
        Profiler {
            enabled: true,
            epoch,
            track,
            frames: Vec::new(),
            current: None,
        }
    }

    /// Whether this profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The epoch all timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Begin a new frame (one simulated kernel). Implicitly ends any open
    /// frame. No-op when disabled.
    pub fn begin_frame(&mut self, name: &str) {
        if !self.enabled {
            return;
        }
        self.end_frame();
        let now = self.now_ns();
        self.current = Some(ProfFrame {
            name: name.to_owned(),
            track: self.track,
            start_ns: now,
            end_ns: now,
            totals: [ModuleTotals::default(); NUM_MODULES],
        });
    }

    /// Close the open frame, if any. No-op when disabled or no frame open.
    pub fn end_frame(&mut self) {
        if !self.enabled {
            return;
        }
        if let Some(mut frame) = self.current.take() {
            frame.end_ns = self.now_ns();
            self.frames.push(frame);
        }
    }

    /// Start a span: reads the clock only when enabled, so the disabled
    /// path is a single branch.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Attribute the wall time since `t0` (from [`Profiler::start`]) to
    /// `module`. No-op when `t0` is `None`.
    #[inline]
    pub fn record(&mut self, module: ProfModule, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.record_wall_ns(module, t0.elapsed().as_nanos() as u64, 1);
        }
    }

    /// Attribute `wall_ns` nanoseconds and `events` events to `module`
    /// directly — for callers that split one measured interval across
    /// modules (e.g. the event-driven memory system splitting its
    /// `advance` time by per-level event counts).
    #[inline]
    pub fn record_wall_ns(&mut self, module: ProfModule, wall_ns: u64, events: u64) {
        if !self.enabled {
            return;
        }
        if let Some(frame) = self.current.as_mut() {
            let t = &mut frame.totals[module.index()];
            t.wall_ns += wall_ns;
            t.events += events;
        }
    }

    /// Attribute simulated cycles to `module` in the open frame.
    #[inline]
    pub fn add_cycles(&mut self, module: ProfModule, cycles: u64) {
        if !self.enabled {
            return;
        }
        if let Some(frame) = self.current.as_mut() {
            frame.totals[module.index()].cycles += cycles;
        }
    }

    /// Frames recorded so far (open frame excluded).
    pub fn frames(&self) -> &[ProfFrame] {
        &self.frames
    }

    /// Consume the profiler, closing any open frame, and return a report.
    pub fn into_report(mut self) -> ProfileReport {
        self.end_frame();
        ProfileReport {
            frames: self.frames,
        }
    }

    /// Merge another profiler's frames (e.g. a sibling shard's) into this
    /// one. Both should share an epoch for the timeline to be coherent.
    pub fn absorb(&mut self, other: Profiler) {
        let report = other.into_report();
        self.frames.extend(report.frames);
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// The merged output of one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// All recorded frames, across every shard.
    pub frames: Vec<ProfFrame>,
}

impl ProfileReport {
    /// An empty report.
    pub fn new() -> Self {
        ProfileReport { frames: Vec::new() }
    }

    /// Merge frames from several shard reports into one, ordered by
    /// (start time, track) so output is deterministic.
    pub fn merge(reports: Vec<ProfileReport>) -> Self {
        let mut frames: Vec<ProfFrame> = reports.into_iter().flat_map(|r| r.frames).collect();
        frames.sort_by_key(|f| (f.start_ns, f.track, f.name.clone()));
        ProfileReport { frames }
    }

    /// Total wall time attributed to `module` across all frames.
    pub fn total_wall(&self, module: ProfModule) -> Duration {
        self.frames.iter().map(|f| f.wall(module)).sum()
    }

    /// Total simulated cycles attributed to `module` across all frames.
    pub fn total_cycles(&self, module: ProfModule) -> u64 {
        self.frames.iter().map(|f| f.cycles(module)).sum()
    }

    /// Wall time attributed to any module (the profiled fraction of the
    /// run; event-loop glue outside spans is not included).
    pub fn attributed_wall(&self) -> Duration {
        ProfModule::ALL.iter().map(|&m| self.total_wall(m)).sum()
    }

    /// The per-module attribution table: wall time, share of attributed
    /// time, simulated cycles, and event counts. Modules with no recorded
    /// activity are omitted.
    pub fn attribution_table(&self) -> Table {
        let total = self.attributed_wall().as_nanos().max(1) as f64;
        let mut table = Table::new(vec!["Module", "Wall (ms)", "Share (%)", "Cycles", "Events"]);
        for &module in &ProfModule::ALL {
            let wall = self.total_wall(module);
            let cycles = self.total_cycles(module);
            let events: u64 = self.frames.iter().map(|f| f.events(module)).sum();
            if wall.is_zero() && cycles == 0 && events == 0 {
                continue;
            }
            table.row(vec![
                module.name().to_owned(),
                format!("{:.3}", wall.as_secs_f64() * 1e3),
                format!("{:.1}", wall.as_nanos() as f64 / total * 100.0),
                cycles.to_string(),
                events.to_string(),
            ]);
        }
        table
    }

    /// Export as a Chrome trace-event document (the JSON object format),
    /// loadable in Perfetto and `about://tracing`.
    ///
    /// Each (frame, module) pair with recorded wall time becomes a complete
    /// `"X"` event on a synthetic thread id derived from the shard track
    /// and the module index; `"M"` metadata events name the threads. The
    /// per-module events within one frame are laid out sequentially from
    /// the frame start — the trace shows attribution, not interleaving.
    pub fn to_chrome_trace(&self) -> Json {
        Json::obj(vec![
            ("traceEvents", Json::Arr(self.chrome_events(1, 0, &[]))),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }

    /// The raw trace events behind [`ProfileReport::to_chrome_trace`],
    /// emitted on process `pid` with every timestamp shifted by
    /// `offset_ns` and `extra_args` appended to each span's args.
    ///
    /// This is the multiplexing primitive: a coordinator merging reports
    /// from several workers assigns each worker its own pid, rebases their
    /// clocks via `offset_ns`, and tags spans with trace context (run/task
    /// ids) through `extra_args`.
    pub fn chrome_events(
        &self,
        pid: u64,
        offset_ns: u64,
        extra_args: &[(&str, Json)],
    ) -> Vec<Json> {
        let mut events: Vec<Json> = Vec::new();
        let mut named: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for frame in &self.frames {
            // One event per module with activity, plus a frame-spanning
            // event on the track's first row.
            events.push(trace_event(
                &frame.name,
                "frame",
                pid,
                frame.track * (NUM_MODULES + 1),
                frame.start_ns.saturating_add(offset_ns),
                frame.end_ns.saturating_sub(frame.start_ns),
                extra_args.to_vec(),
            ));
            let mut cursor = frame.start_ns.saturating_add(offset_ns);
            for &module in &ProfModule::ALL {
                let t = frame.totals[module.index()];
                if t.wall_ns == 0 && t.cycles == 0 && t.events == 0 {
                    continue;
                }
                let tid = frame.track * (NUM_MODULES + 1) + 1 + module.index();
                named.insert((frame.track, module.index()));
                let mut args = vec![
                    ("cycles", Json::Num(t.cycles as f64)),
                    ("events", Json::Num(t.events as f64)),
                    ("frame", Json::str(frame.name.as_str())),
                ];
                args.extend(extra_args.to_vec());
                events.push(trace_event(
                    module.name(),
                    module.category(),
                    pid,
                    tid,
                    cursor,
                    t.wall_ns,
                    args,
                ));
                cursor += t.wall_ns;
            }
        }
        // Thread-name metadata so Perfetto shows readable rows.
        let mut meta: Vec<(usize, String)> = Vec::new();
        for frame in &self.frames {
            meta.push((
                frame.track * (NUM_MODULES + 1),
                format!("shard{} frames", frame.track),
            ));
        }
        for (track, idx) in named {
            meta.push((
                track * (NUM_MODULES + 1) + 1 + idx,
                format!("shard{} {}", track, ProfModule::ALL[idx].name()),
            ));
        }
        meta.sort();
        meta.dedup();
        for (tid, name) in meta {
            events.push(Json::obj(vec![
                ("ph", Json::str("M")),
                ("name", Json::str("thread_name")),
                ("pid", Json::Num(pid as f64)),
                ("tid", Json::Num(tid as f64)),
                ("args", Json::obj(vec![("name", Json::str(name.as_str()))])),
            ]));
        }
        events
    }

    /// Nanoseconds from the profiler epoch to the last frame end — the
    /// span a coordinator needs when rebasing a remote report onto its own
    /// clock.
    pub fn span_ns(&self) -> u64 {
        self.frames.iter().map(|f| f.end_ns).max().unwrap_or(0)
    }

    /// Serialize the full report (all frames) to JSON.
    ///
    /// This is the wire format workers use to ship their profiler track to
    /// the coordinator with `task-result`; unlike
    /// [`ProfileReport::summary_json`] it is lossless.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "frames",
            Json::Arr(self.frames.iter().map(ProfFrame::to_json).collect()),
        )])
    }

    /// Deserialize a report written by [`ProfileReport::to_json`].
    pub fn from_json(v: &Json) -> Result<ProfileReport, String> {
        let frames = v
            .get("frames")
            .and_then(Json::as_arr)
            .ok_or("report missing frames")?;
        Ok(ProfileReport {
            frames: frames
                .iter()
                .map(ProfFrame::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Compact JSON summary (module → wall-ms / cycles / events), used by
    /// campaign JSONL rows and the bench baseline file.
    pub fn summary_json(&self) -> Json {
        let mut modules: Vec<(&str, Json)> = Vec::new();
        for &module in &ProfModule::ALL {
            let wall = self.total_wall(module);
            let cycles = self.total_cycles(module);
            let events: u64 = self.frames.iter().map(|f| f.events(module)).sum();
            if wall.is_zero() && cycles == 0 && events == 0 {
                continue;
            }
            modules.push((
                module.name(),
                Json::obj(vec![
                    ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
                    ("cycles", Json::Num(cycles as f64)),
                    ("events", Json::Num(events as f64)),
                ]),
            ));
        }
        Json::obj(vec![
            ("attributed_wall_ms", {
                Json::Num(self.attributed_wall().as_secs_f64() * 1e3)
            }),
            ("frames", Json::Num(self.frames.len() as f64)),
            ("modules", Json::obj(modules)),
        ])
    }
}

impl Default for ProfileReport {
    fn default() -> Self {
        ProfileReport::new()
    }
}

fn trace_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: usize,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(&str, Json)>,
) -> Json {
    let mut fields = vec![
        ("ph", Json::str("X")),
        ("name", Json::str(name)),
        ("cat", Json::str(cat)),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(tid as f64)),
        // Trace-event timestamps are microseconds; keep sub-µs resolution
        // as a fraction.
        ("ts", Json::Num(start_ns as f64 / 1e3)),
        ("dur", Json::Num(dur_ns as f64 / 1e3)),
    ];
    if !args.is_empty() {
        fields.push(("args", Json::obj(args)));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut prof = Profiler::disabled();
        prof.begin_frame("k0");
        assert!(prof.start().is_none());
        prof.record(ProfModule::Alu, prof.start());
        prof.add_cycles(ProfModule::Alu, 100);
        prof.record_wall_ns(ProfModule::L2, 5_000, 3);
        prof.end_frame();
        let report = prof.into_report();
        assert!(report.frames.is_empty());
        assert_eq!(report.attributed_wall(), Duration::ZERO);
    }

    #[test]
    fn enabled_profiler_attributes_spans() {
        let mut prof = Profiler::enabled();
        prof.begin_frame("k0:demo");
        let t0 = prof.start();
        assert!(t0.is_some());
        prof.record(ProfModule::WarpScheduler, t0);
        prof.add_cycles(ProfModule::WarpScheduler, 42);
        prof.record_wall_ns(ProfModule::Dram, 1_500, 2);
        prof.end_frame();

        let report = prof.into_report();
        assert_eq!(report.frames.len(), 1);
        let frame = &report.frames[0];
        assert_eq!(frame.name, "k0:demo");
        assert_eq!(frame.cycles(ProfModule::WarpScheduler), 42);
        assert_eq!(frame.events(ProfModule::WarpScheduler), 1);
        assert_eq!(frame.wall(ProfModule::Dram), Duration::from_nanos(1_500));
        assert_eq!(frame.events(ProfModule::Dram), 2);
        assert!(report.total_wall(ProfModule::Dram) >= Duration::from_nanos(1_500));
    }

    #[test]
    fn into_report_closes_open_frame() {
        let mut prof = Profiler::enabled();
        prof.begin_frame("k0");
        prof.record_wall_ns(ProfModule::L1, 10, 1);
        let report = prof.into_report();
        assert_eq!(report.frames.len(), 1);
        assert!(report.frames[0].end_ns >= report.frames[0].start_ns);
    }

    #[test]
    fn merge_orders_frames_deterministically() {
        let mk = |name: &str, track: usize, start: u64| ProfFrame {
            name: name.to_owned(),
            track,
            start_ns: start,
            end_ns: start + 10,
            totals: [ModuleTotals::default(); NUM_MODULES],
        };
        let a = ProfileReport {
            frames: vec![mk("k1", 0, 50), mk("k0", 0, 5)],
        };
        let b = ProfileReport {
            frames: vec![mk("k0", 1, 5), mk("k1", 1, 40)],
        };
        let merged = ProfileReport::merge(vec![a, b]);
        let order: Vec<(u64, usize)> = merged
            .frames
            .iter()
            .map(|f| (f.start_ns, f.track))
            .collect();
        assert_eq!(order, vec![(5, 0), (5, 1), (40, 1), (50, 0)]);
    }

    #[test]
    fn attribution_table_lists_active_modules() {
        let mut prof = Profiler::enabled();
        prof.begin_frame("k0");
        prof.record_wall_ns(ProfModule::Alu, 3_000_000, 10);
        prof.record_wall_ns(ProfModule::L2, 1_000_000, 4);
        prof.end_frame();
        let table = prof.into_report().attribution_table();
        let text = table.to_string();
        assert!(text.contains("alu-pipeline"));
        assert!(text.contains("l2-cache"));
        assert!(!text.contains("dram"), "inactive modules omitted:\n{text}");
        assert_eq!(table.num_rows(), 2);
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let mut prof = Profiler::enabled_on_track(Instant::now(), 2);
        prof.begin_frame("k0:nw");
        prof.record_wall_ns(ProfModule::LdSt, 2_000, 5);
        prof.record_wall_ns(ProfModule::Noc, 1_000, 2);
        prof.end_frame();
        let trace = prof.into_report().to_chrome_trace();

        // The document round-trips through the serializer.
        let text = trace.dump();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 frame event + 2 module events + 3 metadata events.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 3);
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 3);
        // Module events carry their wall time in microseconds.
        let ldst = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("ldst-coalescer"))
            .unwrap();
        assert_eq!(ldst.get("dur").unwrap().as_f64(), Some(2.0));
        assert_eq!(ldst.get("cat").and_then(Json::as_str), Some("core"));
    }

    #[test]
    fn report_json_round_trips_losslessly() {
        let mut prof = Profiler::enabled_on_track(Instant::now(), 3);
        prof.begin_frame("k0:bfs");
        prof.record_wall_ns(ProfModule::Alu, 2_500, 7);
        prof.add_cycles(ProfModule::CycleSkip, 900);
        prof.end_frame();
        prof.begin_frame("k1:bfs");
        prof.record_wall_ns(ProfModule::Dram, 800, 1);
        prof.end_frame();
        let report = prof.into_report();
        let back = ProfileReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        // And through the actual wire text.
        let text = report.to_json().dump();
        let reparsed = ProfileReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed, report);
        assert!(report.span_ns() >= report.frames[1].end_ns);
    }

    #[test]
    fn from_name_inverts_name() {
        for &m in &ProfModule::ALL {
            assert_eq!(ProfModule::from_name(m.name()), Some(m));
        }
        assert_eq!(ProfModule::from_name("not-a-module"), None);
    }

    #[test]
    fn chrome_events_rebase_pid_offset_and_args() {
        let frame = ProfFrame::from_parts("k0", 0, 100, 300, &[(ProfModule::Alu, 50, 4, 1)]);
        let report = ProfileReport {
            frames: vec![frame],
        };
        let events = report.chrome_events(7, 1_000_000, &[("task", Json::int(42))]);
        for e in &events {
            assert_eq!(e.get("pid").and_then(Json::as_u64), Some(7));
        }
        let alu = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("alu-pipeline"))
            .unwrap();
        // 100ns frame start + 1ms offset, in microseconds.
        assert_eq!(alu.get("ts").unwrap().as_f64(), Some(1_000_100.0 / 1e3));
        let args = alu.get("args").unwrap();
        assert_eq!(args.get("task").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn summary_json_reports_totals() {
        let mut prof = Profiler::enabled();
        prof.begin_frame("k0");
        prof.add_cycles(ProfModule::MemAnalytical, 1000);
        prof.record_wall_ns(ProfModule::MemAnalytical, 500, 1);
        prof.end_frame();
        let summary = prof.into_report().summary_json();
        let modules = summary.get("modules").unwrap();
        let entry = modules.get("mem-analytical").unwrap();
        assert_eq!(entry.get("cycles").unwrap().as_f64(), Some(1000.0));
        assert_eq!(summary.get("frames").unwrap().as_f64(), Some(1.0));
    }
}
