//! Fixed-width text tables for paper-style reports.

use std::fmt;

/// A simple left-padded text table.
///
/// Used by the experiment harness to print rows matching the paper's tables
/// and figure data.
///
/// # Examples
///
/// ```
/// use swiftsim_metrics::Table;
///
/// let mut t = Table::new(vec!["App", "Error (%)"]);
/// t.row(vec!["bfs".to_owned(), format!("{:.1}", 22.6)]);
/// let text = t.to_string();
/// assert!(text.contains("bfs"));
/// assert!(text.starts_with("App"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                write!(f, "{cell:<w$}", w = *w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The second column starts at the same offset in every row.
        let col = lines[0].find('v').unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 2], "22");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
