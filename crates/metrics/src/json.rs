//! Minimal hand-rolled JSON support.
//!
//! The campaign engine emits results as JSON lines, the `swiftsim --json`
//! flag prints single runs in the same schema, and the on-disk result cache
//! reads rows back. No external serialization crate is available offline,
//! so this module provides the small self-contained value model, writer,
//! and parser they all share.
//!
//! The writer produces deterministic output: object keys are emitted in
//! insertion order and integers are printed without a decimal point, so a
//! value round-trips byte-identically through `dump` → `parse` → `dump`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Integers up to 2^53 are preserved exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact one-line JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // JSON has no NaN/Infinity literals; emitting `{v}` for a
                // non-finite value would produce an unparseable document
                // (and silently corrupt --json output, campaign JSONL rows,
                // and the result cache). Serialize them as `null`.
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 9e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte {:?} at {}", b as char, *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8".to_owned())?,
        );
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            _ => return Err("unterminated string".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_shapes() {
        let v = Json::obj(vec![
            ("name", Json::str("bfs")),
            ("cycles", Json::int(12345)),
            ("ipc", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::Null, Json::int(2)])),
        ]);
        assert_eq!(
            v.dump(),
            r#"{"name":"bfs","cycles":12345,"ipc":1.5,"ok":true,"tags":[null,2]}"#
        );
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let dumped = Json::str(nasty).dump();
        assert_eq!(Json::parse(&dumped).unwrap(), Json::str(nasty));
    }

    #[test]
    fn parse_round_trips_dump() {
        let v = Json::obj(vec![
            ("s", Json::str("x")),
            ("n", Json::Num(-2.25)),
            ("big", Json::int(1 << 50)),
            ("a", Json::Arr(vec![Json::Bool(false), Json::obj(vec![])])),
        ]);
        let text = v.dump();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.dump(), text);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        // Regression: these used to be written as bare `NaN`/`inf`/`-inf`
        // literals, which no JSON parser (including ours) accepts.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Num(v).dump(), "null");
        }
        let doc = Json::obj(vec![
            ("ok", Json::Num(1.5)),
            ("bad", Json::Num(f64::NAN)),
            ("arr", Json::Arr(vec![Json::Num(f64::INFINITY)])),
        ]);
        let text = doc.dump();
        assert_eq!(text, r#"{"ok":1.5,"bad":null,"arr":[null]}"#);
        // The emitted document must round-trip through our own parser.
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("bad"), Some(&Json::Null));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": 1.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(Json::as_u64), None);
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn whitespace_and_errors() {
        assert!(Json::parse(" { \"k\" : [ true , null ] } ").is_ok());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
