//! The metrics collector modules report into.

use std::collections::BTreeMap;
use std::fmt;

/// A single reported metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An event count (cache hits, bank conflicts, issued instructions...).
    Count(u64),
    /// A cycle count (total cycles, stall cycles...).
    Cycles(u64),
    /// A dimensionless ratio in `[0, 1]` (miss rates, occupancy...).
    Ratio(f64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Count(v) => write!(f, "{v}"),
            Value::Cycles(v) => write!(f, "{v} cyc"),
            Value::Ratio(v) => write!(f, "{:.4}", v),
        }
    }
}

/// Hierarchically named metric store.
///
/// Keys are dot-separated paths (`"sm0.l1.miss_rate"`). Modules usually
/// report through a [`ScopedCollector`] so they never need to know where in
/// the hierarchy they live — this is what lets the Metrics Gatherer work
/// unchanged when a module's modeling approach is swapped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsCollector {
    values: BTreeMap<String, Value>,
}

impl MetricsCollector {
    /// Create an empty collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Set (or overwrite) a metric.
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        self.values.insert(key.into(), value);
    }

    /// Add to a `Count`/`Cycles` metric, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if the existing metric is a [`Value::Ratio`]; accumulating
    /// ratios is a reporting bug.
    pub fn add(&mut self, key: &str, amount: u64) {
        match self.values.get_mut(key) {
            Some(Value::Count(v)) | Some(Value::Cycles(v)) => *v += amount,
            Some(Value::Ratio(_)) => panic!("metric {key} is a ratio; cannot accumulate"),
            None => {
                self.values.insert(key.to_owned(), Value::Count(amount));
            }
        }
    }

    /// Look up a raw value.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.values.get(key).copied()
    }

    /// Look up a `Count` value; `None` if absent or of another kind.
    pub fn count(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::Count(v)) => Some(v),
            _ => None,
        }
    }

    /// Look up a `Cycles` value; `None` if absent or of another kind.
    pub fn cycles(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::Cycles(v)) => Some(v),
            _ => None,
        }
    }

    /// Look up a `Ratio` value; `None` if absent or of another kind.
    pub fn ratio(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Ratio(v)) => Some(v),
            _ => None,
        }
    }

    /// Open a reporting scope: keys set through it are prefixed with
    /// `prefix` and a dot.
    pub fn scope<'a>(&'a mut self, prefix: &str) -> ScopedCollector<'a> {
        ScopedCollector {
            collector: self,
            prefix: format!("{prefix}."),
        }
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of stored metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no metrics have been reported.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merge all metrics from `other` under the given prefix. Useful when a
    /// parallel simulation joins per-thread collectors.
    pub fn absorb(&mut self, prefix: &str, other: &MetricsCollector) {
        for (k, v) in other.iter() {
            self.values.insert(format!("{prefix}.{k}"), v);
        }
    }

    /// Sum a `Count`/`Cycles` metric across all scopes whose key ends with
    /// `suffix` (e.g. `".l1.misses"` across every SM).
    pub fn sum_by_suffix(&self, suffix: &str) -> u64 {
        self.values
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| match v {
                Value::Count(n) | Value::Cycles(n) => *n,
                Value::Ratio(_) => 0,
            })
            .sum()
    }

    /// Serialize to a JSON object mapping each key to a `{kind, value}`
    /// pair (the kind distinguishes counts from cycles from ratios, which
    /// plain numbers cannot).
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        Json::Obj(
            self.iter()
                .map(|(k, v)| {
                    let (kind, value) = match v {
                        Value::Count(n) => ("count", Json::int(n)),
                        Value::Cycles(n) => ("cycles", Json::int(n)),
                        Value::Ratio(r) => ("ratio", Json::Num(r)),
                    };
                    (
                        k.to_owned(),
                        Json::obj(vec![("kind", Json::str(kind)), ("value", value)]),
                    )
                })
                .collect(),
        )
    }

    /// Rebuild a collector from [`MetricsCollector::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn from_json(json: &crate::Json) -> Result<MetricsCollector, String> {
        use crate::Json;
        let Json::Obj(pairs) = json else {
            return Err("metrics: expected an object".to_owned());
        };
        let mut out = MetricsCollector::new();
        for (key, entry) in pairs {
            let kind = entry.get("kind").and_then(Json::as_str);
            let value = entry.get("value");
            let parsed = match (kind, value) {
                (Some("count"), Some(v)) => v.as_u64().map(Value::Count),
                (Some("cycles"), Some(v)) => v.as_u64().map(Value::Cycles),
                (Some("ratio"), Some(v)) => v.as_f64().map(Value::Ratio),
                _ => None,
            };
            match parsed {
                Some(v) => out.set(key.clone(), v),
                None => return Err(format!("metrics: malformed entry {key:?}")),
            }
        }
        Ok(out)
    }

    /// Render all metrics as a `key = value` report, one per line.
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.iter() {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for MetricsCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report())
    }
}

/// A prefix-applying view into a [`MetricsCollector`].
#[derive(Debug)]
pub struct ScopedCollector<'a> {
    collector: &'a mut MetricsCollector,
    prefix: String,
}

impl ScopedCollector<'_> {
    /// Set a metric under this scope's prefix.
    pub fn set(&mut self, key: &str, value: Value) {
        self.collector.set(format!("{}{key}", self.prefix), value);
    }

    /// Add to a metric under this scope's prefix.
    ///
    /// # Panics
    ///
    /// Panics if the existing metric is a [`Value::Ratio`].
    pub fn add(&mut self, key: &str, amount: u64) {
        let full = format!("{}{key}", self.prefix);
        self.collector.add(&full, amount);
    }

    /// Open a nested scope.
    pub fn scope(&mut self, prefix: &str) -> ScopedCollector<'_> {
        ScopedCollector {
            collector: self.collector,
            prefix: format!("{}{prefix}.", self.prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut c = MetricsCollector::new();
        c.set("a", Value::Count(1));
        c.set("b", Value::Cycles(2));
        c.set("c", Value::Ratio(0.5));
        assert_eq!(c.count("a"), Some(1));
        assert_eq!(c.cycles("b"), Some(2));
        assert_eq!(c.ratio("c"), Some(0.5));
        // Kind-mismatched lookups return None.
        assert_eq!(c.count("b"), None);
        assert_eq!(c.cycles("c"), None);
        assert_eq!(c.ratio("a"), None);
        assert_eq!(c.count("missing"), None);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn add_accumulates_and_creates() {
        let mut c = MetricsCollector::new();
        c.add("hits", 3);
        c.add("hits", 4);
        assert_eq!(c.count("hits"), Some(7));
        c.set("stall", Value::Cycles(10));
        c.add("stall", 5);
        assert_eq!(c.cycles("stall"), Some(15));
    }

    #[test]
    #[should_panic(expected = "cannot accumulate")]
    fn add_to_ratio_panics() {
        let mut c = MetricsCollector::new();
        c.set("r", Value::Ratio(0.1));
        c.add("r", 1);
    }

    #[test]
    fn scopes_nest() {
        let mut c = MetricsCollector::new();
        {
            let mut sm = c.scope("sm3");
            sm.add("issued", 10);
            let mut l1 = sm.scope("l1");
            l1.set("miss_rate", Value::Ratio(0.25));
        }
        assert_eq!(c.count("sm3.issued"), Some(10));
        assert_eq!(c.ratio("sm3.l1.miss_rate"), Some(0.25));
    }

    #[test]
    fn absorb_prefixes() {
        let mut worker = MetricsCollector::new();
        worker.set("cycles", Value::Cycles(99));
        let mut main = MetricsCollector::new();
        main.absorb("kernel1", &worker);
        assert_eq!(main.cycles("kernel1.cycles"), Some(99));
    }

    #[test]
    fn sum_by_suffix_aggregates() {
        let mut c = MetricsCollector::new();
        c.set("sm0.l1.misses", Value::Count(5));
        c.set("sm1.l1.misses", Value::Count(7));
        c.set("sm1.l1.miss_rate", Value::Ratio(0.3));
        assert_eq!(c.sum_by_suffix(".l1.misses"), 12);
        assert_eq!(c.sum_by_suffix(".l2.misses"), 0);
    }

    #[test]
    fn report_is_sorted_and_complete() {
        let mut c = MetricsCollector::new();
        c.set("z", Value::Count(1));
        c.set("a", Value::Ratio(0.125));
        let report = c.to_report();
        assert_eq!(report, "a = 0.1250\nz = 1\n");
        assert_eq!(c.to_string(), report);
    }

    #[test]
    fn iter_in_key_order() {
        let mut c = MetricsCollector::new();
        c.set("b", Value::Count(2));
        c.set("a", Value::Count(1));
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
