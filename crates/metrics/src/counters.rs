//! Shared service counters: a thread-safe registry of named monotonic
//! counters and settable gauges.
//!
//! The simulator's own per-run statistics live in [`crate::MetricsCollector`]
//! (single-threaded, owned by one simulation). Long-running *services* — the
//! `swiftsim serve` daemon foremost — need the opposite shape: one registry
//! shared by many threads (accept loop, queue, worker slots, cache layers),
//! mutated concurrently, snapshotted on demand by a `stats` endpoint.
//! [`CounterSet`] is that registry: clone it freely (clones share state),
//! `add`/`set` from any thread, `snapshot` or [`CounterSet::to_json`] to
//! observe.

use crate::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A shared, thread-safe set of named `u64` counters and gauges.
///
/// Cloning is cheap and clones observe the same underlying values. Names
/// are free-form dotted paths by convention (`queue.depth`,
/// `cache.result.hits`, `client.3.submitted`); the snapshot is sorted by
/// name so output is deterministic.
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    inner: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl CounterSet {
    /// An empty counter set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Add `amount` to counter `name` (creating it at 0 first).
    pub fn add(&self, name: &str, amount: u64) {
        let mut map = self.lock();
        let slot = map.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(amount);
    }

    /// Increment counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set gauge `name` to `value`, overwriting any previous value.
    pub fn set(&self, name: &str, value: u64) {
        self.lock().insert(name.to_owned(), value);
    }

    /// Current value of `name`, or 0 when it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.lock().get(name).copied().unwrap_or(0)
    }

    /// All `(name, value)` pairs, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.lock().iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// The snapshot as one flat JSON object, keys sorted.
    pub fn to_json(&self) -> Json {
        let map = self.lock();
        Json::Obj(
            map.iter()
                .map(|(k, &v)| (k.clone(), Json::int(v)))
                .collect(),
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, u64>> {
        // A panic while holding the lock leaves plain integers behind —
        // nothing can be torn, so poisoning is ignored.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_get_round_trip() {
        let c = CounterSet::new();
        assert_eq!(c.get("jobs"), 0);
        c.incr("jobs");
        c.add("jobs", 4);
        c.set("queue.depth", 7);
        assert_eq!(c.get("jobs"), 5);
        assert_eq!(c.get("queue.depth"), 7);
        c.set("queue.depth", 2);
        assert_eq!(c.get("queue.depth"), 2);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let c = CounterSet::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr("n");
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 4000);
    }

    #[test]
    fn snapshot_is_sorted_and_json_parses() {
        let c = CounterSet::new();
        c.set("b", 2);
        c.set("a", 1);
        let snap = c.snapshot();
        assert_eq!(snap, vec![("a".to_owned(), 1u64), ("b".to_owned(), 2u64)]);
        let json = c.to_json().dump();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("b").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn saturating_add_never_wraps() {
        let c = CounterSet::new();
        c.set("x", u64::MAX - 1);
        c.add("x", 10);
        assert_eq!(c.get("x"), u64::MAX);
    }
}
