//! Mergeable log-bucketed histograms and atomic gauges.
//!
//! The serve daemon and campaign executor record latency distributions
//! (queue wait, dispatch, decode, simulate, merge) into [`Histogram`]s and
//! instantaneous levels (queue depth, connected workers) into [`Gauge`]s.
//! Both join [`CounterSet`](crate::CounterSet) as the building blocks of the
//! observability [`Registry`](crate::Registry).
//!
//! # Bucketing scheme
//!
//! Buckets are log-linear, HdrHistogram-style with 3 significant bits:
//! values below 8 get an exact bucket each, and every octave `[2^o, 2^(o+1))`
//! above that is split into 8 equal-width sub-buckets. A recorded value is
//! therefore never mis-bucketed by more than 1/8 of its own magnitude, which
//! bounds quantile estimates to at most +12.5% relative error (estimates
//! never under-report; see [`Histogram::quantile`]). The full `u64` range
//! maps to at most 496 buckets, so two histograms recorded anywhere —
//! different workers, different processes — always share the same geometry
//! and [`Histogram::merge`] is exact elementwise addition.

use std::time::Duration;

/// Number of significant bits: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (and the count of exact single-value buckets).
const SUBS: u64 = 1 << SUB_BITS;

/// Bucket index for a value. Total ordering of values is preserved.
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros();
        let sub = (v >> (octave - SUB_BITS)) & (SUBS - 1);
        (SUBS as u32 + (octave - SUB_BITS) * SUBS as u32 + sub as u32) as usize
    }
}

/// Inclusive `(lo, hi)` value range covered by a bucket index.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUBS as usize {
        (idx as u64, idx as u64)
    } else {
        let octave = ((idx - SUBS as usize) / SUBS as usize) as u32 + SUB_BITS;
        let sub = ((idx - SUBS as usize) % SUBS as usize) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        let lo = (1u64 << octave) + sub * width;
        (lo, lo + (width - 1))
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
///
/// Recording is O(1); memory grows lazily with the largest observed value
/// (at most 496 buckets over the full `u64` range). All histograms share one
/// fixed bucket geometry, so [`merge`](Histogram::merge) is exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts, grown to the highest used index.
    counts: Vec<u64>,
    /// Total number of recorded samples.
    count: u64,
    /// Saturating sum of all samples.
    sum: u64,
    /// Smallest recorded sample (meaningless when `count == 0`).
    min: u64,
    /// Largest recorded sample (meaningless when `count == 0`).
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all recorded samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] = self.counts[idx].saturating_add(n);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Record a duration in microseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Merge another histogram into this one.
    ///
    /// Exact: buckets share one global geometry, so merging is elementwise
    /// addition and is associative and commutative up to saturation.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`).
    ///
    /// Returns the upper bound of the bucket holding the nearest-rank
    /// sample, clamped to the observed `[min, max]`. The estimate never
    /// under-reports the true quantile and over-reports by at most 12.5%
    /// (one sub-bucket width of the bucketing scheme).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64)
            .max(1)
            .min(self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                let (_, hi) = bucket_bounds(idx);
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(upper_bound_inclusive, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_bounds(idx).1, n))
    }
}

/// A shared instantaneous level (queue depth, connected workers, ...).
///
/// Clones share the underlying value, like [`CounterSet`](crate::CounterSet).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: std::sync::Arc<std::sync::atomic::AtomicI64>,
}

impl Gauge {
    /// A new gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value
            .fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_cover_the_full_range_without_gaps() {
        // Consecutive buckets tile the u64 range exactly.
        let mut expected_lo = 0u64;
        for idx in 0..bucket_index(u64::MAX) + 1 {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "gap before bucket {idx}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(idx, bucket_index(u64::MAX));
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("buckets never reached u64::MAX");
    }

    #[test]
    fn index_matches_bounds() {
        for &v in &[
            0,
            1,
            7,
            8,
            9,
            15,
            16,
            100,
            1000,
            1 << 20,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {idx} [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn bucket_error_is_bounded() {
        // The bucket upper bound over-reports by at most 1/8.
        for &v in &[8, 100, 12345, 1 << 30, (1 << 62) + 12345] {
            let (_, hi) = bucket_bounds(bucket_index(v));
            assert!((hi as f64) <= v as f64 * 1.125, "value {v} -> bound {hi}");
        }
    }

    #[test]
    fn gauge_clones_share_state() {
        let g = Gauge::new();
        let g2 = g.clone();
        g.set(5);
        g2.add(-2);
        assert_eq!(g.get(), 3);
    }
}
