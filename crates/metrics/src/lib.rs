//! Metrics Gatherer for the Swift-Sim GPU simulation framework (§III-C of
//! the paper).
//!
//! After modeling, architects gather performance metrics from each module:
//! total simulation cycles from the Block Scheduler, core stall cycles, L1
//! miss rates and bank conflicts from the SMs, NoC stall cycles and LLC miss
//! rates from the memory side. Thanks to the framework's modular design,
//! each module keeps plain counters locally (cheap to bump in the hot loop)
//! and *reports* them into a [`MetricsCollector`] when simulation finishes.
//!
//! The crate also provides the statistics helpers used throughout the
//! evaluation ([`geomean`], [`mean`], [`rel_error`]) and a fixed-width text
//! [`Table`] used by the experiment harness to print paper-style rows.
//!
//! On top of the per-run collectors sits the *observability layer* for
//! long-running services (the `swiftsim serve` daemon foremost):
//! [`CounterSet`] (flat monotonic counters), [`Histogram`] (mergeable
//! log-bucketed latency distributions) and [`Gauge`] (instantaneous
//! levels), all unified behind a [`Registry`] with Prometheus-style text
//! exposition; a [`FlightRecorder`] ring buffer of structured events for
//! post-mortems; and a self-profiling [`Profiler`] whose
//! [`ProfileReport`]s serialize losslessly, so worker processes can ship
//! their tracks to a coordinator that merges them into one Perfetto
//! timeline.
//!
//! # Examples
//!
//! ```
//! use swiftsim_metrics::{MetricsCollector, Value};
//!
//! let mut collector = MetricsCollector::new();
//! collector.set("gpu.cycles", Value::Cycles(123_456));
//! {
//!     let mut sm = collector.scope("sm0");
//!     sm.set("l1.miss_rate", Value::Ratio(0.18));
//!     sm.set("l1.bank_conflicts", Value::Count(42));
//! }
//! assert_eq!(collector.cycles("gpu.cycles"), Some(123_456));
//! assert_eq!(collector.count("sm0.l1.bank_conflicts"), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod counters;
mod flight;
mod hist;
pub mod json;
mod profile;
mod registry;
mod stats;
mod table;

pub use collector::{MetricsCollector, ScopedCollector, Value};
pub use counters::CounterSet;
pub use flight::{FlightEvent, FlightRecorder};
pub use hist::{Gauge, Histogram};
pub use json::Json;
pub use profile::{ProfFrame, ProfModule, ProfileReport, Profiler};
pub use registry::{escape_label_value, sanitize_metric_name, Registry};
pub use stats::{geomean, mean, mean_abs, pearson, rel_error, spearman};
pub use table::Table;
