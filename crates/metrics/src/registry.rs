//! The observability registry: counters, gauges, labeled counters, and
//! histograms behind one handle, with Prometheus text exposition and a JSON
//! snapshot.
//!
//! A [`Registry`] is the one object a service threads through its layers.
//! It owns a [`CounterSet`] (flat monotonic counters, kept for the existing
//! `stats` JSON shape), [`Gauge`]s (instantaneous levels), labeled counters
//! (one metric name, per-label-set values — the Prometheus-native shape for
//! e.g. per-client submission counts), and [`Histogram`]s (latency
//! distributions). Clones share state.
//!
//! [`Registry::prometheus_text`] renders everything in the Prometheus text
//! exposition format (`# TYPE` lines, cumulative `_bucket{le="..."}` rows,
//! `_sum`/`_count`); [`Registry::to_json`] renders the same data as a JSON
//! document for the protocol's structured consumers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::hist::{Gauge, Histogram};
use crate::json::Json;
use crate::CounterSet;

/// Sanitize a metric name to the Prometheus charset `[a-zA-Z0-9_:]`.
///
/// Dots (the `CounterSet` path convention) and any other invalid characters
/// become underscores. An empty name becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    if name.is_empty() {
        return "_".to_owned();
    }
    name.chars()
        .enumerate()
        .map(|(i, c)| match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => c,
            '0'..='9' if i > 0 => c,
            _ => '_',
        })
        .collect()
}

/// Escape a label value for the Prometheus text format.
///
/// Backslash, double quote, and newline must be escaped inside the quoted
/// label value; everything else passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[derive(Default)]
struct RegInner {
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
    /// metric name -> label set (sorted key/value pairs) -> value.
    labeled: BTreeMap<String, BTreeMap<Vec<(String, String)>, u64>>,
}

/// A shared registry of counters, gauges, labeled counters, and histograms.
///
/// Cloning is cheap; clones observe and mutate the same underlying state.
#[derive(Clone, Default)]
pub struct Registry {
    counters: CounterSet,
    inner: Arc<Mutex<RegInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The flat monotonic counters.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// The gauge named `name`, creating it at zero. Clones share the value.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Record one sample into the histogram named `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.lock()
            .hists
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    /// Record a duration (in microseconds) into the histogram named `name`.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Merge a whole histogram into the histogram named `name`.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        self.lock()
            .hists
            .entry(name.to_owned())
            .or_default()
            .merge(h);
    }

    /// A snapshot of the histogram named `name`, if it has been touched.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().hists.get(name).cloned()
    }

    /// Add to a labeled counter, e.g.
    /// `add_labeled("client_submissions", &[("client", "alice")], 1)`.
    pub fn add_labeled(&self, name: &str, labels: &[(&str, &str)], amount: u64) {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        key.sort();
        let mut inner = self.lock();
        let slot = inner
            .labeled
            .entry(name.to_owned())
            .or_default()
            .entry(key)
            .or_insert(0);
        *slot = slot.saturating_add(amount);
    }

    /// Increment a labeled counter by one.
    pub fn incr_labeled(&self, name: &str, labels: &[(&str, &str)]) {
        self.add_labeled(name, labels, 1);
    }

    /// Render everything in the Prometheus text exposition format.
    ///
    /// Every metric name is sanitized and prefixed with `{prefix}_` (no
    /// prefix when empty). Histograms render cumulative
    /// `_bucket{le="..."}` rows over their non-empty buckets plus `+Inf`,
    /// then `_sum` and `_count`.
    pub fn prometheus_text(&self, prefix: &str) -> String {
        let full = |name: &str| {
            let base = sanitize_metric_name(name);
            if prefix.is_empty() {
                base
            } else {
                format!("{}_{}", sanitize_metric_name(prefix), base)
            }
        };
        let mut out = String::new();
        for (name, value) in self.counters.snapshot() {
            let name = full(&name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let inner = self.lock();
        for (name, sets) in &inner.labeled {
            let name = full(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            for (labels, value) in sets {
                let rendered: Vec<String> = labels
                    .iter()
                    .map(|(k, v)| {
                        format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v))
                    })
                    .collect();
                let _ = writeln!(out, "{name}{{{}}} {value}", rendered.join(","));
            }
        }
        for (name, gauge) in &inner.gauges {
            let name = full(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", gauge.get());
        }
        for (name, hist) in &inner.hists {
            let name = full(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (le, count) in hist.buckets() {
                cumulative = cumulative.saturating_add(count);
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        out
    }

    /// Render everything as one JSON document:
    /// `{"counters":{...},"labeled":{...},"gauges":{...},"histograms":{...}}`.
    ///
    /// Histograms carry count/sum/min/max/mean plus estimated p50/p90/p99
    /// quantiles (within +12.5% by construction; see
    /// [`Histogram::quantile`]).
    pub fn to_json(&self) -> Json {
        let inner = self.lock();
        let labeled = Json::Obj(
            inner
                .labeled
                .iter()
                .map(|(name, sets)| {
                    let rows = sets
                        .iter()
                        .map(|(labels, value)| {
                            let key = labels
                                .iter()
                                .map(|(k, v)| format!("{k}={v}"))
                                .collect::<Vec<_>>()
                                .join(",");
                            (key, Json::int(*value))
                        })
                        .collect();
                    (name.clone(), Json::Obj(rows))
                })
                .collect(),
        );
        let gauges = Json::Obj(
            inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), Json::Num(g.get() as f64)))
                .collect(),
        );
        let hists = Json::Obj(
            inner
                .hists
                .iter()
                .map(|(name, h)| {
                    let mut pairs = vec![
                        ("count".to_owned(), Json::int(h.count())),
                        ("sum".to_owned(), Json::int(h.sum())),
                    ];
                    if let (Some(min), Some(max)) = (h.min(), h.max()) {
                        pairs.push(("min".to_owned(), Json::int(min)));
                        pairs.push(("max".to_owned(), Json::int(max)));
                    }
                    if let Some(mean) = h.mean() {
                        pairs.push(("mean".to_owned(), Json::Num(mean)));
                    }
                    for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                        if let Some(v) = h.quantile(q) {
                            pairs.push((label.to_owned(), Json::int(v)));
                        }
                    }
                    (name.clone(), Json::Obj(pairs))
                })
                .collect(),
        );
        Json::obj(vec![
            ("counters", self.counters.to_json()),
            ("labeled", labeled),
            ("gauges", gauges),
            ("histograms", hists),
        ])
    }

    fn lock(&self) -> MutexGuard<'_, RegInner> {
        // Same policy as CounterSet: plain data, poisoning ignored.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.hists.len())
            .field("labeled", &inner.labeled.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize_metric_name("queue.depth"), "queue_depth");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name("9starts-bad"), "_starts_bad");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn registry_round_trip() {
        let reg = Registry::new();
        reg.counters().incr("jobs");
        reg.gauge("depth").set(3);
        reg.observe("wait_us", 10);
        reg.observe("wait_us", 100);
        reg.incr_labeled("per_client", &[("client", "a")]);
        let clone = reg.clone();
        assert_eq!(clone.gauge("depth").get(), 3);
        assert_eq!(clone.histogram("wait_us").unwrap().count(), 2);
        let json = clone.to_json();
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("jobs"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let h = json
            .get("histograms")
            .and_then(|h| h.get("wait_us"))
            .unwrap();
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(h.get("min").and_then(Json::as_u64), Some(10));
    }
}
