//! Statistics helpers used by the evaluation harness.
//!
//! The paper reports geometric-mean speedups (82.6x and 211.2x in §IV-B2)
//! and arithmetic-mean prediction errors (§IV-B1); these are the exact
//! reductions implemented here.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Arithmetic mean of absolute values. Returns 0.0 for an empty slice.
pub fn mean_abs(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64
}

/// Geometric mean, computed in log space for numerical robustness.
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive: a geometric mean over speedups is
/// only meaningful for positive ratios, so a non-positive input is a bug in
/// the caller.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Relative prediction error `|predicted - actual| / actual`, as used for
/// the bar charts of Figs. 4 and 6.
///
/// # Panics
///
/// Panics if `actual` is zero.
pub fn rel_error(predicted: f64, actual: f64) -> f64 {
    assert!(actual != 0.0, "relative error against a zero reference");
    ((predicted - actual) / actual).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_abs_basic() {
        assert_eq!(mean_abs(&[-1.0, 2.0, -3.0]), 2.0);
        assert_eq!(mean_abs(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean() {
        let values = [1.0, 2.0, 50.0, 400.0];
        assert!(geomean(&values) < mean(&values));
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn rel_error_basic() {
        assert!((rel_error(120.0, 100.0) - 0.2).abs() < 1e-12);
        assert!((rel_error(80.0, 100.0) - 0.2).abs() < 1e-12);
        assert_eq!(rel_error(100.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn rel_error_rejects_zero_actual() {
        rel_error(1.0, 0.0);
    }
}
