//! Statistics helpers used by the evaluation harness.
//!
//! The paper reports geometric-mean speedups (82.6x and 211.2x in §IV-B2)
//! and arithmetic-mean prediction errors (§IV-B1); these are the exact
//! reductions implemented here.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Arithmetic mean of absolute values. Returns 0.0 for an empty slice.
pub fn mean_abs(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64
}

/// Geometric mean, computed in log space for numerical robustness.
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive: a geometric mean over speedups is
/// only meaningful for positive ratios, so a non-positive input is a bug in
/// the caller.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Relative prediction error `|predicted - actual| / actual`, as used for
/// the bar charts of Figs. 4 and 6.
///
/// # Panics
///
/// Panics if `actual` is zero.
pub fn rel_error(predicted: f64, actual: f64) -> f64 {
    assert!(actual != 0.0, "relative error against a zero reference");
    ((predicted - actual) / actual).abs()
}

/// Pearson product-moment correlation coefficient of paired samples.
///
/// Returns 0.0 when fewer than two pairs are given or when either side has
/// zero variance (correlation is undefined there; 0.0 is the conservative
/// "no linear relationship demonstrated" report the accuracy tables want).
pub fn pearson(pairs: &[(f64, f64)]) -> f64 {
    if pairs.len() < 2 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for &(x, y) in pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation coefficient of paired samples: [`pearson`]
/// over the ranks, with ties assigned their average (fractional) rank.
///
/// Returns 0.0 when fewer than two pairs are given or when either side is
/// entirely tied.
pub fn spearman(pairs: &[(f64, f64)]) -> f64 {
    if pairs.len() < 2 {
        return 0.0;
    }
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rx = ranks(&xs);
    let ry = ranks(&ys);
    let ranked: Vec<(f64, f64)> = rx.into_iter().zip(ry).collect();
    pearson(&ranked)
}

/// Average (fractional) ranks of `values`, 1-based: ties share the mean of
/// the ranks they occupy.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("ranks over non-NaN values")
    });
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_abs_basic() {
        assert_eq!(mean_abs(&[-1.0, 2.0, -3.0]), 2.0);
        assert_eq!(mean_abs(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean() {
        let values = [1.0, 2.0, 50.0, 400.0];
        assert!(geomean(&values) < mean(&values));
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn rel_error_basic() {
        assert!((rel_error(120.0, 100.0) - 0.2).abs() < 1e-12);
        assert!((rel_error(80.0, 100.0) - 0.2).abs() < 1e-12);
        assert_eq!(rel_error(100.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn rel_error_rejects_zero_actual() {
        rel_error(1.0, 0.0);
    }

    #[test]
    fn pearson_hand_computed() {
        // Perfect positive and negative linear relationships.
        assert!((pearson(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[(1.0, 6.0), (2.0, 4.0), (3.0, 2.0)]) + 1.0).abs() < 1e-12);
        // Hand-computed: x=[1,2,3,5], y=[1,3,2,6] → r = 10/(√8.75·√14).
        let r = pearson(&[(1.0, 1.0), (2.0, 3.0), (3.0, 2.0), (5.0, 6.0)]);
        let expected = 10.0 / (8.75f64.sqrt() * 14.0f64.sqrt());
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
        // Degenerate inputs report 0.
        assert_eq!(pearson(&[]), 0.0);
        assert_eq!(pearson(&[(1.0, 2.0)]), 0.0);
        assert_eq!(pearson(&[(1.0, 2.0), (1.0, 3.0)]), 0.0);
    }

    #[test]
    fn spearman_hand_computed() {
        // Monotone but non-linear: Spearman 1, Pearson < 1.
        let pairs = [(1.0, 1.0), (2.0, 8.0), (3.0, 27.0), (4.0, 64.0)];
        assert!((spearman(&pairs) - 1.0).abs() < 1e-12);
        assert!(pearson(&pairs) < 1.0);
        // Hand-computed with a swap: ranks x=[1,2,3,4], y=[2,1,3,4] →
        // ρ = 1 - 6·Σd²/(n(n²-1)) = 1 - 12/60 = 0.8.
        let swapped = [(1.0, 20.0), (2.0, 10.0), (3.0, 30.0), (4.0, 40.0)];
        assert!((spearman(&swapped) - 0.8).abs() < 1e-12);
        // Ties share fractional ranks and don't panic.
        let tied = [(1.0, 5.0), (2.0, 5.0), (3.0, 7.0)];
        let rho = spearman(&tied);
        assert!(rho > 0.0 && rho <= 1.0, "{rho}");
        assert_eq!(spearman(&[(2.0, 1.0), (2.0, 3.0)]), 0.0);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }
}
