//! Bounded ring-buffer flight recorder for post-mortems.
//!
//! Long-running services want a trail of recent structured events (task
//! submitted, dispatched, worker dropped, lease expired, ...) that costs
//! almost nothing while everything is healthy, but can be dumped the moment
//! something goes wrong — a deadlock, a panic, a worker lost beyond its
//! requeue budget. [`FlightRecorder`] keeps the last `capacity` events in a
//! ring buffer; [`FlightRecorder::dump_jsonl`] renders them as JSON lines
//! for post-mortem tooling.
//!
//! A disabled recorder ([`FlightRecorder::disabled`]) reduces recording to a
//! single branch, so instrumented hot paths cost nothing when the feature is
//! off. Use [`FlightRecorder::record_with`] to also skip building the event
//! fields in that case.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reused, survives ring eviction).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Event kind, e.g. `"dispatch"` or `"worker-drop"`.
    pub kind: String,
    /// Structured payload fields.
    pub fields: Vec<(String, Json)>,
}

impl FlightEvent {
    /// Render as a JSON object: `{"seq":..,"t_us":..,"event":..,<fields>}`.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seq".to_owned(), Json::int(self.seq)),
            ("t_us".to_owned(), Json::int(self.at_us)),
            ("event".to_owned(), Json::str(&self.kind)),
        ];
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }
}

struct FlightState {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<FlightEvent>,
}

struct FlightInner {
    epoch: Instant,
    capacity: usize,
    state: Mutex<FlightState>,
}

/// A bounded ring buffer of structured events.
///
/// Clones share the same buffer, like
/// [`CounterSet`](crate::CounterSet).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Option<Arc<FlightInner>>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    ///
    /// `capacity == 0` yields a disabled recorder.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        if capacity == 0 {
            return FlightRecorder::disabled();
        }
        FlightRecorder {
            inner: Some(Arc::new(FlightInner {
                epoch: Instant::now(),
                capacity,
                state: Mutex::new(FlightState {
                    next_seq: 0,
                    dropped: 0,
                    events: VecDeque::with_capacity(capacity.min(1024)),
                }),
            })),
        }
    }

    /// A recorder that drops everything at the cost of one branch.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// True if events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event.
    pub fn record(&self, kind: &str, fields: Vec<(String, Json)>) {
        self.record_with(kind, || fields);
    }

    /// Record one event, building the fields only if enabled.
    pub fn record_with(&self, kind: &str, fields: impl FnOnce() -> Vec<(String, Json)>) {
        let Some(inner) = &self.inner else { return };
        let at_us = inner.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let fields = fields();
        let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == inner.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(FlightEvent {
            seq,
            at_us,
            kind: kind.to_owned(),
            fields,
        });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .events
                .len(),
            None => 0,
        }
    }

    /// True if no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                inner
                    .state
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .dropped
            }
            None => 0,
        }
    }

    /// Snapshot of the held events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .events
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Render the held events as JSON lines, oldest first.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.snapshot() {
            out.push_str(&ev.to_json().dump());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            rec.record("tick", vec![("i".to_owned(), Json::int(i))]);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 2);
        // Oldest first, sequence numbers survive eviction.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").and_then(Json::as_str), Some("tick"));
        assert_eq!(first.get("i").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn disabled_recorder_never_builds_fields() {
        let rec = FlightRecorder::disabled();
        rec.record_with("x", || panic!("fields must not be built when disabled"));
        assert!(!rec.is_enabled());
        assert!(rec.is_empty());
        assert_eq!(rec.dump_jsonl(), "");
        // Capacity 0 is the same as disabled.
        assert!(!FlightRecorder::with_capacity(0).is_enabled());
    }

    #[test]
    fn clones_share_the_buffer() {
        let rec = FlightRecorder::with_capacity(8);
        let other = rec.clone();
        other.record("a", vec![]);
        assert_eq!(rec.len(), 1);
    }
}
