//! GPU power and energy estimation for Swift-Sim.
//!
//! The paper's related work (AccelWattch, reference \[10\]) builds power
//! models on top of a performance simulator's activity counters. This
//! crate does the same for Swift-Sim: it consumes the Metrics Gatherer's
//! counters ([`swiftsim_metrics::MetricsCollector`]) — issued instructions,
//! memory traffic, cache activity, DRAM transactions, active cycles — and
//! multiplies them by per-event energy coefficients plus a static-power
//! term, yielding a per-component energy/power breakdown.
//!
//! The model is an **activity-based analytical model**, in the same spirit
//! as the paper's hybrid philosophy: it attaches to any simulator preset
//! (the counters are model-independent), so architects get power estimates
//! even from the fastest Swift-Sim-Memory runs.
//!
//! Coefficients default to Turing-class values scaled from published
//! AccelWattch/GPUWattch breakdowns; they are fully overridable for
//! calibration against a measured board.
//!
//! # Examples
//!
//! ```
//! use swiftsim_power::{PowerModel, PowerReport};
//! use swiftsim_metrics::{MetricsCollector, Value};
//!
//! let mut metrics = MetricsCollector::new();
//! metrics.set("gpu.cycles", Value::Cycles(1_000_000));
//! metrics.set("gpu.instructions", Value::Count(4_000_000));
//! metrics.set("mem.dram.reads", Value::Count(50_000));
//! metrics.set("mem.dram.writes", Value::Count(10_000));
//!
//! let model = PowerModel::turing_class(&swiftsim_config::presets::rtx2080ti());
//! let report: PowerReport = model.estimate(&metrics);
//! assert!(report.total_energy_j() > 0.0);
//! assert!(report.average_power_w() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use swiftsim_config::GpuConfig;
use swiftsim_metrics::MetricsCollector;

/// Energy coefficients in joules per event, plus static power in watts.
///
/// Defaults come from [`PowerModel::turing_class`]; every field is public
/// so a user can calibrate against hardware measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCoefficients {
    /// Energy per issued warp instruction (execution-unit datapath).
    pub per_instruction: f64,
    /// Energy per L1 access.
    pub per_l1_access: f64,
    /// Energy per L2 access.
    pub per_l2_access: f64,
    /// Energy per DRAM transaction (32 B sector).
    pub per_dram_txn: f64,
    /// Energy per NoC flit.
    pub per_noc_flit: f64,
    /// Energy per shared-memory bank conflict replay.
    pub per_bank_conflict: f64,
    /// Static (leakage + idle clock) power of the whole chip, in watts.
    pub static_power_w: f64,
    /// Per-SM active-cycle energy (clock tree, scheduler, register file).
    pub per_active_cycle: f64,
    /// Core clock in Hz, used to convert cycles to seconds.
    pub clock_hz: f64,
}

/// Per-component energy breakdown of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerReport {
    /// Execution-unit / datapath energy (J).
    pub core_j: f64,
    /// L1 + L2 cache energy (J).
    pub cache_j: f64,
    /// DRAM energy (J).
    pub dram_j: f64,
    /// Interconnect energy (J).
    pub noc_j: f64,
    /// SM pipeline overhead energy (J).
    pub pipeline_j: f64,
    /// Static/leakage energy over the run (J).
    pub static_j: f64,
    /// Modeled execution time (s).
    pub runtime_s: f64,
}

impl PowerReport {
    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.core_j + self.cache_j + self.dram_j + self.noc_j + self.pipeline_j + self.static_j
    }

    /// Average power over the run, in watts.
    pub fn average_power_w(&self) -> f64 {
        if self.runtime_s <= 0.0 {
            return 0.0;
        }
        self.total_energy_j() / self.runtime_s
    }

    /// Dynamic (non-static) share of total energy, in `[0, 1]`.
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.total_energy_j();
        if total <= 0.0 {
            return 0.0;
        }
        (total - self.static_j) / total
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "runtime      {:>12.6} s", self.runtime_s)?;
        writeln!(f, "core         {:>12.6} J", self.core_j)?;
        writeln!(f, "caches       {:>12.6} J", self.cache_j)?;
        writeln!(f, "dram         {:>12.6} J", self.dram_j)?;
        writeln!(f, "noc          {:>12.6} J", self.noc_j)?;
        writeln!(f, "pipeline     {:>12.6} J", self.pipeline_j)?;
        writeln!(f, "static       {:>12.6} J", self.static_j)?;
        writeln!(f, "total        {:>12.6} J", self.total_energy_j())?;
        write!(f, "avg power    {:>12.3} W", self.average_power_w())
    }
}

/// Activity-based power model over Metrics Gatherer counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    coefficients: EnergyCoefficients,
}

impl PowerModel {
    /// Build a model from explicit coefficients.
    pub fn new(coefficients: EnergyCoefficients) -> Self {
        PowerModel { coefficients }
    }

    /// Turing-class defaults scaled to `cfg`'s size: ~250 W TDP-class chip
    /// at 1.5 GHz with ~35% static share, DRAM at ~20 pJ/bit, on-chip
    /// accesses in the single-digit nJ per 32 B sector.
    pub fn turing_class(cfg: &GpuConfig) -> Self {
        let sms = f64::from(cfg.num_sms.max(1));
        PowerModel::new(EnergyCoefficients {
            per_instruction: 0.9e-9,
            per_l1_access: 0.6e-9,
            per_l2_access: 1.9e-9,
            per_dram_txn: 6.0e-9, // 32 B * ~20 pJ/bit
            per_noc_flit: 0.7e-9,
            per_bank_conflict: 0.2e-9,
            // Static power scales with die area ≈ SM count (68 SMs ≈ 85 W).
            static_power_w: 1.25 * sms,
            per_active_cycle: 0.35e-9,
            clock_hz: 1.545e9,
        })
    }

    /// The coefficients in use.
    pub fn coefficients(&self) -> EnergyCoefficients {
        self.coefficients
    }

    /// Estimate the energy breakdown of a finished simulation from its
    /// Metrics Gatherer counters.
    ///
    /// Counters missing from `metrics` (e.g. L1 numbers under the
    /// analytical memory model) contribute zero — the estimate degrades
    /// gracefully with model simplification, it never fails.
    pub fn estimate(&self, metrics: &MetricsCollector) -> PowerReport {
        let c = &self.coefficients;
        let count = |key: &str| metrics.count(key).unwrap_or(0) as f64;
        let cycles = metrics.cycles("gpu.cycles").unwrap_or(0) as f64;
        let runtime_s = cycles / c.clock_hz;

        let instructions = count("gpu.instructions");
        let l1 = count("mem.l1.hits") + count("mem.l1.misses");
        // Misses and write-throughs reach L2.
        let l2 = count("mem.l1.misses") + count("mem.store_only_accesses");
        let dram = count("mem.dram.reads") + count("mem.dram.writes");
        // Without cycle-accurate memory there are no flit counters; derive
        // a request+reply estimate from transactions instead.
        let flits = if l1 > 0.0 {
            count("mem.l1.misses") * 6.0
        } else {
            count("mem.txns") * 6.0
        };
        let conflicts = count("core.shared.bank_conflicts") + count("mem.l1.bank_conflicts");
        let active = metrics.cycles("core.active_cycles").unwrap_or(0) as f64;

        PowerReport {
            core_j: instructions * c.per_instruction,
            cache_j: l1 * c.per_l1_access + l2 * c.per_l2_access,
            dram_j: dram * c.per_dram_txn,
            noc_j: flits * c.per_noc_flit,
            pipeline_j: active * c.per_active_cycle + conflicts * c.per_bank_conflict,
            static_j: c.static_power_w * runtime_s,
            runtime_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;
    use swiftsim_metrics::Value;

    fn sample_metrics() -> MetricsCollector {
        let mut m = MetricsCollector::new();
        m.set("gpu.cycles", Value::Cycles(1_000_000));
        m.set("gpu.instructions", Value::Count(4_000_000));
        m.set("mem.l1.hits", Value::Count(300_000));
        m.set("mem.l1.misses", Value::Count(100_000));
        m.set("mem.dram.reads", Value::Count(90_000));
        m.set("mem.dram.writes", Value::Count(20_000));
        m.set("core.active_cycles", Value::Cycles(800_000));
        m.set("core.shared.bank_conflicts", Value::Count(5_000));
        m
    }

    #[test]
    fn estimate_is_positive_and_consistent() {
        let model = PowerModel::turing_class(&presets::rtx2080ti());
        let r = model.estimate(&sample_metrics());
        assert!(r.total_energy_j() > 0.0);
        assert!(r.average_power_w() > 0.0);
        assert!(r.runtime_s > 0.0);
        let parts = r.core_j + r.cache_j + r.dram_j + r.noc_j + r.pipeline_j + r.static_j;
        assert!((parts - r.total_energy_j()).abs() < 1e-12);
        assert!(r.dynamic_fraction() > 0.0 && r.dynamic_fraction() < 1.0);
    }

    #[test]
    fn more_work_costs_more_energy() {
        let model = PowerModel::turing_class(&presets::rtx2080ti());
        let base = model.estimate(&sample_metrics());
        let mut busier = sample_metrics();
        busier.set("gpu.instructions", Value::Count(8_000_000));
        busier.set("mem.dram.reads", Value::Count(180_000));
        let more = model.estimate(&busier);
        assert!(more.total_energy_j() > base.total_energy_j());
        assert!(more.core_j > base.core_j);
        assert!(more.dram_j > base.dram_j);
    }

    #[test]
    fn empty_metrics_cost_nothing() {
        let model = PowerModel::turing_class(&presets::rtx2080ti());
        let r = model.estimate(&MetricsCollector::new());
        assert_eq!(r.total_energy_j(), 0.0);
        assert_eq!(r.average_power_w(), 0.0);
        assert_eq!(r.dynamic_fraction(), 0.0);
    }

    #[test]
    fn static_power_scales_with_sms() {
        let big = PowerModel::turing_class(&presets::rtx3090());
        let small = PowerModel::turing_class(&presets::rtx3060());
        assert!(big.coefficients().static_power_w > small.coefficients().static_power_w);
    }

    #[test]
    fn display_renders_every_component() {
        let model = PowerModel::turing_class(&presets::rtx2080ti());
        let text = model.estimate(&sample_metrics()).to_string();
        for label in ["core", "caches", "dram", "noc", "static", "avg power"] {
            assert!(text.contains(label), "missing {label} in:\n{text}");
        }
    }

    #[test]
    fn works_end_to_end_with_a_simulation() {
        use swiftsim_core::{run, RunOptions, SimulatorPreset};
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 4;
        cfg.memory.partitions = 4;
        let app = swiftsim_workloads::by_name("hotspot")
            .expect("workload")
            .generate(swiftsim_workloads::Scale::Tiny);
        let model = PowerModel::turing_class(&cfg);

        // Power estimates attach to any preset; the detailed run (more
        // counters) should report at least as much dynamic energy detail.
        let detailed = run(
            &app,
            &cfg,
            &RunOptions::default().with_preset(SimulatorPreset::Detailed),
        )
        .expect("run");
        let fast = run(
            &app,
            &cfg,
            &RunOptions::default().with_preset(SimulatorPreset::SwiftMemory),
        )
        .expect("run");
        let rd = model.estimate(&detailed.metrics);
        let rf = model.estimate(&fast.metrics);
        assert!(rd.total_energy_j() > 0.0);
        assert!(rf.total_energy_j() > 0.0);
        // Same workload, same order of magnitude.
        let ratio = rd.total_energy_j() / rf.total_energy_j();
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }
}
