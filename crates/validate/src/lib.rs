//! The hardware-validation harness (ROADMAP item 4).
//!
//! Swift-Sim's headline claim is accuracy-per-speed: hybrid presets that
//! stay near the detailed model's fidelity while running orders of
//! magnitude faster (§IV of the paper). The speed half has standing
//! benches (`BENCH_core_speed`, `BENCH_parallel_speedup`); this crate is
//! the fidelity half. It runs every fidelity preset across the workload
//! suite, correlates each preset's predictions against the silicon oracle
//! ([`swiftsim_workloads::silicon`], which emits per-stat expectations —
//! cycles, IPC, cache miss rates, DRAM traffic), and reports, per
//! (preset × GPU × stat):
//!
//! * **MAPE** — mean absolute percentage error across applications;
//! * **Pearson** and **Spearman rank** correlation — does the preset
//!   *order* applications the way silicon does, even where its absolute
//!   numbers drift;
//! * a **worst-offender table** — the applications contributing the most
//!   error, which is where model debugging starts.
//!
//! Predictions are consumed exclusively through the typed stat catalog
//! ([`swiftsim_core::StatId`], [`SimulationResult::stats`]) — never by
//! string-matching into the metrics collector — so a renamed stat breaks
//! the build or the load, not the accuracy numbers.
//!
//! The report serializes as `BENCH_accuracy.json`
//! ([`ValidationReport::to_json`], schema-versioned) and is enforced by
//! checked-in thresholds ([`Thresholds`]): the CI `accuracy-gate` job
//! fails when any preset's per-stat MAPE drifts past its stored bound.
//! Thresholds are updated deliberately (regenerate, review the diff,
//! commit), never silently. An Accel-Sim-style stat file can replace the
//! silicon oracle ([`parse_accelsim_stats`]) when real reference data is
//! available.
//!
//! [`SimulationResult::stats`]: swiftsim_core::SimulationResult::stats

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use swiftsim_config::{presets, GpuConfig};
use swiftsim_core::{RunOptions, SimulationResult, SimulatorPreset, StatId};
use swiftsim_metrics::{mean, pearson, spearman, Json, Table};
use swiftsim_workloads::{silicon, Scale, Workload};

/// Version tag embedded in every serialized accuracy report.
///
/// v1: initial schema — per-(preset × GPU) stat tables with MAPE,
/// Pearson, Spearman, and worst offenders.
pub const ACCURACY_SCHEMA_VERSION: u64 = 1;

/// The statistics the harness validates: exactly the per-stat
/// expectations the silicon oracle emits (cycles, IPC, L1/L2 miss rates,
/// DRAM traffic). Every preset produces all of them — the analytical
/// memory model reports estimated hierarchy statistics for this purpose.
pub const VALIDATED_STATS: &[StatId] = &[
    StatId::Cycles,
    StatId::Ipc,
    StatId::L1MissRate,
    StatId::L2MissRate,
    StatId::DramReads,
    StatId::DramWrites,
];

/// Where the "measured hardware" reference values come from.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleSource {
    /// The deterministic silicon oracle: the detailed baseline's per-stat
    /// predictions perturbed by per-(app, GPU, stat) lognormal factors
    /// (see [`swiftsim_workloads::silicon`]).
    Silicon,
    /// Imported measurements, keyed by `(app, stat name)` — e.g. parsed
    /// from an Accel-Sim-style stat file with [`parse_accelsim_stats`].
    Imported(BTreeMap<(String, String), f64>),
}

impl OracleSource {
    fn token(&self) -> &'static str {
        match self {
            OracleSource::Silicon => "silicon",
            OracleSource::Imported(_) => "imported",
        }
    }
}

/// What to validate and how.
#[derive(Debug, Clone)]
pub struct ValidateOptions {
    /// Workload scale (determinism makes accuracy numbers exactly
    /// reproducible per scale; thresholds record the scale they bound).
    pub scale: Scale,
    /// Application subset; `None` runs the full 20-app suite.
    pub apps: Option<Vec<String>>,
    /// GPU configurations to validate on.
    pub gpus: Vec<GpuConfig>,
    /// Fidelity presets to validate.
    pub presets: Vec<SimulatorPreset>,
    /// Worker threads per simulation (1 keeps runs bit-reproducible
    /// across hosts with different core counts).
    pub threads: usize,
    /// Worst offenders kept per stat.
    pub top_offenders: usize,
    /// Multiplier applied to every predicted stat — 1.0 for real
    /// validation. The CI accuracy-gate's self-test sets it ≠ 1.0 to
    /// inject fidelity drift and prove the gate actually fails.
    pub drift: f64,
    /// Reference-value source.
    pub oracle: OracleSource,
}

impl Default for ValidateOptions {
    /// Full suite on the RTX 2080 Ti, all three presets, tiny scale.
    fn default() -> Self {
        ValidateOptions {
            scale: Scale::Tiny,
            apps: None,
            gpus: vec![presets::rtx2080ti()],
            presets: vec![
                SimulatorPreset::Detailed,
                SimulatorPreset::SwiftBasic,
                SimulatorPreset::SwiftMemory,
            ],
            threads: 1,
            top_offenders: 3,
            drift: 1.0,
            oracle: OracleSource::Silicon,
        }
    }
}

/// One application's contribution to a stat's error, for the
/// worst-offender table.
#[derive(Debug, Clone, PartialEq)]
pub struct Offender {
    /// Application name.
    pub app: String,
    /// The preset's (possibly drift-injected) prediction.
    pub predicted: f64,
    /// The oracle's expectation.
    pub expected: f64,
    /// `|predicted - expected| / |expected|`.
    pub rel_error: f64,
}

/// Accuracy of one statistic for one (preset × GPU), across applications.
#[derive(Debug, Clone, PartialEq)]
pub struct StatAccuracy {
    /// The validated statistic.
    pub stat: StatId,
    /// Applications with both a prediction and a nonzero expectation.
    pub n: usize,
    /// Applications skipped (missing prediction or zero expectation).
    pub skipped: usize,
    /// Mean absolute percentage error across the `n` applications.
    pub mape: f64,
    /// Pearson correlation of (predicted, expected) across applications.
    pub pearson: f64,
    /// Spearman rank correlation of (predicted, expected).
    pub spearman: f64,
    /// The worst applications by relative error, descending.
    pub worst: Vec<Offender>,
}

/// Accuracy of one preset on one GPU: a [`StatAccuracy`] per validated
/// stat, in [`VALIDATED_STATS`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetAccuracy {
    /// Preset label ([`SimulatorPreset::label`]).
    pub preset: String,
    /// GPU configuration name.
    pub gpu: String,
    /// Per-stat accuracy tables.
    pub stats: Vec<StatAccuracy>,
}

impl PresetAccuracy {
    /// This preset's MAPE for one stat, if validated.
    pub fn mape_of(&self, stat: StatId) -> Option<f64> {
        self.stats.iter().find(|s| s.stat == stat).map(|s| s.mape)
    }

    /// Mean MAPE across the validated stats.
    pub fn mean_mape(&self) -> f64 {
        mean(&self.stats.iter().map(|s| s.mape).collect::<Vec<_>>())
    }
}

/// The full accuracy report: one [`PresetAccuracy`] per (preset × GPU).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Workload scale token (`tiny`/`small`/`paper`).
    pub scale: String,
    /// Oracle token (`silicon`/`imported`).
    pub oracle: String,
    /// Applications validated, in suite order.
    pub apps: Vec<String>,
    /// Per-(preset × GPU) tables, presets × GPUs in option order.
    pub presets: Vec<PresetAccuracy>,
}

/// Stable token for a workload scale.
pub fn scale_token(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Parse a workload scale token (the inverse of [`scale_token`]).
///
/// # Errors
///
/// Returns a message naming the valid tokens.
pub fn parse_scale(token: &str) -> Result<Scale, String> {
    match token {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "paper" => Ok(Scale::Paper),
        other => Err(format!("unknown scale {other:?} (tiny|small|paper)")),
    }
}

/// Resolve a preset label or CLI token back to a [`SimulatorPreset`].
///
/// # Errors
///
/// Returns a message naming the valid labels.
pub fn preset_by_label(label: &str) -> Result<SimulatorPreset, String> {
    match label {
        "detailed-baseline" | "detailed" => Ok(SimulatorPreset::Detailed),
        "swift-sim-basic" | "swift-basic" => Ok(SimulatorPreset::SwiftBasic),
        "swift-sim-memory" | "swift-memory" => Ok(SimulatorPreset::SwiftMemory),
        other => Err(format!(
            "unknown preset {other:?} (detailed|swift-basic|swift-memory)"
        )),
    }
}

fn resolve_apps(apps: &Option<Vec<String>>) -> Result<Vec<Workload>, String> {
    let suite = swiftsim_workloads::suite();
    match apps {
        None => Ok(suite),
        Some(names) => names
            .iter()
            .map(|name| {
                suite
                    .iter()
                    .find(|w| w.name == name)
                    .cloned()
                    .ok_or_else(|| format!("unknown workload {name:?}"))
            })
            .collect(),
    }
}

/// Compute one stat's accuracy table from `(app, predicted, expected)`
/// triples. Applications with a zero expectation are skipped (MAPE is
/// undefined there), counted in [`StatAccuracy::skipped`].
pub fn stat_accuracy(
    stat: StatId,
    triples: &[(String, Option<f64>, Option<f64>)],
    top_offenders: usize,
) -> StatAccuracy {
    let mut pairs = Vec::new();
    let mut offenders = Vec::new();
    let mut skipped = 0usize;
    for (app, predicted, expected) in triples {
        match (predicted, expected) {
            (Some(p), Some(e)) if *e != 0.0 => {
                let rel = ((p - e) / e).abs();
                pairs.push((*p, *e));
                offenders.push(Offender {
                    app: app.clone(),
                    predicted: *p,
                    expected: *e,
                    rel_error: rel,
                });
            }
            _ => skipped += 1,
        }
    }
    let mape = mean(&offenders.iter().map(|o| o.rel_error).collect::<Vec<_>>());
    let r = pearson(&pairs);
    let rho = spearman(&pairs);
    offenders.sort_by(|a, b| {
        b.rel_error
            .partial_cmp(&a.rel_error)
            .expect("finite errors")
            .then_with(|| a.app.cmp(&b.app))
    });
    offenders.truncate(top_offenders);
    StatAccuracy {
        stat,
        n: pairs.len(),
        skipped,
        mape,
        pearson: r,
        spearman: rho,
        worst: offenders,
    }
}

/// Run the validation harness: simulate every (preset × GPU × app),
/// correlate each preset's typed stats against the oracle, and build the
/// accuracy report.
///
/// Deterministic end to end — traces, simulators, and the silicon oracle
/// are all seeded — so two runs at the same options produce byte-identical
/// reports, which is what makes exact MAPE thresholds enforceable in CI.
///
/// # Errors
///
/// Returns a message for an unknown workload name or a simulation
/// failure.
pub fn run_validation(options: &ValidateOptions) -> Result<ValidationReport, String> {
    let workloads = resolve_apps(&options.apps)?;
    if workloads.is_empty() {
        return Err("no applications selected".to_owned());
    }
    let mut report = ValidationReport {
        scale: scale_token(options.scale).to_owned(),
        oracle: options.oracle.token().to_owned(),
        apps: workloads.iter().map(|w| w.name.to_owned()).collect(),
        presets: Vec::new(),
    };

    for gpu in &options.gpus {
        // The detailed baseline anchors the silicon oracle: its per-stat
        // predictions, perturbed deterministically, are the "measured"
        // values every preset (including the baseline itself) is scored
        // against.
        let mut baseline: BTreeMap<&str, SimulationResult> = BTreeMap::new();
        for w in &workloads {
            baseline.insert(w.name, run_one(w, gpu, SimulatorPreset::Detailed, options)?);
        }
        let expected = |app: &str, stat: StatId| -> Option<f64> {
            match &options.oracle {
                OracleSource::Silicon => baseline[app]
                    .stat(stat)
                    .map(|v| silicon::hardware_stat(app, &gpu.name, stat.name(), v)),
                OracleSource::Imported(map) => {
                    map.get(&(app.to_owned(), stat.name().to_owned())).copied()
                }
            }
        };

        for &preset in &options.presets {
            let mut predictions: BTreeMap<&str, SimulationResult> = BTreeMap::new();
            for w in &workloads {
                let result = if preset == SimulatorPreset::Detailed {
                    baseline[w.name].clone()
                } else {
                    run_one(w, gpu, preset, options)?
                };
                predictions.insert(w.name, result);
            }
            let mut stats = Vec::new();
            for &stat in VALIDATED_STATS {
                let triples: Vec<(String, Option<f64>, Option<f64>)> = workloads
                    .iter()
                    .map(|w| {
                        (
                            w.name.to_owned(),
                            predictions[w.name].stat(stat).map(|v| v * options.drift),
                            expected(w.name, stat),
                        )
                    })
                    .collect();
                stats.push(stat_accuracy(stat, &triples, options.top_offenders));
            }
            report.presets.push(PresetAccuracy {
                preset: preset.label().to_owned(),
                gpu: gpu.name.clone(),
                stats,
            });
        }
    }
    Ok(report)
}

fn run_one(
    w: &Workload,
    gpu: &GpuConfig,
    preset: SimulatorPreset,
    options: &ValidateOptions,
) -> Result<SimulationResult, String> {
    let app = w.generate(options.scale);
    let run_options = RunOptions::default()
        .with_preset(preset)
        .with_threads(options.threads);
    swiftsim_core::run(&app, gpu, &run_options)
        .map_err(|e| format!("{} on {} with {}: {e}", w.name, gpu.name, preset.label()))
}

impl StatAccuracy {
    /// Serialize to the accuracy-report schema.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stat", Json::str(self.stat.name())),
            ("unit", Json::str(self.stat.unit().token())),
            ("n", Json::int(self.n as u64)),
            ("skipped", Json::int(self.skipped as u64)),
            ("mape", Json::Num(self.mape)),
            ("pearson", Json::Num(self.pearson)),
            ("spearman", Json::Num(self.spearman)),
            (
                "worst",
                Json::Arr(
                    self.worst
                        .iter()
                        .map(|o| {
                            Json::obj(vec![
                                ("app", Json::str(&o.app)),
                                ("predicted", Json::Num(o.predicted)),
                                ("expected", Json::Num(o.expected)),
                                ("rel_error", Json::Num(o.rel_error)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<StatAccuracy, String> {
        let name = json
            .get("stat")
            .and_then(Json::as_str)
            .ok_or("stat entry: missing stat")?;
        let stat = StatId::from_name(name).map_err(|e| e.to_string())?;
        let num = |key: &str| {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("stat {name}: missing {key}"))
        };
        let worst = json
            .get("worst")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|o| {
                Ok(Offender {
                    app: o
                        .get("app")
                        .and_then(Json::as_str)
                        .ok_or("offender: missing app")?
                        .to_owned(),
                    predicted: o
                        .get("predicted")
                        .and_then(Json::as_f64)
                        .ok_or("offender: missing predicted")?,
                    expected: o
                        .get("expected")
                        .and_then(Json::as_f64)
                        .ok_or("offender: missing expected")?,
                    rel_error: o
                        .get("rel_error")
                        .and_then(Json::as_f64)
                        .ok_or("offender: missing rel_error")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(StatAccuracy {
            stat,
            n: num("n")? as usize,
            skipped: num("skipped")? as usize,
            mape: num("mape")?,
            pearson: num("pearson")?,
            spearman: num("spearman")?,
            worst,
        })
    }
}

impl ValidationReport {
    /// Serialize to the `BENCH_accuracy.json` schema (deterministic field
    /// order; two identical runs dump byte-identical documents).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::int(ACCURACY_SCHEMA_VERSION)),
            ("scale", Json::str(&self.scale)),
            ("oracle", Json::str(&self.oracle)),
            ("apps", Json::Arr(self.apps.iter().map(Json::str).collect())),
            (
                "presets",
                Json::Arr(
                    self.presets
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("preset", Json::str(&p.preset)),
                                ("gpu", Json::str(&p.gpu)),
                                ("mean_mape", Json::Num(p.mean_mape())),
                                (
                                    "stats",
                                    Json::Arr(p.stats.iter().map(StatAccuracy::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild a report from [`ValidationReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field, a schema
    /// mismatch, or an unknown stat name (the typed catalog's load-time
    /// guard).
    pub fn from_json(json: &Json) -> Result<ValidationReport, String> {
        let schema = json.get("schema").and_then(Json::as_u64).unwrap_or(0);
        if schema != ACCURACY_SCHEMA_VERSION {
            return Err(format!(
                "accuracy schema {schema} (this build reads {ACCURACY_SCHEMA_VERSION})"
            ));
        }
        let str_arr = |key: &str| -> Result<Vec<String>, String> {
            json.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("report: missing {key}"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("report: non-string {key} entry"))
                })
                .collect()
        };
        let presets = json
            .get("presets")
            .and_then(Json::as_arr)
            .ok_or("report: missing presets")?
            .iter()
            .map(|p| {
                Ok(PresetAccuracy {
                    preset: p
                        .get("preset")
                        .and_then(Json::as_str)
                        .ok_or("preset entry: missing preset")?
                        .to_owned(),
                    gpu: p
                        .get("gpu")
                        .and_then(Json::as_str)
                        .ok_or("preset entry: missing gpu")?
                        .to_owned(),
                    stats: p
                        .get("stats")
                        .and_then(Json::as_arr)
                        .ok_or("preset entry: missing stats")?
                        .iter()
                        .map(StatAccuracy::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ValidationReport {
            scale: json
                .get("scale")
                .and_then(Json::as_str)
                .ok_or("report: missing scale")?
                .to_owned(),
            oracle: json
                .get("oracle")
                .and_then(Json::as_str)
                .ok_or("report: missing oracle")?
                .to_owned(),
            apps: str_arr("apps")?,
            presets,
        })
    }

    /// Render the figure-style accuracy tables (one per preset × GPU).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.presets {
            out.push_str(&format!(
                "{} on {} ({} apps, {} scale, {} oracle)\n",
                p.preset,
                p.gpu,
                self.apps.len(),
                self.scale,
                self.oracle
            ));
            let mut t = Table::new(vec![
                "Stat",
                "N",
                "MAPE %",
                "Pearson",
                "Spearman",
                "Worst app",
                "Worst err %",
            ]);
            for s in &p.stats {
                let (worst_app, worst_err) = s
                    .worst
                    .first()
                    .map(|o| (o.app.clone(), format!("{:.1}", 100.0 * o.rel_error)))
                    .unwrap_or_else(|| ("-".to_owned(), "-".to_owned()));
                t.row(vec![
                    s.stat.name().to_owned(),
                    s.n.to_string(),
                    format!("{:.1}", 100.0 * s.mape),
                    format!("{:.3}", s.pearson),
                    format!("{:.3}", s.spearman),
                    worst_app,
                    worst_err,
                ]);
            }
            out.push_str(&t.to_string());
            out.push_str(&format!("mean MAPE: {:.1}%\n\n", 100.0 * p.mean_mape()));
        }
        out
    }
}

/// Checked-in accuracy bounds: the CI gate fails when a fresh report's
/// MAPE exceeds a stored bound, or when a bounded (preset × GPU × stat)
/// entry is missing from the report.
///
/// The file records the exact validation configuration (scale, apps,
/// GPUs, presets) so the gate re-runs the same deterministic suite the
/// bounds were measured on. Regenerate with
/// `swiftsim validate ... --write-thresholds <FILE>`, review the diff,
/// and commit — bounds change deliberately, never silently.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Scale token the bounds were measured at.
    pub scale: String,
    /// Application subset (empty = full suite).
    pub apps: Vec<String>,
    /// GPU names to validate on.
    pub gpus: Vec<String>,
    /// Preset labels to validate.
    pub presets: Vec<String>,
    /// `"preset|gpu|stat"` → maximum allowed MAPE.
    pub max_mape: BTreeMap<String, f64>,
}

fn threshold_key(preset: &str, gpu: &str, stat: StatId) -> String {
    format!("{preset}|{gpu}|{}", stat.name())
}

impl Thresholds {
    /// Derive bounds from a measured report: each (preset × GPU × stat)
    /// MAPE plus `slack` absolute margin. The margin absorbs deliberate
    /// small model adjustments; anything larger is exactly the drift the
    /// gate exists to catch.
    pub fn from_report(report: &ValidationReport, slack: f64) -> Thresholds {
        let mut max_mape = BTreeMap::new();
        let mut gpus = Vec::new();
        let mut presets = Vec::new();
        for p in &report.presets {
            if !gpus.contains(&p.gpu) {
                gpus.push(p.gpu.clone());
            }
            if !presets.contains(&p.preset) {
                presets.push(p.preset.clone());
            }
            for s in &p.stats {
                max_mape.insert(threshold_key(&p.preset, &p.gpu, s.stat), s.mape + slack);
            }
        }
        Thresholds {
            scale: report.scale.clone(),
            apps: report.apps.clone(),
            gpus,
            presets,
            max_mape,
        }
    }

    /// The validation options that reproduce the bounded suite.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown scale, GPU, or preset label.
    pub fn to_options(&self) -> Result<ValidateOptions, String> {
        let gpus = self
            .gpus
            .iter()
            .map(|name| {
                presets::by_name(name).ok_or_else(|| format!("unknown GPU {name:?} in thresholds"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let preset_kinds = self
            .presets
            .iter()
            .map(|label| preset_by_label(label))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ValidateOptions {
            scale: parse_scale(&self.scale)?,
            apps: if self.apps.is_empty() {
                None
            } else {
                Some(self.apps.clone())
            },
            gpus,
            presets: preset_kinds,
            ..ValidateOptions::default()
        })
    }

    /// Check a report against the bounds. Returns one human-readable
    /// violation per exceeded or missing entry; empty means the gate
    /// passes.
    pub fn check(&self, report: &ValidationReport) -> Vec<String> {
        let mut violations = Vec::new();
        for (key, &bound) in &self.max_mape {
            let mut parts = key.splitn(3, '|');
            let (Some(preset), Some(gpu), Some(stat_name)) =
                (parts.next(), parts.next(), parts.next())
            else {
                violations.push(format!("malformed threshold key {key:?}"));
                continue;
            };
            let stat = match StatId::from_name(stat_name) {
                Ok(s) => s,
                Err(e) => {
                    violations.push(format!("threshold {key}: {e}"));
                    continue;
                }
            };
            let entry = report
                .presets
                .iter()
                .find(|p| p.preset == preset && p.gpu == gpu)
                .and_then(|p| p.mape_of(stat));
            match entry {
                None => violations.push(format!(
                    "{preset} on {gpu}: stat {stat_name} missing from the report \
                     (bound {:.1}%)",
                    100.0 * bound
                )),
                Some(mape) if mape > bound => violations.push(format!(
                    "{preset} on {gpu}: {stat_name} MAPE {:.2}% exceeds the stored \
                     bound {:.2}% — fidelity drift; investigate before re-baselining",
                    100.0 * mape,
                    100.0 * bound
                )),
                Some(_) => {}
            }
        }
        violations
    }

    /// Serialize to the checked-in thresholds file format.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::int(ACCURACY_SCHEMA_VERSION)),
            ("scale", Json::str(&self.scale)),
            ("apps", Json::Arr(self.apps.iter().map(Json::str).collect())),
            ("gpus", Json::Arr(self.gpus.iter().map(Json::str).collect())),
            (
                "presets",
                Json::Arr(self.presets.iter().map(Json::str).collect()),
            ),
            (
                "max_mape",
                Json::Obj(
                    self.max_mape
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild thresholds from [`Thresholds::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(json: &Json) -> Result<Thresholds, String> {
        let schema = json.get("schema").and_then(Json::as_u64).unwrap_or(0);
        if schema != ACCURACY_SCHEMA_VERSION {
            return Err(format!(
                "thresholds schema {schema} (this build reads {ACCURACY_SCHEMA_VERSION})"
            ));
        }
        let str_arr = |key: &str| -> Result<Vec<String>, String> {
            json.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("thresholds: missing {key}"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("thresholds: non-string {key} entry"))
                })
                .collect()
        };
        let max_mape = match json.get("max_mape") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("thresholds: non-numeric bound for {k}"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("thresholds: missing max_mape".to_owned()),
        };
        Ok(Thresholds {
            scale: json
                .get("scale")
                .and_then(Json::as_str)
                .ok_or("thresholds: missing scale")?
                .to_owned(),
            apps: str_arr("apps")?,
            gpus: str_arr("gpus")?,
            presets: str_arr("presets")?,
            max_mape,
        })
    }
}

/// Parse an Accel-Sim-style aggregated stat file into the `(app, stat)`
/// map an [`OracleSource::Imported`] oracle consumes.
///
/// The format is the one Accel-Sim's job-launching scripts aggregate to:
/// application sections introduced by a dashed header naming the app,
/// followed by `stat = value` lines:
///
/// ```text
/// ---------- bfs ----------
/// gpu_tot_sim_cycle = 1834500
/// l1_miss_rate = 0.41
/// ```
///
/// Well-known Accel-Sim stat names are aliased to catalog names
/// (`gpu_tot_sim_cycle` → `cycles`, `gpu_tot_ipc` → `ipc`,
/// `gpu_tot_sim_insn` → `instructions`, `l1d_miss_rate` → `l1_miss_rate`,
/// `L2_total_miss_rate` → `l2_miss_rate`, `total_dram_reads` →
/// `dram_reads`, `total_dram_writes` → `dram_writes`); any other name
/// must already be a catalog name — unknown names are load-time errors,
/// same as everywhere else the catalog is consumed.
///
/// # Errors
///
/// Returns a message naming the offending line: a stat outside a section,
/// an unparsable value, or an unknown stat name.
pub fn parse_accelsim_stats(text: &str) -> Result<BTreeMap<(String, String), f64>, String> {
    let mut out = BTreeMap::new();
    let mut app: Option<String> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('-') {
            let name = line.trim_matches('-').trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: section header names no app"));
            }
            app = Some(name.to_owned());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `stat = value`, got {line:?}"
            ));
        };
        let app = app
            .as_ref()
            .ok_or_else(|| format!("line {lineno}: stat before any app section header"))?;
        let key = match key.trim() {
            "gpu_tot_sim_cycle" => "cycles",
            "gpu_tot_ipc" => "ipc",
            "gpu_tot_sim_insn" => "instructions",
            "l1d_miss_rate" => "l1_miss_rate",
            "L2_total_miss_rate" => "l2_miss_rate",
            "total_dram_reads" => "dram_reads",
            "total_dram_writes" => "dram_writes",
            other => other,
        };
        let stat = StatId::from_name(key).map_err(|e| format!("line {lineno}: {e}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {lineno}: unparsable value {:?}", value.trim()))?;
        out.insert((app.clone(), stat.name().to_owned()), value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_accuracy_on_a_hand_computed_fixture() {
        // apps a,b,c: predicted [110, 180, 330], expected [100, 200, 300]
        // → rel errors [0.10, 0.10, 0.10], MAPE = 0.10.
        let triples = vec![
            ("a".to_owned(), Some(110.0), Some(100.0)),
            ("b".to_owned(), Some(180.0), Some(200.0)),
            ("c".to_owned(), Some(330.0), Some(300.0)),
        ];
        let acc = stat_accuracy(StatId::Cycles, &triples, 2);
        assert_eq!(acc.n, 3);
        assert_eq!(acc.skipped, 0);
        assert!((acc.mape - 0.10).abs() < 1e-12, "{}", acc.mape);
        // Hand-computed Pearson over (110,100),(180,200),(330,300):
        // sxy = 22000, sxx = 75800/3, syy = 20000 → r = 22000/√(sxx·syy).
        let r = 22000.0 / ((75800.0f64 / 3.0) * 20000.0).sqrt();
        assert!((acc.pearson - r).abs() < 1e-12, "{}", acc.pearson);
        // Both sides rank identically → Spearman exactly 1.
        assert!((acc.spearman - 1.0).abs() < 1e-12);
        // Offenders are tied at 0.10; ties break by app name.
        assert_eq!(acc.worst.len(), 2);
        assert_eq!(acc.worst[0].app, "a");

        // Zero expectations and missing predictions are skipped, not
        // folded in as zeros.
        let sparse = vec![
            ("a".to_owned(), Some(110.0), Some(100.0)),
            ("b".to_owned(), None, Some(200.0)),
            ("c".to_owned(), Some(3.0), Some(0.0)),
            ("d".to_owned(), Some(150.0), Some(100.0)),
        ];
        let acc = stat_accuracy(StatId::DramReads, &sparse, 3);
        assert_eq!(acc.n, 2);
        assert_eq!(acc.skipped, 2);
        assert!((acc.mape - 0.30).abs() < 1e-12);
        assert_eq!(acc.worst[0].app, "d");
        assert!((acc.worst[0].rel_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thresholds_round_trip_and_gate_math() {
        let report = ValidationReport {
            scale: "tiny".to_owned(),
            oracle: "silicon".to_owned(),
            apps: vec!["bfs".to_owned()],
            presets: vec![PresetAccuracy {
                preset: "detailed-baseline".to_owned(),
                gpu: "RTX 2080 Ti".to_owned(),
                stats: vec![stat_accuracy(
                    StatId::Cycles,
                    &[("bfs".to_owned(), Some(110.0), Some(100.0))],
                    1,
                )],
            }],
        };
        let thresholds = Thresholds::from_report(&report, 0.05);
        assert!(thresholds.check(&report).is_empty());

        // Round-trips through JSON.
        let json = thresholds.to_json().dump();
        let back = Thresholds::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, thresholds);

        // Drift past the bound is a violation.
        let mut drifted = report.clone();
        drifted.presets[0].stats[0].mape = 0.20;
        let violations = thresholds.check(&drifted);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("cycles"), "{}", violations[0]);
        assert!(violations[0].contains("drift"), "{}", violations[0]);

        // A bounded stat missing from the report is also a violation.
        let mut missing = report.clone();
        missing.presets[0].stats.clear();
        assert_eq!(thresholds.check(&missing).len(), 1);
    }

    #[test]
    fn report_json_round_trips_and_rejects_unknown_stats() {
        let report = ValidationReport {
            scale: "tiny".to_owned(),
            oracle: "silicon".to_owned(),
            apps: vec!["bfs".to_owned(), "nw".to_owned()],
            presets: vec![PresetAccuracy {
                preset: "swift-sim-memory".to_owned(),
                gpu: "RTX 3090".to_owned(),
                stats: vec![stat_accuracy(
                    StatId::L1MissRate,
                    &[
                        ("bfs".to_owned(), Some(0.4), Some(0.5)),
                        ("nw".to_owned(), Some(0.2), Some(0.25)),
                    ],
                    3,
                )],
            }],
        };
        let dumped = report.to_json().dump();
        let back = ValidationReport::from_json(&Json::parse(&dumped).unwrap()).unwrap();
        assert_eq!(back, report);

        let bad = dumped.replace("l1_miss_rate", "l1_missrate");
        let err = ValidationReport::from_json(&Json::parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("l1_missrate"), "{err}");
    }

    #[test]
    fn accelsim_stat_files_parse_with_aliases() {
        let text = "\
# reference measurements
---------- bfs ----------
gpu_tot_sim_cycle = 1834500
gpu_tot_ipc = 0.82
l1d_miss_rate = 0.41
---------- nw ----------
cycles = 220000
total_dram_reads = 91000
";
        let map = parse_accelsim_stats(text).unwrap();
        assert_eq!(
            map.get(&("bfs".to_owned(), "cycles".to_owned())),
            Some(&1_834_500.0)
        );
        assert_eq!(map.get(&("bfs".to_owned(), "ipc".to_owned())), Some(&0.82));
        assert_eq!(
            map.get(&("nw".to_owned(), "dram_reads".to_owned())),
            Some(&91_000.0)
        );

        let err = parse_accelsim_stats("cycles = 5\n").unwrap_err();
        assert!(err.contains("before any app section"), "{err}");
        let err = parse_accelsim_stats("--- bfs ---\nnot_a_stat = 5\n").unwrap_err();
        assert!(err.contains("not_a_stat"), "{err}");
    }

    #[test]
    fn preset_and_scale_tokens_resolve() {
        assert_eq!(parse_scale("tiny").unwrap(), Scale::Tiny);
        assert!(parse_scale("huge").is_err());
        assert_eq!(
            preset_by_label("swift-memory").unwrap(),
            SimulatorPreset::SwiftMemory
        );
        assert_eq!(
            preset_by_label("detailed-baseline").unwrap(),
            SimulatorPreset::Detailed
        );
        assert!(preset_by_label("quantum").is_err());
    }
}
