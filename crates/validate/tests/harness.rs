//! End-to-end tests for the validation harness: real simulations, the
//! silicon oracle, and the CI gate math.

use swiftsim_core::StatId;
use swiftsim_validate::{
    run_validation, OracleSource, Thresholds, ValidateOptions, ValidationReport,
};

fn small_options() -> ValidateOptions {
    ValidateOptions {
        apps: Some(vec![
            "bfs".to_owned(),
            "hotspot".to_owned(),
            "nw".to_owned(),
            "srad".to_owned(),
            "gemm".to_owned(),
        ]),
        ..ValidateOptions::default()
    }
}

#[test]
fn validation_is_deterministic_and_serializable() {
    let options = small_options();
    let a = run_validation(&options).expect("validation runs");
    let b = run_validation(&options).expect("validation runs");
    // Bit-identical reports back-to-back: the property that makes exact
    // MAPE thresholds enforceable in CI.
    assert_eq!(a.to_json().dump(), b.to_json().dump());

    // And the report round-trips through its serialized form.
    let parsed = swiftsim_metrics::Json::parse(&a.to_json().dump()).unwrap();
    let back = ValidationReport::from_json(&parsed).expect("report parses");
    assert_eq!(back, a);

    // Every (preset × GPU) validates every stat for at least one app, and
    // the rendered table mentions each preset.
    assert_eq!(a.presets.len(), 3);
    let rendered = a.render();
    for p in &a.presets {
        assert!(
            p.stats.iter().any(|s| s.n > 0),
            "{} validated nothing",
            p.preset
        );
        assert!(rendered.contains(&p.preset));
    }
}

#[test]
fn detailed_preset_lands_in_the_paper_error_band() {
    // The silicon oracle perturbs the detailed baseline by lognormal
    // factors with σ chosen so the detailed model's cycle MAPE sits near
    // the ~20% silicon-vs-simulator gap the paper reports. Run the full
    // 20-app suite so the sample mean is tight enough to band-check.
    let report = run_validation(&ValidateOptions::default()).expect("validation runs");
    let detailed = report
        .presets
        .iter()
        .find(|p| p.preset == "detailed-baseline")
        .expect("detailed preset present");
    let cycles = detailed
        .stats
        .iter()
        .find(|s| s.stat == StatId::Cycles)
        .expect("cycles validated");
    assert_eq!(cycles.n, 20, "all suite apps validated");
    assert!(
        (0.10..=0.32).contains(&cycles.mape),
        "detailed cycle MAPE {:.3} outside the expected ~20% band",
        cycles.mape
    );
    // Rank correlation should survive the perturbation: silicon orders
    // applications roughly the way the detailed model does. (A ~20%
    // lognormal jitter does reorder near-tied apps, so the bound is
    // looser than the MAPE band.)
    assert!(cycles.spearman > 0.7, "spearman {}", cycles.spearman);
    assert!(cycles.pearson > 0.9, "pearson {}", cycles.pearson);
}

#[test]
fn injected_drift_trips_the_accuracy_gate() {
    let options = small_options();
    let clean = run_validation(&options).expect("validation runs");
    let thresholds = Thresholds::from_report(&clean, 0.02);
    assert!(
        thresholds.check(&clean).is_empty(),
        "a report must pass the thresholds derived from itself"
    );

    // Inject 40% fidelity drift — the gate must fail loudly.
    let drifted = run_validation(&ValidateOptions {
        drift: 1.4,
        ..options
    })
    .expect("validation runs");
    let violations = thresholds.check(&drifted);
    assert!(
        !violations.is_empty(),
        "40% injected drift must trip the accuracy gate"
    );
    assert!(
        violations.iter().any(|v| v.contains("cycles")),
        "cycle MAPE must be among the violations: {violations:?}"
    );

    // The recorded configuration reproduces the bounded suite.
    let opts = thresholds.to_options().expect("thresholds resolve");
    assert_eq!(opts.apps.as_deref().map(<[String]>::len), Some(5));
    assert_eq!(opts.presets.len(), 3);
}

#[test]
fn imported_oracle_replaces_silicon() {
    // Score the basic preset against hand-imported "measurements" equal to
    // exactly twice its own predictions → MAPE is 0.5 for every stat.
    let options = ValidateOptions {
        apps: Some(vec!["bfs".to_owned()]),
        presets: vec![swiftsim_core::SimulatorPreset::SwiftBasic],
        ..ValidateOptions::default()
    };
    let silicon = run_validation(&options).expect("validation runs");
    let basic = &silicon.presets[0];

    let mut measured = std::collections::BTreeMap::new();
    // Rebuild the predictions the harness saw by re-running once more.
    let preds = run_validation(&ValidateOptions {
        oracle: OracleSource::Imported(
            swiftsim_validate::VALIDATED_STATS
                .iter()
                .map(|s| (("bfs".to_owned(), s.name().to_owned()), 1.0))
                .collect(),
        ),
        ..options.clone()
    })
    .expect("validation runs");
    for s in &preds.presets[0].stats {
        // expected == 1.0 here, so predicted == mape-derived value + 1.
        for o in &s.worst {
            measured.insert(
                ("bfs".to_owned(), s.stat.name().to_owned()),
                2.0 * o.predicted,
            );
        }
    }
    let doubled = run_validation(&ValidateOptions {
        oracle: OracleSource::Imported(measured),
        ..options
    })
    .expect("validation runs");
    for s in &doubled.presets[0].stats {
        if s.n > 0 {
            assert!(
                (s.mape - 0.5).abs() < 1e-9,
                "{}: mape {} (expected 0.5)",
                s.stat.name(),
                s.mape
            );
        }
    }
    assert_eq!(doubled.oracle, "imported");
    assert_eq!(basic.gpu, doubled.presets[0].gpu);
}
