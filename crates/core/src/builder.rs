//! Simulator construction and the single-threaded engine loop.
//!
//! "Based on the modular modeling approach, we can adopt various modeling
//! methods for a single module" (§III-B3). A simulator instance is a
//! hardware description ([`GpuConfig`]) plus one [`RunOptions`] value
//! carrying everything else — fidelity (including sampling), thread count,
//! profiling, checkpointing. [`SimulatorPreset`] is a pure alias table over
//! the fidelity plan (see [`FidelityConfig::for_preset`]).
//!
//! The one-call entry point is the free [`run`]:
//!
//! ```
//! use swiftsim_config::presets;
//! use swiftsim_core::{RunOptions, SimulatorPreset};
//! use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};
//!
//! let mut k = KernelTrace::new("k", (1, 1, 1), (32, 1, 1));
//! let w = k.push_block().push_warp();
//! w.push(InstBuilder::new(Opcode::Iadd).pc(0).dst(1).src(1));
//! w.push(InstBuilder::new(Opcode::Exit).pc(16));
//! let app = ApplicationTrace::new("demo", vec![k]);
//!
//! let options = RunOptions::default().with_preset(SimulatorPreset::SwiftMemory);
//! let result = swiftsim_core::run(&app, &presets::rtx2080ti(), &options).unwrap();
//! assert_eq!(result.kernels.len(), 1);
//! ```

use crate::checkpoint::Snapshot;
use crate::error::SimError;
use crate::fidelity::{FidelityConfig, MemoryModelKind, SamplingPolicy, SyncQuantum};
use crate::gpu::{merge_into, run_kernel_shard};
use crate::input::TraceInput;
use crate::mem_system::{
    build_analytical_memory_for, build_analytical_memory_reuse_for, CycleAccurateMemory,
    MemorySystem,
};
use crate::options::{CheckpointOptions, RunOptions};
use crate::parallel::run_parallel;
use crate::prefetch::Prefetcher;
use crate::result::{Confidence, KernelResult, SimulationResult};
use crate::sampling::{RepMeasure, Sampler};
use crate::sm::SmStats;
use crate::Cycle;
use swiftsim_config::GpuConfig;
use swiftsim_metrics::{MetricsCollector, ProfileReport, Profiler, Value};
use swiftsim_trace::TraceSource;

/// The three simulator configurations of the paper's evaluation.
///
/// A preset is nothing but a name for a [`FidelityConfig`]:
/// `options.with_preset(p)` is exactly
/// `options.with_fidelity(FidelityConfig::for_preset(p))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulatorPreset {
    /// Everything cycle-accurate, single-threaded: the stand-in for
    /// Accel-Sim.
    Detailed,
    /// Swift-Sim-Basic: analytical ALU pipeline, simplified instruction and
    /// constant caches, cycle-accurate memory.
    SwiftBasic,
    /// Swift-Sim-Memory: Swift-Sim-Basic plus the analytical memory model.
    SwiftMemory,
}

impl SimulatorPreset {
    /// Short name used in reports ("accelsim" denotes the detailed
    /// baseline's role in the evaluation).
    pub fn label(self) -> &'static str {
        match self {
            SimulatorPreset::Detailed => "detailed-baseline",
            SimulatorPreset::SwiftBasic => "swift-sim-basic",
            SimulatorPreset::SwiftMemory => "swift-sim-memory",
        }
    }
}

/// Run one application through a simulator built from `cfg` + `options` —
/// the one-call entry point wrapping [`GpuSimulator::try_new`] and
/// [`GpuSimulator::run`].
///
/// # Errors
///
/// Returns [`SimError`] for an invalid configuration, a trace failure, a
/// checkpoint problem, or a modeling deadlock.
pub fn run<'a>(
    input: impl Into<TraceInput<'a>>,
    cfg: &GpuConfig,
    options: &RunOptions,
) -> Result<SimulationResult, SimError> {
    GpuSimulator::try_new(cfg.clone(), options)?.run(input)
}

/// A fully configured Swift-Sim simulator instance.
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    pub(crate) cfg: GpuConfig,
    pub(crate) fidelity: FidelityConfig,
    pub(crate) threads: usize,
    pub(crate) profile: bool,
    pub(crate) checkpoint: CheckpointOptions,
}

impl GpuSimulator {
    /// Build a simulator from a hardware description and run options,
    /// validating both up front: the hardware must pass
    /// [`GpuConfig::validate`], an explicit thread count must not exceed
    /// the SM count (each worker shards at least one SM; `0` resolves to
    /// `min(`[`crate::max_threads`]`(), num_sms)`), and sampling or
    /// checkpointing must not be combined with the legacy
    /// [`SyncQuantum::Unsynchronized`] engine — its privately sharded
    /// memory has no single state to snapshot or replay against.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violation.
    pub fn try_new(cfg: GpuConfig, options: &RunOptions) -> Result<GpuSimulator, SimError> {
        cfg.validate().map_err(|e| SimError::InvalidConfig {
            message: e.to_string(),
        })?;
        let num_sms = cfg.num_sms.max(1) as usize;
        let threads = if options.threads == 0 {
            crate::parallel::max_threads().min(num_sms)
        } else {
            if options.threads > num_sms {
                return Err(SimError::InvalidConfig {
                    message: format!(
                        "thread count {} exceeds the {} SMs of {:?}; each worker thread \
                         shards at least one SM (use threads 0 for auto)",
                        options.threads, num_sms, cfg.name
                    ),
                });
            }
            options.threads
        };
        if threads > 1 && options.fidelity.sync_quantum == SyncQuantum::Unsynchronized {
            if options.fidelity.sampling != SamplingPolicy::Off {
                return Err(SimError::InvalidConfig {
                    message: "kernel-launch sampling requires a synchronized engine; \
                              the unsynchronized quantum shards memory privately \
                              (use -sim_sync_quantum per_cycle or a cycle count)"
                        .to_owned(),
                });
            }
            if options.checkpoint.is_active() {
                return Err(SimError::InvalidConfig {
                    message: "checkpointing requires a synchronized engine; the \
                              unsynchronized quantum has no single memory state to \
                              snapshot (use -sim_sync_quantum per_cycle or a cycle count)"
                        .to_owned(),
                });
            }
        }
        Ok(GpuSimulator {
            cfg,
            fidelity: options.fidelity,
            threads,
            profile: options.profile,
            checkpoint: options.checkpoint.clone(),
        })
    }

    /// The simulated hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The resolved per-module fidelity.
    pub fn fidelity(&self) -> FidelityConfig {
        self.fidelity
    }

    /// Human-readable model description —
    /// [`FidelityConfig::describe`] verbatim, e.g.
    /// `"analytical_alu+cycle_accurate_memory+simplified_frontend+event_driven"`.
    pub fn description(&self) -> String {
        self.fidelity.describe()
    }

    /// Simulate an application and return the predicted cycles and metrics.
    ///
    /// Accepts anything convertible to [`TraceInput`] — `&ApplicationTrace`
    /// for in-memory traces, or any `&`[`TraceSource`] (including trait
    /// objects) for streaming ones. Kernels are decoded lazily: while
    /// kernel *k* simulates, kernel *k+1* is decoded on a background thread
    /// (for file-backed sources), so peak memory stays at ~2 decoded
    /// kernels regardless of application size. Decode time is attributed to
    /// the profiler's `trace-decode` module on its own track.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the trace is inconsistent with its launch
    /// geometry, a block exceeds SM resources, a kernel fails to decode, a
    /// checkpoint cannot be written/read/applied, or the model deadlocks.
    pub fn run<'a>(&self, input: impl Into<TraceInput<'a>>) -> Result<SimulationResult, SimError> {
        let source = input.into().source();
        let started = std::time::Instant::now();
        let mut result = if self.threads > 1 {
            match self.fidelity.sync_quantum {
                // Legacy decoupled shards: private memory slices, no
                // cross-shard traffic (the paper's original model).
                SyncQuantum::Unsynchronized => run_parallel(self, source)?,
                // Two-phase engine: one shared memory system, shards
                // synchronize every quantum (per-cycle = bit-identical).
                _ => crate::twophase::run_two_phase(self, source)?,
            }
        } else {
            self.run_single(source)?
        };
        result.wall_time = started.elapsed();
        Ok(result)
    }

    fn run_single(&self, source: &dyn TraceSource) -> Result<SimulationResult, SimError> {
        let total = source.num_kernels();
        let mut driver = RunDriver::new(self, source)?;
        let mut mem: Box<dyn MemorySystem> = match self.fidelity.memory {
            MemoryModelKind::CycleAccurate => Box::new(CycleAccurateMemory::new(&self.cfg)),
            MemoryModelKind::Analytical => {
                build_analytical_memory_for(&self.cfg, source, &driver.prepass_indices(total))?
            }
            MemoryModelKind::AnalyticalReuse => build_analytical_memory_reuse_for(
                &self.cfg,
                source,
                &driver.prepass_indices(total),
            )?,
        };
        driver.restore_memory(mem.as_mut())?;

        let num_sms = self.cfg.num_sms as usize;
        // The simulation profiler renders on track 0, the decode profiler
        // on track 1; a shared epoch lines their frames up on one
        // timeline, making decode/simulate overlap visible.
        let epoch = std::time::Instant::now();
        let mut prof = if self.profile {
            Profiler::enabled_on_track(epoch, 0)
        } else {
            Profiler::disabled()
        };
        let decode_prof = if self.profile {
            Profiler::enabled_on_track(epoch, 1)
        } else {
            Profiler::disabled()
        };
        mem.set_profiling(self.profile);

        std::thread::scope(|scope| {
            let mut pf = Prefetcher::with_schedule(
                scope,
                source,
                decode_prof,
                source.prefers_prefetch(),
                driver.decode_schedule(total),
            );
            let (mut start, mut total_stats, mut kernels) = driver.initial();

            for idx in driver.start_kernel()..total {
                if driver.is_detailed(idx) {
                    let kernel = pf.get(idx)?;
                    let kernel = &*kernel;
                    prof.begin_frame(&format!("k{idx}:{}", kernel.name));
                    let blocks: Vec<usize> = (0..kernel.blocks().len()).collect();
                    let sm_ids: Vec<usize> = (0..num_sms).collect();
                    let outcome = run_kernel_shard(
                        &self.cfg,
                        kernel,
                        &blocks,
                        &sm_ids,
                        mem.as_mut(),
                        self.fidelity,
                        0,
                        start,
                        &mut prof,
                    )?;
                    // Flush the memory system's per-level attribution into
                    // the still-open frame before closing it.
                    mem.report_profile(&mut prof);
                    prof.end_frame();
                    let measure = RepMeasure {
                        cycles: outcome.end_cycle - start,
                        stats: outcome.stats,
                        instructions: outcome.stats.issued,
                        blocks: outcome.blocks,
                    };
                    driver.record(idx, measure);
                    kernels.push(KernelResult {
                        name: kernel.name.clone(),
                        cycles: measure.cycles,
                        instructions: measure.instructions,
                        blocks: measure.blocks,
                    });
                    merge_into(&mut total_stats, outcome.stats);
                    start = outcome.end_cycle;
                } else {
                    // Replayed launch: synthesized from its cluster's
                    // representatives, trace body never decoded.
                    let replayed = driver.replay(idx);
                    kernels.push(KernelResult {
                        name: source.kernel_meta(idx).name,
                        cycles: replayed.cycles,
                        instructions: replayed.instructions,
                        blocks: replayed.blocks,
                    });
                    total_stats.add(&replayed.stats);
                    start += replayed.cycles;
                }
                if !driver.boundary(idx, start, &total_stats, &kernels, mem.as_ref())? {
                    break;
                }
            }

            let mut metrics = MetricsCollector::new();
            report_common(&mut metrics, start, &total_stats, self);
            mem.report(&mut metrics);

            let profile = self
                .profile
                .then(|| ProfileReport::merge(vec![prof.into_report(), pf.finish().into_report()]));
            let confidence = driver.confidence(&kernels);

            Ok(SimulationResult {
                app: source.name().to_owned(),
                simulator: self.description(),
                fidelity: self.fidelity,
                cycles: start,
                kernels,
                metrics,
                wall_time: std::time::Duration::ZERO, // filled by run()
                confidence,
                profile,
            })
        })
    }
}

/// Report engine-level counters shared by single and parallel runs.
pub(crate) fn report_common(
    metrics: &mut MetricsCollector,
    cycles: Cycle,
    stats: &SmStats,
    sim: &GpuSimulator,
) {
    metrics.set("gpu.cycles", Value::Cycles(cycles));
    metrics.set("gpu.instructions", Value::Count(stats.issued));
    let mut core = metrics.scope("core");
    core.set("mem_insts", Value::Count(stats.mem_insts));
    core.set("stall.scoreboard", Value::Cycles(stats.stall_scoreboard));
    core.set("stall.unit_busy", Value::Cycles(stats.stall_unit_busy));
    core.set("stall.barrier", Value::Cycles(stats.stall_barrier));
    core.set("stall.empty", Value::Cycles(stats.stall_empty));
    core.set(
        "shared.bank_conflicts",
        Value::Count(stats.shared_bank_conflicts),
    );
    core.set("icache.misses", Value::Count(stats.icache_misses));
    core.set("ccache.misses", Value::Count(stats.ccache_misses));
    core.set("active_cycles", Value::Cycles(stats.active_cycles));
    metrics.set("sim.threads", Value::Count(sim.threads as u64));
}

/// Snapshot identity of one run, captured once when checkpointing is
/// active.
struct RunIdentity {
    app: String,
    content_hash: u64,
    config_hash: u64,
    fidelity: String,
    threads: usize,
}

/// Per-run coordinator for sampling and checkpointing, shared by the
/// single-threaded and two-phase engines. Owns the sampling plan and
/// measurements, the resume snapshot, and the boundary-snapshot writer;
/// the engine owns the clock, stats, and kernel results and threads them
/// through.
pub(crate) struct RunDriver {
    sampler: Option<Sampler>,
    write_to: Option<std::path::PathBuf>,
    halt_after: Option<usize>,
    identity: Option<RunIdentity>,
    resume: Option<Snapshot>,
    start_kernel: usize,
}

impl RunDriver {
    /// Plan sampling, capture snapshot identity, and load + validate the
    /// resume snapshot when one was requested.
    pub(crate) fn new(sim: &GpuSimulator, source: &dyn TraceSource) -> Result<RunDriver, SimError> {
        let mut sampler = Sampler::plan(source, sim.fidelity.sampling);
        let identity = if sim.checkpoint.is_active() {
            Some(RunIdentity {
                app: source.name().to_owned(),
                content_hash: source.content_hash()?,
                config_hash: sim.cfg.stable_hash(),
                fidelity: sim.fidelity.describe(),
                threads: sim.threads,
            })
        } else {
            None
        };
        let mut start_kernel = 0;
        let mut resume = None;
        if let Some(path) = &sim.checkpoint.resume_from {
            let snap = Snapshot::read_from(path)?;
            let id = identity.as_ref().expect("resume_from implies is_active");
            snap.validate_identity(
                &id.app,
                id.content_hash,
                id.config_hash,
                &id.fidelity,
                id.threads,
            )?;
            if snap.next_kernel() > source.num_kernels() {
                return Err(SimError::Checkpoint {
                    message: format!(
                        "snapshot completed {} kernels but the trace has only {}",
                        snap.next_kernel(),
                        source.num_kernels()
                    ),
                });
            }
            // The fidelity match above guarantees the snapshot and this run
            // agree on the sampling policy, so the sampling section is
            // present exactly when a sampler was planned.
            if let (Some(s), Some(words)) = (&mut sampler, &snap.sampling) {
                s.restore_words(words)
                    .map_err(|e| SimError::Checkpoint { message: e })?;
            }
            start_kernel = snap.next_kernel();
            resume = Some(snap);
        }
        Ok(RunDriver {
            sampler,
            write_to: sim.checkpoint.write_to.clone(),
            halt_after: sim.checkpoint.halt_after,
            identity,
            resume,
            start_kernel,
        })
    }

    /// Index of the first kernel this run simulates (0 unless resuming).
    pub(crate) fn start_kernel(&self) -> usize {
        self.start_kernel
    }

    /// Initial accumulators: clock, statistics, and per-kernel results —
    /// the snapshot's on resume, zeros otherwise.
    pub(crate) fn initial(&self) -> (Cycle, SmStats, Vec<KernelResult>) {
        match &self.resume {
            Some(s) => (s.cycle, s.total_stats, s.kernels.clone()),
            None => (0, SmStats::default(), Vec::new()),
        }
    }

    /// Apply the resume snapshot's memory section to a freshly built model.
    pub(crate) fn restore_memory(&self, mem: &mut dyn MemorySystem) -> Result<(), SimError> {
        if let Some(s) = &self.resume {
            mem.load_state(&s.memory)
                .map_err(|e| SimError::Checkpoint {
                    message: format!("restoring memory state: {e}"),
                })?;
        }
        Ok(())
    }

    /// Whether launch `kernel` is simulated in detail (always, when
    /// sampling is off).
    pub(crate) fn is_detailed(&self, kernel: usize) -> bool {
        self.sampler.as_ref().is_none_or(|s| s.is_detailed(kernel))
    }

    /// Launch indices the engine will decode this run: detailed ones not
    /// already covered by the resume snapshot.
    pub(crate) fn decode_schedule(&self, total: usize) -> Vec<usize> {
        (self.start_kernel..total)
            .filter(|&k| self.is_detailed(k))
            .collect()
    }

    /// Launch indices the analytical memory pre-pass must decode. This is
    /// every detailed launch — including ones a resume snapshot already
    /// covers — so the per-PC hit rates match the original run exactly
    /// (bit-identity of the resumed run depends on it).
    pub(crate) fn prepass_indices(&self, total: usize) -> Vec<usize> {
        match &self.sampler {
            Some(s) => s.detailed_indices(),
            None => (0..total).collect(),
        }
    }

    /// Record a detailed launch's measurements for later replays.
    pub(crate) fn record(&mut self, kernel: usize, measure: RepMeasure) {
        if let Some(s) = &mut self.sampler {
            s.record(kernel, measure);
        }
    }

    /// Synthesize a replayed launch's outcome.
    pub(crate) fn replay(&self, kernel: usize) -> RepMeasure {
        self.sampler
            .as_ref()
            .expect("replay is only reached when a sampling plan exists")
            .replay(kernel)
    }

    /// Kernel-boundary hook: write a snapshot when requested, and report
    /// whether the run should continue (`false` once `halt_after` kernels
    /// have completed — the partial result covers the simulated prefix).
    pub(crate) fn boundary(
        &mut self,
        kernel: usize,
        cycle: Cycle,
        total_stats: &SmStats,
        kernels: &[KernelResult],
        mem: &dyn MemorySystem,
    ) -> Result<bool, SimError> {
        let completed = kernel + 1;
        if let Some(path) = &self.write_to {
            let id = self.identity.as_ref().expect("write_to implies is_active");
            let memory = mem.save_state().map_err(|e| SimError::Checkpoint {
                message: format!("snapshot at kernel {kernel} boundary: {e}"),
            })?;
            let snap = Snapshot {
                app: id.app.clone(),
                content_hash: id.content_hash,
                config_hash: id.config_hash,
                fidelity: id.fidelity.clone(),
                threads: id.threads,
                next_kernel: completed,
                cycle,
                total_stats: *total_stats,
                kernels: kernels.to_vec(),
                sampling: self.sampler.as_ref().map(Sampler::save_words),
                memory,
            };
            snap.write_to(path)?;
        }
        Ok(self.halt_after != Some(completed))
    }

    /// The run's confidence block (`None` when sampling is off).
    pub(crate) fn confidence(&self, kernels: &[KernelResult]) -> Option<Confidence> {
        self.sampler.as_ref().map(|s| s.confidence(kernels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::{AluModelKind, FrontendModelKind, SkipPolicy};
    use swiftsim_config::presets;

    #[test]
    fn presets_select_models() {
        let detailed = GpuSimulator::try_new(
            presets::rtx2080ti(),
            &RunOptions::default().with_preset(SimulatorPreset::Detailed),
        )
        .unwrap();
        assert_eq!(
            detailed.description(),
            "cycle_accurate_alu+cycle_accurate_memory+detailed_frontend+event_driven"
        );

        let basic = GpuSimulator::try_new(
            presets::rtx2080ti(),
            &RunOptions::default().with_preset(SimulatorPreset::SwiftBasic),
        )
        .unwrap();
        assert_eq!(
            basic.description(),
            "analytical_alu+cycle_accurate_memory+simplified_frontend+event_driven"
        );

        let memory = GpuSimulator::try_new(
            presets::rtx2080ti(),
            &RunOptions::default().with_preset(SimulatorPreset::SwiftMemory),
        )
        .unwrap();
        assert_eq!(
            memory.description(),
            "analytical_alu+analytical_memory+simplified_frontend+event_driven"
        );
    }

    #[test]
    fn fidelity_lands_in_simulator_verbatim() {
        let fidelity = FidelityConfig {
            alu: AluModelKind::CycleAccurate,
            memory: MemoryModelKind::AnalyticalReuse,
            frontend: FrontendModelKind::Simplified,
            skip_policy: SkipPolicy::Dense,
            sync_quantum: SyncQuantum::Cycles(32),
            sampling: SamplingPolicy::Off,
        };
        let sim = GpuSimulator::try_new(
            presets::rtx2080ti(),
            &RunOptions::default().with_fidelity(fidelity),
        )
        .unwrap();
        assert_eq!(sim.fidelity(), fidelity);
        assert_eq!(sim.description(), fidelity.describe());
    }

    #[test]
    fn run_options_build_identically_across_entry_points() {
        let options = RunOptions::default()
            .with_preset(SimulatorPreset::SwiftMemory)
            .with_threads(2)
            .with_profile(true);
        let sim = GpuSimulator::try_new(presets::rtx2080ti(), &options).unwrap();
        assert_eq!(
            sim.fidelity(),
            FidelityConfig::for_preset(SimulatorPreset::SwiftMemory)
        );
        assert_eq!(sim.threads, 2);
        assert!(sim.profile);
    }

    #[test]
    fn threads_zero_resolves_to_auto() {
        let sim =
            GpuSimulator::try_new(presets::rtx2080ti(), &RunOptions::default().with_threads(0))
                .expect("auto threads is always valid");
        assert!(sim.threads >= 1);
        assert!(sim.threads <= presets::rtx2080ti().num_sms as usize);
        assert!(sim.threads <= crate::parallel::max_threads());
    }

    #[test]
    fn try_new_rejects_more_threads_than_sms() {
        let cfg = presets::rtx2080ti();
        let too_many = cfg.num_sms as usize + 1;
        let err = GpuSimulator::try_new(cfg.clone(), &RunOptions::default().with_threads(too_many))
            .expect_err("one shard needs at least one SM");
        assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
        // The exact SM count is accepted.
        let sim = GpuSimulator::try_new(
            cfg.clone(),
            &RunOptions::default().with_threads(cfg.num_sms as usize),
        )
        .expect("threads == SMs is valid");
        assert_eq!(sim.threads, cfg.num_sms as usize);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 0;
        let err = GpuSimulator::try_new(cfg, &RunOptions::default()).expect_err("0 SMs is invalid");
        assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn try_new_rejects_sampling_and_checkpointing_on_unsync_engine() {
        let cfg = presets::rtx2080ti();
        let unsync = FidelityConfig {
            sync_quantum: SyncQuantum::Unsynchronized,
            ..FidelityConfig::default()
        };
        let err = GpuSimulator::try_new(
            cfg.clone(),
            &RunOptions::default()
                .with_fidelity(unsync)
                .with_threads(2)
                .with_sampling(SamplingPolicy::KernelCluster { reps: 2 }),
        )
        .expect_err("sampling on unsync engine");
        assert!(err.to_string().contains("sampling"), "{err}");
        let err = GpuSimulator::try_new(
            cfg.clone(),
            &RunOptions::default()
                .with_fidelity(unsync)
                .with_threads(2)
                .with_checkpoint_out("/tmp/snap"),
        )
        .expect_err("checkpointing on unsync engine");
        assert!(err.to_string().contains("checkpoint"), "{err}");
        // Single-threaded runs never dispatch to the unsync engine, so the
        // combination is fine there.
        GpuSimulator::try_new(
            cfg,
            &RunOptions::default()
                .with_fidelity(unsync)
                .with_sampling(SamplingPolicy::KernelCluster { reps: 2 }),
        )
        .expect("threads=1 ignores the quantum");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimulatorPreset::Detailed.label(), "detailed-baseline");
        assert_eq!(SimulatorPreset::SwiftBasic.label(), "swift-sim-basic");
        assert_eq!(SimulatorPreset::SwiftMemory.label(), "swift-sim-memory");
    }
}
