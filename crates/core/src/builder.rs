//! Simulator construction: per-module model selection and the paper's
//! three presets.
//!
//! "Based on the modular modeling approach, we can adopt various modeling
//! methods for a single module" (§III-B3). The builder consumes one
//! data-driven [`FidelityConfig`]; [`SimulatorPreset`] is a pure alias
//! table over it (see [`FidelityConfig::for_preset`]).

use crate::error::SimError;
use crate::fidelity::{
    AluModelKind, FidelityConfig, FrontendModelKind, MemoryModelKind, SkipPolicy,
};
use crate::gpu::{merge_into, run_kernel_shard};
use crate::input::TraceInput;
use crate::mem_system::{
    build_analytical_memory, build_analytical_memory_reuse, CycleAccurateMemory, MemorySystem,
};
use crate::parallel::run_parallel;
use crate::prefetch::Prefetcher;
use crate::result::{KernelResult, SimulationResult};
use crate::Cycle;
use swiftsim_config::GpuConfig;
use swiftsim_metrics::{MetricsCollector, ProfileReport, Profiler, Value};
use swiftsim_trace::TraceSource;

/// The three simulator configurations of the paper's evaluation.
///
/// A preset is nothing but a name for a [`FidelityConfig`]:
/// `builder.preset(p)` is exactly
/// `builder.fidelity(FidelityConfig::for_preset(p))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulatorPreset {
    /// Everything cycle-accurate, single-threaded: the stand-in for
    /// Accel-Sim.
    Detailed,
    /// Swift-Sim-Basic: analytical ALU pipeline, simplified instruction and
    /// constant caches, cycle-accurate memory.
    SwiftBasic,
    /// Swift-Sim-Memory: Swift-Sim-Basic plus the analytical memory model.
    SwiftMemory,
}

impl SimulatorPreset {
    /// Short name used in reports ("accelsim" denotes the detailed
    /// baseline's role in the evaluation).
    pub fn label(self) -> &'static str {
        match self {
            SimulatorPreset::Detailed => "detailed-baseline",
            SimulatorPreset::SwiftBasic => "swift-sim-basic",
            SimulatorPreset::SwiftMemory => "swift-sim-memory",
        }
    }
}

/// Builder for [`GpuSimulator`].
///
/// # Examples
///
/// ```
/// use swiftsim_config::presets;
/// use swiftsim_core::{AluModelKind, MemoryModelKind, SimulatorBuilder};
///
/// // A custom hybrid: cycle-accurate ALU exploration over analytical
/// // memory.
/// let sim = SimulatorBuilder::new(presets::rtx3060())
///     .alu_model(AluModelKind::CycleAccurate)
///     .memory_model(MemoryModelKind::Analytical)
///     .build();
/// assert!(sim.description().contains("analytical_memory"));
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorBuilder {
    cfg: GpuConfig,
    fidelity: FidelityConfig,
    threads: usize,
    profile: bool,
}

impl SimulatorBuilder {
    /// Start from a hardware configuration with the default fidelity:
    /// the detailed-baseline module choices under the event-driven engine
    /// ([`FidelityConfig::default`]).
    pub fn new(cfg: GpuConfig) -> Self {
        SimulatorBuilder {
            cfg,
            fidelity: FidelityConfig::default(),
            threads: 1,
            profile: false,
        }
    }

    /// Apply one of the paper's presets — an alias for
    /// `fidelity(FidelityConfig::for_preset(preset))`.
    pub fn preset(self, preset: SimulatorPreset) -> Self {
        self.fidelity(FidelityConfig::for_preset(preset))
    }

    /// Set the full per-module fidelity in one call.
    pub fn fidelity(mut self, fidelity: FidelityConfig) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Choose the ALU-pipeline model.
    pub fn alu_model(mut self, kind: AluModelKind) -> Self {
        self.fidelity.alu = kind;
        self
    }

    /// Choose the memory-access model.
    pub fn memory_model(mut self, kind: MemoryModelKind) -> Self {
        self.fidelity.memory = kind;
        self
    }

    /// Model (or simplify away) the instruction/constant caches.
    pub fn frontend_detailed(mut self, detailed: bool) -> Self {
        self.fidelity.frontend = if detailed {
            FrontendModelKind::Detailed
        } else {
            FrontendModelKind::Simplified
        };
        self
    }

    /// Choose how the engine advances simulated time. Both policies are
    /// bit-identical in results; [`SkipPolicy::EventDriven`] (the default)
    /// fast-forwards over quiescent spans, [`SkipPolicy::Dense`] ticks
    /// every cycle (useful as the differential-testing reference).
    pub fn skip_policy(mut self, policy: SkipPolicy) -> Self {
        self.fidelity.skip_policy = policy;
        self
    }

    /// Allow (or forbid) skipping cycles in which nothing can happen.
    #[deprecated(
        since = "0.6.0",
        note = "use `skip_policy(SkipPolicy::EventDriven)` / `skip_policy(SkipPolicy::Dense)`; \
                the event-driven engine is now bit-identical to dense ticking"
    )]
    pub fn skip_idle(self, skip: bool) -> Self {
        self.skip_policy(if skip {
            SkipPolicy::EventDriven
        } else {
            SkipPolicy::Dense
        })
    }

    /// Simulate with `threads` worker threads (SM-sharded). `0` means
    /// *auto*: use [`crate::max_threads`] (the host's available
    /// parallelism), capped at the SM count. An explicit count larger than
    /// the configuration's SM count is rejected by
    /// [`try_build`](SimulatorBuilder::try_build) — a shard needs at least
    /// one SM.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Record per-module wall-time and cycle attribution while simulating
    /// (the self-profiling layer). Off by default; when off the
    /// instrumentation reduces to untaken branches on the hot path.
    pub fn profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Finish building, validating the configuration up front: the
    /// hardware description must pass [`GpuConfig::validate`], and an
    /// explicit thread count must not exceed the SM count (each worker
    /// shards at least one SM). A thread count of `0` resolves here to
    /// `min(`[`crate::max_threads`]`(), num_sms)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violation.
    pub fn try_build(self) -> Result<GpuSimulator, SimError> {
        self.cfg.validate().map_err(|e| SimError::InvalidConfig {
            message: e.to_string(),
        })?;
        let num_sms = self.cfg.num_sms.max(1) as usize;
        let threads = if self.threads == 0 {
            crate::parallel::max_threads().min(num_sms)
        } else {
            if self.threads > num_sms {
                return Err(SimError::InvalidConfig {
                    message: format!(
                        "thread count {} exceeds the {} SMs of {:?}; each worker thread \
                         shards at least one SM (use threads(0) for auto)",
                        self.threads, num_sms, self.cfg.name
                    ),
                });
            }
            self.threads
        };
        Ok(GpuSimulator {
            cfg: self.cfg,
            fidelity: self.fidelity,
            threads,
            profile: self.profile,
        })
    }

    /// Finish building, panicking on an invalid configuration.
    ///
    /// Thin wrapper over [`try_build`](SimulatorBuilder::try_build), kept
    /// for the common case of hard-coded known-good configurations.
    /// Callers handling user-supplied configurations (CLI flags, campaign
    /// specs) should migrate to `try_build` and surface the
    /// [`SimError::InvalidConfig`] instead.
    ///
    /// # Panics
    ///
    /// Panics when `try_build` would return an error.
    pub fn build(self) -> GpuSimulator {
        match self.try_build() {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }
}

/// A fully configured Swift-Sim simulator instance.
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    pub(crate) cfg: GpuConfig,
    pub(crate) fidelity: FidelityConfig,
    pub(crate) threads: usize,
    pub(crate) profile: bool,
}

impl GpuSimulator {
    /// The simulated hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The resolved per-module fidelity.
    pub fn fidelity(&self) -> FidelityConfig {
        self.fidelity
    }

    /// Human-readable model description —
    /// [`FidelityConfig::describe`] verbatim, e.g.
    /// `"analytical_alu+cycle_accurate_memory+simplified_frontend+event_driven"`.
    pub fn description(&self) -> String {
        self.fidelity.describe()
    }

    /// Simulate an application and return the predicted cycles and metrics.
    ///
    /// Accepts anything convertible to [`TraceInput`] — `&ApplicationTrace`
    /// for in-memory traces, or any `&`[`TraceSource`] (including trait
    /// objects) for streaming ones. Kernels are decoded lazily: while
    /// kernel *k* simulates, kernel *k+1* is decoded on a background thread
    /// (for file-backed sources), so peak memory stays at ~2 decoded
    /// kernels regardless of application size. Decode time is attributed to
    /// the profiler's `trace-decode` module on its own track.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the trace is inconsistent with its launch
    /// geometry, a block exceeds SM resources, a kernel fails to decode, or
    /// the model deadlocks.
    pub fn run<'a>(&self, input: impl Into<TraceInput<'a>>) -> Result<SimulationResult, SimError> {
        let source = input.into().source();
        let started = std::time::Instant::now();
        let mut result = if self.threads > 1 {
            match self.fidelity.sync_quantum {
                // Legacy decoupled shards: private memory slices, no
                // cross-shard traffic (the paper's original model).
                crate::fidelity::SyncQuantum::Unsynchronized => run_parallel(self, source)?,
                // Two-phase engine: one shared memory system, shards
                // synchronize every quantum (per-cycle = bit-identical).
                _ => crate::twophase::run_two_phase(self, source)?,
            }
        } else {
            self.run_single(source)?
        };
        result.wall_time = started.elapsed();
        Ok(result)
    }

    /// Simulate the application provided by `source`.
    #[deprecated(
        since = "0.6.0",
        note = "use `run(&source)` — `run` now accepts any trace source"
    )]
    pub fn run_source(&self, source: &dyn TraceSource) -> Result<SimulationResult, SimError> {
        self.run(source)
    }

    fn run_single(&self, source: &dyn TraceSource) -> Result<SimulationResult, SimError> {
        let mut mem: Box<dyn MemorySystem> = match self.fidelity.memory {
            MemoryModelKind::CycleAccurate => Box::new(CycleAccurateMemory::new(&self.cfg)),
            MemoryModelKind::Analytical => build_analytical_memory(&self.cfg, source)?,
            MemoryModelKind::AnalyticalReuse => build_analytical_memory_reuse(&self.cfg, source)?,
        };

        let num_sms = self.cfg.num_sms as usize;
        // The simulation profiler renders on track 0, the decode profiler
        // on track 1; a shared epoch lines their frames up on one
        // timeline, making decode/simulate overlap visible.
        let epoch = std::time::Instant::now();
        let mut prof = if self.profile {
            Profiler::enabled_on_track(epoch, 0)
        } else {
            Profiler::disabled()
        };
        let decode_prof = if self.profile {
            Profiler::enabled_on_track(epoch, 1)
        } else {
            Profiler::disabled()
        };
        mem.set_profiling(self.profile);

        std::thread::scope(|scope| {
            let mut pf = Prefetcher::new(scope, source, decode_prof, source.prefers_prefetch());
            let mut start: Cycle = 0;
            let mut kernels = Vec::new();
            let mut total_stats = crate::sm::SmStats::default();

            for idx in 0..source.num_kernels() {
                let kernel = pf.get(idx)?;
                let kernel = &*kernel;
                prof.begin_frame(&format!("k{idx}:{}", kernel.name));
                let blocks: Vec<usize> = (0..kernel.blocks().len()).collect();
                let sm_ids: Vec<usize> = (0..num_sms).collect();
                let outcome = run_kernel_shard(
                    &self.cfg,
                    kernel,
                    &blocks,
                    &sm_ids,
                    mem.as_mut(),
                    self.fidelity,
                    0,
                    start,
                    &mut prof,
                )?;
                // Flush the memory system's per-level attribution into the
                // still-open frame before closing it.
                mem.report_profile(&mut prof);
                prof.end_frame();
                kernels.push(KernelResult {
                    name: kernel.name.clone(),
                    cycles: outcome.end_cycle - start,
                    instructions: outcome.stats.issued,
                    blocks: outcome.blocks,
                });
                merge_into(&mut total_stats, outcome.stats);
                start = outcome.end_cycle;
            }

            let mut metrics = MetricsCollector::new();
            report_common(&mut metrics, start, &total_stats, self);
            mem.report(&mut metrics);

            let profile = self
                .profile
                .then(|| ProfileReport::merge(vec![prof.into_report(), pf.finish().into_report()]));

            Ok(SimulationResult {
                app: source.name().to_owned(),
                simulator: self.description(),
                fidelity: self.fidelity,
                cycles: start,
                kernels,
                metrics,
                wall_time: std::time::Duration::ZERO, // filled by run()
                profile,
            })
        })
    }
}

/// Report engine-level counters shared by single and parallel runs.
pub(crate) fn report_common(
    metrics: &mut MetricsCollector,
    cycles: Cycle,
    stats: &crate::sm::SmStats,
    sim: &GpuSimulator,
) {
    metrics.set("gpu.cycles", Value::Cycles(cycles));
    metrics.set("gpu.instructions", Value::Count(stats.issued));
    let mut core = metrics.scope("core");
    core.set("mem_insts", Value::Count(stats.mem_insts));
    core.set("stall.scoreboard", Value::Cycles(stats.stall_scoreboard));
    core.set("stall.unit_busy", Value::Cycles(stats.stall_unit_busy));
    core.set("stall.barrier", Value::Cycles(stats.stall_barrier));
    core.set("stall.empty", Value::Cycles(stats.stall_empty));
    core.set(
        "shared.bank_conflicts",
        Value::Count(stats.shared_bank_conflicts),
    );
    core.set("icache.misses", Value::Count(stats.icache_misses));
    core.set("ccache.misses", Value::Count(stats.ccache_misses));
    core.set("active_cycles", Value::Cycles(stats.active_cycles));
    metrics.set("sim.threads", Value::Count(sim.threads as u64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    #[test]
    fn presets_select_models() {
        let detailed = SimulatorBuilder::new(presets::rtx2080ti())
            .preset(SimulatorPreset::Detailed)
            .build();
        assert_eq!(
            detailed.description(),
            "cycle_accurate_alu+cycle_accurate_memory+detailed_frontend+event_driven"
        );

        let basic = SimulatorBuilder::new(presets::rtx2080ti())
            .preset(SimulatorPreset::SwiftBasic)
            .build();
        assert_eq!(
            basic.description(),
            "analytical_alu+cycle_accurate_memory+simplified_frontend+event_driven"
        );

        let memory = SimulatorBuilder::new(presets::rtx2080ti())
            .preset(SimulatorPreset::SwiftMemory)
            .build();
        assert_eq!(
            memory.description(),
            "analytical_alu+analytical_memory+simplified_frontend+event_driven"
        );
    }

    #[test]
    fn fidelity_lands_in_simulator_verbatim() {
        let fidelity = FidelityConfig {
            alu: AluModelKind::CycleAccurate,
            memory: MemoryModelKind::AnalyticalReuse,
            frontend: FrontendModelKind::Simplified,
            skip_policy: SkipPolicy::Dense,
            sync_quantum: crate::fidelity::SyncQuantum::Cycles(32),
        };
        let sim = SimulatorBuilder::new(presets::rtx2080ti())
            .fidelity(fidelity)
            .build();
        assert_eq!(sim.fidelity(), fidelity);
        assert_eq!(sim.description(), fidelity.describe());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_skip_idle_maps_to_skip_policy() {
        let sim = SimulatorBuilder::new(presets::rtx2080ti())
            .skip_idle(false)
            .build();
        assert_eq!(sim.fidelity().skip_policy, SkipPolicy::Dense);
        let sim = SimulatorBuilder::new(presets::rtx2080ti())
            .skip_idle(true)
            .build();
        assert_eq!(sim.fidelity().skip_policy, SkipPolicy::EventDriven);
    }

    #[test]
    fn threads_zero_resolves_to_auto() {
        let sim = SimulatorBuilder::new(presets::rtx2080ti())
            .threads(0)
            .try_build()
            .expect("auto threads is always valid");
        assert!(sim.threads >= 1);
        assert!(sim.threads <= presets::rtx2080ti().num_sms as usize);
        assert!(sim.threads <= crate::parallel::max_threads());
    }

    #[test]
    fn try_build_rejects_more_threads_than_sms() {
        let cfg = presets::rtx2080ti();
        let too_many = cfg.num_sms as usize + 1;
        let err = SimulatorBuilder::new(cfg.clone())
            .threads(too_many)
            .try_build()
            .expect_err("one shard needs at least one SM");
        assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
        // The exact SM count is accepted.
        let sim = SimulatorBuilder::new(cfg.clone())
            .threads(cfg.num_sms as usize)
            .try_build()
            .expect("threads == SMs is valid");
        assert_eq!(sim.threads, cfg.num_sms as usize);
    }

    #[test]
    fn try_build_rejects_invalid_config() {
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 0;
        let err = SimulatorBuilder::new(cfg).try_build().expect_err("0 SMs");
        assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid simulator configuration")]
    fn build_panics_on_invalid_config() {
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 0;
        let _ = SimulatorBuilder::new(cfg).build();
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimulatorPreset::Detailed.label(), "detailed-baseline");
        assert_eq!(SimulatorPreset::SwiftBasic.label(), "swift-sim-basic");
        assert_eq!(SimulatorPreset::SwiftMemory.label(), "swift-sim-memory");
    }
}
