//! The streaming-multiprocessor model: sub-cores, Warp Scheduler &
//! Dispatch, scoreboard, execution-unit dispatch, LD/ST units, shared
//! memory, barriers, and the (simplifiable) instruction/constant caches.
//!
//! The SM implements the GPU execution model of §III-B1: blocks arrive from
//! the Block Scheduler; each cycle every sub-core's scheduler selects a
//! ready warp and issues one instruction; arithmetic goes to the execution
//! units (through the [`AluModel`] interface), loads/stores go through the
//! LD/ST units to the memory system (through the [`MemorySystem`]
//! interface); instruction-completion acknowledgments release scoreboard
//! entries and wake dependent warps.
//!
//! # Storage layout
//!
//! Warp instruction windows live in flat structure-of-arrays storage: warp
//! `w` of block slot `s` is index `s * stride + w` into parallel vectors
//! (instruction slice, program counter, state, scoreboard). The per-cycle
//! scan walks contiguous arrays instead of chasing
//! `Vec<Option<Block>> -> Vec<Warp>` pointers, keeping the hot loop
//! cache-friendly.
//!
//! # Quiescence cache (event-driven engine)
//!
//! Under [`SkipPolicy::EventDriven`] the SM memoizes its own per-cycle stat
//! delta: after two consecutive *quiescent* ticks (nothing issued, drained,
//! parked, or unparked) the next tick's observable effect is provably the
//! same delta again, so [`SmCore::tick`] replays it without re-scanning
//! warps — until a writeback, memory completion, or block install
//! invalidates the cache. The dense engine never uses the cache, so the
//! differential suite (`event_engine_equiv.rs`) genuinely exercises it.
//!
//! [`SkipPolicy::EventDriven`]: crate::fidelity::SkipPolicy::EventDriven

use crate::alu::AluModel;
use crate::scheduler::{WarpSchedulerPolicy, WarpView};
use crate::scoreboard::Scoreboard;
use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use swiftsim_config::{ExecUnitKind, SmConfig};
use swiftsim_mem::{coalesce_accesses, AddressMapping};
use swiftsim_metrics::{ProfModule, Profiler};
use swiftsim_trace::{
    AddressList, BlockTrace, MemSpace, Opcode, OpcodeClass, Reg, TraceInstruction,
};

use crate::mem_system::{MemReply, MemorySystem};

/// Issue-stall breakdown per SM (Metrics Gatherer counters, §III-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // self-describing counters
pub struct SmStats {
    pub issued: u64,
    pub mem_insts: u64,
    pub stall_scoreboard: u64,
    pub stall_unit_busy: u64,
    pub stall_barrier: u64,
    pub stall_empty: u64,
    pub shared_bank_conflicts: u64,
    pub icache_misses: u64,
    pub ccache_misses: u64,
    pub active_cycles: u64,
}

/// Apply `op` to every counter pair of two [`SmStats`].
macro_rules! for_each_stat {
    ($a:expr, $b:expr, $op:expr) => {{
        let (a, b, op) = ($a, $b, $op);
        op(&mut a.issued, b.issued);
        op(&mut a.mem_insts, b.mem_insts);
        op(&mut a.stall_scoreboard, b.stall_scoreboard);
        op(&mut a.stall_unit_busy, b.stall_unit_busy);
        op(&mut a.stall_barrier, b.stall_barrier);
        op(&mut a.stall_empty, b.stall_empty);
        op(&mut a.shared_bank_conflicts, b.shared_bank_conflicts);
        op(&mut a.icache_misses, b.icache_misses);
        op(&mut a.ccache_misses, b.ccache_misses);
        op(&mut a.active_cycles, b.active_cycles);
    }};
}

impl SmStats {
    /// Accumulate `other` into `self`.
    pub(crate) fn add(&mut self, other: &SmStats) {
        for_each_stat!(self, other, |a: &mut u64, b: u64| *a += b);
    }

    /// The per-field difference `self - earlier` (counters only grow).
    pub(crate) fn delta_since(&self, earlier: &SmStats) -> SmStats {
        let mut d = *self;
        for_each_stat!(&mut d, earlier, |a: &mut u64, b: u64| *a -= b);
        d
    }

    /// Accumulate `delta` scaled by `n` — replaying `n` identical quiescent
    /// cycles at once.
    pub(crate) fn add_scaled(&mut self, delta: &SmStats, n: u64) {
        for_each_stat!(self, delta, |a: &mut u64, b: u64| *a += b * n);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Running,
    AtBarrier,
    Done,
}

/// Simplified instruction + constant caches.
///
/// The detailed preset models both as small direct-mapped tag arrays whose
/// misses delay the instruction; Swift-Sim-Basic "simplif\[ies\] less
/// critical modules like instruction cache, constant cache" (§IV-A3) to
/// always-hit.
#[derive(Debug)]
struct FrontendCaches {
    detailed: bool,
    itags: Vec<u64>,
    ctags: Vec<u64>,
    imiss_latency: Cycle,
    cmiss_latency: Cycle,
}

impl FrontendCaches {
    fn new(detailed: bool) -> Self {
        FrontendCaches {
            detailed,
            itags: vec![u64::MAX; 256],
            ctags: vec![u64::MAX; 128],
            imiss_latency: 20,
            cmiss_latency: 40,
        }
    }

    /// Extra fetch latency for the instruction at `pc`.
    fn fetch_penalty(&mut self, pc: u32, stats: &mut SmStats) -> Cycle {
        if !self.detailed {
            return 0;
        }
        // 128 B instruction lines, direct mapped.
        let line = u64::from(pc) >> 7;
        let set = (line as usize) % self.itags.len();
        if self.itags[set] == line {
            0
        } else {
            self.itags[set] = line;
            stats.icache_misses += 1;
            self.imiss_latency
        }
    }

    /// Extra latency for a constant-memory access at `addr`.
    fn const_penalty(&mut self, addr: u64, stats: &mut SmStats) -> Cycle {
        if !self.detailed {
            return 0;
        }
        let line = addr >> 6;
        let set = (line as usize) % self.ctags.len();
        if self.ctags[set] == line {
            0
        } else {
            self.ctags[set] = line;
            stats.ccache_misses += 1;
            self.cmiss_latency
        }
    }
}

/// Reference to a pending writeback target inside an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WbTarget {
    pub slot: usize,
    pub warp: usize,
    pub reg: Reg,
}

/// What one SM tick produced, for the top-level run loop.
#[derive(Debug, Default)]
pub(crate) struct TickOutcome {
    /// Instructions issued this cycle across sub-cores.
    pub issued: u32,
    /// Global block ids that completed this cycle.
    pub completed_blocks: Vec<usize>,
    /// Earliest future cycle at which this SM could make progress if
    /// nothing was issued (writeback/port wakeups). `None` = idle.
    pub next_wakeup: Option<Cycle>,
    /// Whether some warp was blocked only by a busy issue port this cycle
    /// (such stalls resolve within an initiation interval, so idle-skipping
    /// simulators must not jump past them).
    pub unit_busy_stall: bool,
    /// Pending memory tokens issued this cycle: (token, writeback target).
    pub new_tokens: Vec<(u64, WbTarget)>,
}

/// One streaming multiprocessor.
pub(crate) struct SmCore<'a> {
    id: usize,
    /// Global SM id for diagnostics. Under sharded execution `id` is the
    /// shard-local index the memory system keys ports by, while this is
    /// the id a user can find in the profile/trace.
    global_id: usize,
    cfg: SmConfig,
    schedulers: Vec<Box<dyn WarpSchedulerPolicy>>,
    /// Warps per block slot: warp `w` of slot `s` is SoA index
    /// `s * stride + w`. Uniform per kernel (`is_consistent` is checked
    /// before cores are built).
    stride: usize,
    /// Per-warp SoA arrays, length `slots * stride`.
    w_insts: Vec<&'a [TraceInstruction]>,
    w_next: Vec<u32>,
    w_state: Vec<WarpState>,
    /// Parked on a scoreboard hazard or a full LD/ST queue: skip
    /// re-evaluation until one of this warp's pending writebacks lands or
    /// the memory system accepts again (hot-path optimization — readiness
    /// cannot change before then).
    w_parked: Vec<bool>,
    w_scoreboard: Vec<Scoreboard>,
    /// Per-slot SoA arrays, length `slots`.
    s_occupied: Vec<bool>,
    s_global_block: Vec<usize>,
    s_barrier_waiting: Vec<u32>,
    s_live_warps: Vec<u32>,
    s_age: Vec<Cycle>,
    /// Occupied slots (cached `s_occupied.iter().filter(..).count()`).
    resident: u32,
    wb_events: BinaryHeap<Reverse<(Cycle, usize, usize, u16)>>,
    alu: Box<dyn AluModel>,
    frontend: FrontendCaches,
    mapping: AddressMapping,
    stats: SmStats,
    /// Warps in `Running` state and not parked — the only warps a
    /// scheduler could possibly pick. When zero, the whole tick can
    /// early-out (hybrid fast path).
    schedulable: u32,
    /// Warps parked on a full LD/ST queue, woken in bulk when the memory
    /// system accepts again.
    mem_parked: Vec<(usize, usize)>,
    /// Reused scan buffers (hot path, avoids per-cycle allocation).
    scan_views: Vec<WarpView>,
    scan_refs: Vec<(usize, usize)>,
    /// Quiescence cache (event-driven engine only; see module docs).
    event_driven: bool,
    /// Consecutive quiescent ticks observed, capped at 2 (the point at
    /// which the per-tick delta is provably constant: operand collectors
    /// have settled and scheduler no-pick state has reached its fixed
    /// point).
    q_streak: u8,
    /// The memoized per-tick stat delta, valid while `q_streak >= 2`.
    q_delta: SmStats,
}

impl std::fmt::Debug for SmCore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmCore")
            .field("id", &self.id)
            .field("resident_blocks", &self.resident)
            .finish()
    }
}

impl<'a> SmCore<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        global_id: usize,
        cfg: &SmConfig,
        slots: usize,
        warps_per_block: usize,
        alu: Box<dyn AluModel>,
        detailed_frontend: bool,
        event_driven: bool,
        make_scheduler: &dyn Fn() -> Box<dyn WarpSchedulerPolicy>,
    ) -> Self {
        let n = slots * warps_per_block;
        SmCore {
            id,
            global_id,
            cfg: cfg.clone(),
            schedulers: (0..cfg.sub_cores).map(|_| make_scheduler()).collect(),
            stride: warps_per_block,
            w_insts: vec![&[]; n],
            w_next: vec![0; n],
            w_state: vec![WarpState::Done; n],
            w_parked: vec![false; n],
            w_scoreboard: (0..n).map(|_| Scoreboard::new()).collect(),
            s_occupied: vec![false; slots],
            s_global_block: vec![0; slots],
            s_barrier_waiting: vec![0; slots],
            s_live_warps: vec![0; slots],
            s_age: vec![0; slots],
            resident: 0,
            wb_events: BinaryHeap::new(),
            alu,
            frontend: FrontendCaches::new(detailed_frontend),
            mapping: AddressMapping::new(&cfg.l1d),
            stats: SmStats::default(),
            schedulable: 0,
            mem_parked: Vec::new(),
            scan_views: Vec::new(),
            scan_refs: Vec::new(),
            event_driven,
            q_streak: 0,
            q_delta: SmStats::default(),
        }
    }

    /// Whether a block slot is free.
    pub(crate) fn has_free_slot(&self) -> bool {
        (self.resident as usize) < self.s_occupied.len()
    }

    /// Install a traced block into a free slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free (callers check [`SmCore::has_free_slot`])
    /// or if the block's warp count differs from the kernel-uniform stride.
    pub(crate) fn install_block(&mut self, global_block: usize, block: &'a BlockTrace, now: Cycle) {
        let slot = self
            .s_occupied
            .iter()
            .position(|occ| !occ)
            .expect("install_block requires a free slot");
        let warps = block.warps();
        assert_eq!(
            warps.len(),
            self.stride,
            "block warp count must match the kernel-uniform stride"
        );
        let mut live = 0u32;
        for (w, warp) in warps.iter().enumerate() {
            let i = slot * self.stride + w;
            self.w_insts[i] = warp.instructions();
            self.w_next[i] = 0;
            self.w_scoreboard[i] = Scoreboard::new();
            self.w_parked[i] = false;
            self.w_state[i] = if warp.is_empty() {
                WarpState::Done
            } else {
                live += 1;
                WarpState::Running
            };
        }
        self.schedulable += live;
        self.s_occupied[slot] = true;
        self.s_global_block[slot] = global_block;
        self.s_barrier_waiting[slot] = 0;
        self.s_live_warps[slot] = live;
        self.s_age[slot] = now;
        self.resident += 1;
        self.q_streak = 0;
    }

    /// Whether any block is resident.
    pub(crate) fn is_active(&self) -> bool {
        self.resident > 0
    }

    /// Apply a writeback immediately (memory completion path). A register
    /// of `u16::MAX` marks a completion nobody waits on (a rare dst-less
    /// pending access) and is ignored.
    pub(crate) fn writeback_now(&mut self, target: WbTarget) {
        self.q_streak = 0;
        if target.reg.0 == u16::MAX {
            return;
        }
        if self.s_occupied[target.slot] {
            let i = target.slot * self.stride + target.warp;
            self.w_scoreboard[i].writeback(target.reg);
            if self.w_parked[i] {
                self.w_parked[i] = false;
                self.schedulable += 1;
            }
        }
    }

    /// Stats snapshot.
    pub(crate) fn stats(&self) -> SmStats {
        self.stats
    }

    /// After a measured quiescent tick whose pre-tick stats were
    /// `before`, replay its delta `extra` more times — the event-driven
    /// engine's clock jump, accounting the skipped cycles exactly as the
    /// dense loop would have ticked them.
    pub(crate) fn scale_quiescent_delta(
        &mut self,
        before: &SmStats,
        extra: u64,
        prof: &mut Profiler,
    ) {
        if extra == 0 {
            return;
        }
        let delta = self.stats.delta_since(before);
        self.stats.add_scaled(&delta, extra);
        if delta.active_cycles > 0 {
            prof.add_cycles(ProfModule::WarpScheduler, delta.active_cycles * extra);
        }
    }

    /// Describe the oldest still-live warp on this SM, for deadlock
    /// diagnostics. `None` when no block is resident.
    pub(crate) fn oldest_stalled(&self) -> Option<String> {
        let mut oldest: Option<(Cycle, usize, usize)> = None;
        for slot in 0..self.s_occupied.len() {
            if !self.s_occupied[slot] {
                continue;
            }
            for w in 0..self.stride {
                let i = slot * self.stride + w;
                if self.w_state[i] == WarpState::Done {
                    continue;
                }
                let key = (self.s_age[slot], slot, w);
                if oldest.is_none_or(|o| key < o) {
                    oldest = Some(key);
                }
            }
        }
        let (_, slot, w) = oldest?;
        let i = slot * self.stride + w;
        let why = match self.w_state[i] {
            WarpState::AtBarrier => "at barrier".to_owned(),
            WarpState::Done => unreachable!("Done warps are skipped"),
            WarpState::Running => {
                let pos = format!("at inst {}/{}", self.w_next[i], self.w_insts[i].len());
                if self.w_parked[i] {
                    format!("{pos}, parked on a pending writeback or full LD/ST queue")
                } else {
                    pos
                }
            }
        };
        Some(format!(
            "SM {} block {} warp {w} {why}",
            self.global_id, self.s_global_block[slot]
        ))
    }

    /// Apply a memory reply that the two-phase engine resolved during its
    /// commit phase: exactly what the sequential engine's `MemReply::Done`
    /// arm does at issue time (LD/ST latency attribution plus a future
    /// writeback event), deferred to just before the next compute phase.
    pub(crate) fn apply_deferred_done(
        &mut self,
        target: WbTarget,
        at: Cycle,
        issue_now: Cycle,
        prof: &mut Profiler,
    ) {
        prof.add_cycles(ProfModule::LdSt, at.saturating_sub(issue_now));
        if target.reg.0 != u16::MAX {
            self.wb_events
                .push(Reverse((at, target.slot, target.warp, target.reg.0)));
        }
    }

    /// Drain due writebacks; returns whether any event fired (even for a
    /// since-freed slot — conservative for the quiescence cache).
    fn drain_writebacks(&mut self, now: Cycle) -> bool {
        let mut drained = false;
        while let Some(&Reverse((at, slot, warp, reg))) = self.wb_events.peek() {
            if at > now {
                break;
            }
            self.wb_events.pop();
            drained = true;
            if self.s_occupied[slot] {
                let i = slot * self.stride + warp;
                self.w_scoreboard[i].writeback(Reg(reg));
                if self.w_parked[i] {
                    self.w_parked[i] = false;
                    self.schedulable += 1;
                }
            }
        }
        drained
    }

    /// Simulate one cycle; issues at most one instruction per sub-core.
    pub(crate) fn tick(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        prof: &mut Profiler,
    ) -> TickOutcome {
        // Quiescence cache: with two consecutive quiescent ticks behind us,
        // no writeback due, and no chance of a memory-queue unpark, this
        // tick is provably identical to the last — replay its stat delta
        // and skip the pipeline walk and warp scan entirely.
        if self.q_streak >= 2
            && self
                .wb_events
                .peek()
                .is_none_or(|Reverse((at, ..))| *at > now)
            && (self.mem_parked.is_empty() || !mem.can_accept(self.id))
        {
            self.stats.add(&self.q_delta);
            prof.add_cycles(ProfModule::WarpScheduler, self.q_delta.active_cycles);
            return TickOutcome {
                next_wakeup: self.wb_events.peek().map(|Reverse((at, ..))| *at),
                ..TickOutcome::default()
            };
        }

        let stats_before = self.stats;
        let t0 = prof.start();
        self.alu.tick(now);
        let drained = self.drain_writebacks(now);
        prof.record(ProfModule::Alu, t0);

        let mut outcome = TickOutcome::default();
        if self.is_active() {
            self.stats.active_cycles += 1;
            prof.add_cycles(ProfModule::WarpScheduler, 1);
        }

        if self.frontend.detailed {
            let t0 = prof.start();
            self.detailed_core_tick();
            prof.record(ProfModule::WarpScheduler, t0);
        }
        let mem_ok = mem.can_accept(self.id);
        let mut unparked = false;
        if mem_ok && !self.mem_parked.is_empty() {
            let parked = std::mem::take(&mut self.mem_parked);
            for (slot, w) in parked {
                if self.s_occupied[slot] {
                    let i = slot * self.stride + w;
                    if self.w_parked[i] {
                        self.w_parked[i] = false;
                        self.schedulable += 1;
                        unparked = true;
                    }
                }
            }
        }
        if !self.frontend.detailed && self.schedulable == 0 {
            // Hybrid fast path: every warp is parked, at a barrier, or
            // done — no scheduler can issue, so skip the scan entirely.
            if self.is_active() {
                self.stats.stall_scoreboard += u64::from(self.cfg.sub_cores);
            }
            outcome.next_wakeup = self.wb_events.peek().map(|Reverse((at, ..))| *at);
            self.note_quiescence(&stats_before, &outcome, drained, unparked);
            return outcome;
        }
        for sc in 0..self.cfg.sub_cores as usize {
            self.tick_sub_core(sc, now, mem, mem_ok, &mut outcome, prof);
        }

        // Wakeups for the event-driven engine: pending writebacks, and
        // next cycle if a port-busy stall can resolve soon.
        let mut wakeup = self.wb_events.peek().map(|Reverse((at, ..))| *at);
        if outcome.unit_busy_stall {
            wakeup = Some(wakeup.map_or(now + 1, |w| w.min(now + 1)));
        }
        outcome.next_wakeup = wakeup;
        self.note_quiescence(&stats_before, &outcome, drained, unparked);
        outcome
    }

    /// Track consecutive quiescent ticks and memoize the second one's stat
    /// delta (see module docs for why two ticks suffice).
    fn note_quiescence(
        &mut self,
        stats_before: &SmStats,
        outcome: &TickOutcome,
        drained: bool,
        unparked: bool,
    ) {
        if !self.event_driven {
            return;
        }
        let quiescent = outcome.issued == 0
            && !outcome.unit_busy_stall
            && outcome.completed_blocks.is_empty()
            && outcome.new_tokens.is_empty()
            && !drained
            && !unparked;
        if !quiescent {
            self.q_streak = 0;
        } else if self.q_streak == 0 {
            self.q_streak = 1;
        } else if self.q_streak == 1 {
            self.q_delta = self.stats.delta_since(stats_before);
            self.q_streak = 2;
        }
    }

    /// The per-cycle fetch/decode work of the detailed baseline: every
    /// resident warp's fetch group is looked up in the instruction cache
    /// and its instruction-buffer dependences re-examined each cycle —
    /// exactly the frontend activity a detailed simulator like Accel-Sim
    /// performs (and the work the hybrid presets eliminate).
    fn detailed_core_tick(&mut self) {
        let frontend = &mut self.frontend;
        let stats = &mut self.stats;
        for slot in 0..self.s_occupied.len() {
            if !self.s_occupied[slot] {
                continue;
            }
            for w in 0..self.stride {
                let i = slot * self.stride + w;
                if self.w_state[i] == WarpState::Done {
                    continue;
                }
                if let Some(inst) = self.w_insts[i].get(self.w_next[i] as usize) {
                    // Fetch: the fetch group is re-probed each cycle the
                    // warp occupies an ibuffer slot.
                    let line = u64::from(inst.pc) >> 7;
                    let set = (line as usize) % frontend.itags.len();
                    if frontend.itags[set] != line {
                        frontend.itags[set] = line;
                        stats.icache_misses += 1;
                    }
                    // Decode: dependence pre-check against the scoreboard.
                    std::hint::black_box(self.w_scoreboard[i].outstanding());
                    std::hint::black_box(inst.srcs.len());
                }
            }
        }
    }

    fn tick_sub_core(
        &mut self,
        sc: usize,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        mem_ok: bool,
        outcome: &mut TickOutcome,
        prof: &mut Profiler,
    ) {
        // Scan this sub-core's warps: warp w of slot s belongs to sub-core
        // (w % sub_cores). Disjoint-field destructuring keeps the SoA scan
        // borrow-checker-clean without cloning.
        let t_sched = prof.start();
        let sub_cores = self.cfg.sub_cores as usize;
        let stride = self.stride;
        let SmCore {
            alu,
            schedulers,
            w_insts,
            w_next,
            w_state,
            w_parked,
            w_scoreboard,
            s_occupied,
            s_age,
            schedulable,
            mem_parked,
            stats,
            scan_views,
            scan_refs,
            ..
        } = self;
        let views = scan_views;
        let refs = scan_refs;
        views.clear();
        refs.clear();
        let mut any_unit_busy = false;
        let mut any_scoreboard = false;
        let mut any_barrier = false;

        let alu = alu.as_ref();
        for (slot, &occupied) in s_occupied.iter().enumerate() {
            if !occupied {
                continue;
            }
            let age = s_age[slot];
            let mut w = sc;
            while w < stride {
                let i = slot * stride + w;
                if w_state[i] == WarpState::Done {
                    w += sub_cores;
                    continue;
                }
                let id = refs.len();
                refs.push((slot, w));
                let ready = if w_state[i] == WarpState::AtBarrier {
                    any_barrier = true;
                    false
                } else if w_parked[i] {
                    // Still waiting on a pending writeback: readiness
                    // cannot have changed, skip the full check.
                    any_scoreboard = true;
                    false
                } else {
                    let inst = w_insts[i].get(w_next[i] as usize);
                    match issue_check(alu, sc, inst, &w_scoreboard[i], now, mem_ok) {
                        Ok(_) => true,
                        Err(Stall::Scoreboard) => {
                            w_parked[i] = true;
                            *schedulable -= 1;
                            any_scoreboard = true;
                            false
                        }
                        Err(Stall::UnitBusy) => {
                            any_unit_busy = true;
                            false
                        }
                        Err(Stall::MemQueue) => {
                            w_parked[i] = true;
                            *schedulable -= 1;
                            mem_parked.push((slot, w));
                            any_unit_busy = true;
                            false
                        }
                        Err(Stall::Empty) => false,
                    }
                };
                views.push(WarpView { id, ready, age });
                w += sub_cores;
            }
        }

        if any_unit_busy {
            outcome.unit_busy_stall = true;
        }
        let picked = schedulers[sc].pick(views, now);
        let target = picked.map(|view_id| refs[view_id]);
        if target.is_none() {
            if any_scoreboard {
                stats.stall_scoreboard += 1;
            } else if any_unit_busy {
                stats.stall_unit_busy += 1;
            } else if any_barrier {
                stats.stall_barrier += 1;
            } else if !views.is_empty() {
                stats.stall_empty += 1;
            }
        }
        prof.record(ProfModule::WarpScheduler, t_sched);
        if let Some((slot, warp_idx)) = target {
            self.issue(slot, warp_idx, sc, now, mem, outcome, prof);
        }
    }

    /// Wake every warp waiting at `slot`'s barrier.
    fn release_barrier(&mut self, slot: usize) {
        self.s_barrier_waiting[slot] = 0;
        for w in 0..self.stride {
            let i = slot * self.stride + w;
            if self.w_state[i] == WarpState::AtBarrier {
                self.w_state[i] = WarpState::Running;
                self.schedulable += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        slot: usize,
        warp_idx: usize,
        sc: usize,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        outcome: &mut TickOutcome,
        prof: &mut Profiler,
    ) {
        // Copy only the small header fields; the payload stays in place
        // (cloning the instruction per issue would allocate on the hot
        // path).
        let i = slot * self.stride + warp_idx;
        let (pc, opcode, dst) = {
            let inst = self.w_insts[i]
                .get(self.w_next[i] as usize)
                .expect("ready warp has inst");
            (inst.pc, inst.opcode, inst.dst)
        };
        let fetch_penalty = self.frontend.fetch_penalty(pc, &mut self.stats);

        self.stats.issued += 1;
        outcome.issued += 1;

        match opcode.class() {
            OpcodeClass::Barrier => {
                self.w_next[i] += 1;
                self.w_state[i] = WarpState::AtBarrier;
                self.schedulable -= 1;
                self.s_barrier_waiting[slot] += 1;
                if self.s_barrier_waiting[slot] == self.s_live_warps[slot] {
                    self.release_barrier(slot);
                }
            }
            OpcodeClass::Exit => {
                self.w_next[i] += 1;
                self.w_state[i] = WarpState::Done;
                self.schedulable -= 1;
                self.s_live_warps[slot] -= 1;
                // A warp at the barrier may now satisfy it.
                if self.s_live_warps[slot] > 0
                    && self.s_barrier_waiting[slot] == self.s_live_warps[slot]
                {
                    self.release_barrier(slot);
                }
                if self.s_live_warps[slot] == 0 {
                    outcome.completed_blocks.push(self.s_global_block[slot]);
                    self.s_occupied[slot] = false;
                    self.resident -= 1;
                }
            }
            OpcodeClass::Memory => {
                self.stats.mem_insts += 1;
                let t0 = prof.start();
                self.issue_memory(slot, warp_idx, sc, now, fetch_penalty, mem, outcome, prof);
                prof.record(ProfModule::LdSt, t0);
            }
            _ => {
                let t0 = prof.start();
                let kind = unit_for_class(opcode.class()).expect("arithmetic class has a unit");
                let wb_at = self.alu.issue(sc, kind, now) + fetch_penalty;
                self.w_scoreboard[i].issue_dst(dst);
                self.w_next[i] += 1;
                if let Some(dst) = dst {
                    self.wb_events.push(Reverse((wb_at, slot, warp_idx, dst.0)));
                }
                prof.add_cycles(ProfModule::Alu, wb_at.saturating_sub(now));
                prof.record(ProfModule::Alu, t0);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_memory(
        &mut self,
        slot: usize,
        warp_idx: usize,
        sc: usize,
        now: Cycle,
        fetch_penalty: Cycle,
        mem: &mut dyn MemorySystem,
        outcome: &mut TickOutcome,
        prof: &mut Profiler,
    ) {
        // Occupy the LD/ST issue port.
        let agu_done = self.alu.issue(sc, ExecUnitKind::LdSt, now) + fetch_penalty;

        // The instruction slice borrow is disjoint from the
        // `stats`/`frontend`/`mapping` borrows — no clone needed.
        let i = slot * self.stride + warp_idx;
        let inst = self.w_insts[i]
            .get(self.w_next[i] as usize)
            .expect("ready warp has inst");
        let dst = inst.dst;
        let mem_info = inst.mem.as_ref().expect("memory opcode carries payload");
        let lanes = inst.active_lanes();

        let completion = match mem_info.space {
            MemSpace::Shared => {
                // Banked scratchpad: conflict degree serializes the access.
                let degree = shared_conflict_degree_list(
                    &mem_info.addresses,
                    lanes,
                    self.cfg.shared_mem_banks,
                );
                if degree > 1 {
                    self.stats.shared_bank_conflicts += u64::from(degree - 1);
                }
                Some(agu_done + Cycle::from(self.cfg.shared_mem_latency) + Cycle::from(degree - 1))
            }
            MemSpace::Const => {
                let first = match &mem_info.addresses {
                    AddressList::Strided { base, .. } => *base,
                    AddressList::Explicit(a) => a.first().copied().unwrap_or(0),
                };
                let penalty = self.frontend.const_penalty(first, &mut self.stats);
                Some(agu_done + Cycle::from(self.cfg.shared_mem_latency) + penalty)
            }
            MemSpace::Global | MemSpace::Local => {
                let addrs = mem_info.addresses.expand(lanes);
                let txns = coalesce_accesses(
                    &self.mapping,
                    &addrs,
                    mem_info.width,
                    inst.opcode.is_store(),
                );
                if txns.is_empty() {
                    Some(agu_done)
                } else {
                    match mem.access(self.id, inst.pc, &txns, agu_done) {
                        MemReply::Done(at) => Some(at),
                        MemReply::Pending(token) => {
                            outcome.new_tokens.push((
                                token,
                                WbTarget {
                                    slot,
                                    warp: warp_idx,
                                    reg: dst.unwrap_or(Reg(u16::MAX)),
                                },
                            ));
                            None
                        }
                    }
                }
            }
        };

        self.w_scoreboard[i].issue_dst(dst);
        self.w_next[i] += 1;
        match completion {
            Some(at) => {
                prof.add_cycles(ProfModule::LdSt, at.saturating_sub(now));
                if let Some(dst) = dst {
                    self.wb_events.push(Reverse((at, slot, warp_idx, dst.0)));
                }
            }
            None => {
                // Writeback arrives through the memory-completion path.
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    Scoreboard,
    UnitBusy,
    /// The SM's LD/ST queue is full (memory instructions only).
    MemQueue,
    Empty,
}

/// Whether a warp's next instruction (`inst`, with scoreboard `sb`) could
/// issue right now on sub-core `sc`, and if not, why.
fn issue_check(
    alu: &dyn AluModel,
    sc: usize,
    inst: Option<&TraceInstruction>,
    sb: &Scoreboard,
    now: Cycle,
    mem_ok: bool,
) -> Result<ExecUnitKind, Stall> {
    let Some(inst) = inst else {
        return Err(Stall::Empty);
    };
    let kind = unit_for(inst);
    if !sb.can_issue(inst) {
        return Err(Stall::Scoreboard);
    }
    if inst.opcode == Opcode::Exit && !sb.is_clear() {
        return Err(Stall::Scoreboard);
    }
    if inst.opcode.class() == OpcodeClass::Memory && !mem_ok {
        // LD/ST queue full: structural stall, resolves as fills drain.
        return Err(Stall::MemQueue);
    }
    if let Some(kind) = kind {
        if !alu.port_free(sc, kind, now) {
            return Err(Stall::UnitBusy);
        }
        return Ok(kind);
    }
    Ok(ExecUnitKind::Int) // barrier/exit issue through the scheduler only
}

/// Execution unit an opcode dispatches to; `None` for scheduler-internal
/// classes (barrier, exit).
fn unit_for(inst: &TraceInstruction) -> Option<ExecUnitKind> {
    unit_for_class(inst.opcode.class())
}

/// Maximum number of lanes mapping to the same shared-memory bank
/// (identical addresses broadcast and do not conflict). Allocation-free:
/// a warp has at most 32 lanes and the modeled GPUs at most 64 banks.
fn shared_conflict_degree(addrs: &[u64], banks: u32) -> u32 {
    let banks = u64::from(banks.max(1)).min(64);
    let mut sorted = [0u64; 32];
    let n = addrs.len().min(32);
    sorted[..n].copy_from_slice(&addrs[..n]);
    let uniq = &mut sorted[..n];
    uniq.sort_unstable();
    let mut counts = [0u8; 64];
    let mut degree = 1u32;
    let mut prev: Option<u64> = None;
    for &a in uniq.iter() {
        if prev == Some(a) {
            continue; // identical addresses broadcast
        }
        prev = Some(a);
        let bank = ((a / 4) % banks) as usize;
        counts[bank] += 1;
        degree = degree.max(u32::from(counts[bank]));
    }
    degree
}

/// [`shared_conflict_degree`] straight from a compressed [`AddressList`],
/// avoiding the per-instruction address expansion on the hot path.
fn shared_conflict_degree_list(list: &AddressList, lanes: u32, banks: u32) -> u32 {
    match list {
        AddressList::Strided { base, stride } => {
            if *stride == 0 || lanes <= 1 {
                return 1; // broadcast
            }
            let banks = u64::from(banks.max(1)).min(64);
            let mut counts = [0u8; 64];
            let mut degree = 1u32;
            for i in 0..u64::from(lanes.min(32)) {
                let a = base.wrapping_add(i * stride);
                let bank = ((a / 4) % banks) as usize;
                counts[bank] += 1;
                degree = degree.max(u32::from(counts[bank]));
            }
            degree
        }
        AddressList::Explicit(addrs) => shared_conflict_degree(addrs, banks),
    }
}

/// Execution unit for an opcode class ([`unit_for`] without the
/// instruction borrow).
fn unit_for_class(class: OpcodeClass) -> Option<ExecUnitKind> {
    match class {
        OpcodeClass::Int | OpcodeClass::Control => Some(ExecUnitKind::Int),
        OpcodeClass::Sp => Some(ExecUnitKind::Sp),
        OpcodeClass::Dp => Some(ExecUnitKind::Dp),
        OpcodeClass::Sfu => Some(ExecUnitKind::Sfu),
        OpcodeClass::Tensor => Some(ExecUnitKind::Tensor),
        OpcodeClass::Memory => Some(ExecUnitKind::LdSt),
        OpcodeClass::Barrier | OpcodeClass::Exit => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_conflicts_counted() {
        // 32 lanes, same bank (stride 128 bytes = 32 words): full conflict.
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        assert_eq!(shared_conflict_degree(&addrs, 32), 32);
        // Stride 4: conflict-free.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(shared_conflict_degree(&addrs, 32), 1);
        // Broadcast: same address everywhere, no conflict.
        let addrs = vec![0x40u64; 32];
        assert_eq!(shared_conflict_degree(&addrs, 32), 1);
        // Empty input (fully predicated-off warp).
        assert_eq!(shared_conflict_degree(&[], 32), 1);
    }

    #[test]
    fn unit_mapping_covers_all_classes() {
        use swiftsim_trace::InstBuilder;
        let cases = [
            (Opcode::Iadd, Some(ExecUnitKind::Int)),
            (Opcode::Bra, Some(ExecUnitKind::Int)),
            (Opcode::Ffma, Some(ExecUnitKind::Sp)),
            (Opcode::Dfma, Some(ExecUnitKind::Dp)),
            (Opcode::Mufu, Some(ExecUnitKind::Sfu)),
            (Opcode::Hmma, Some(ExecUnitKind::Tensor)),
            (Opcode::Bar, None),
            (Opcode::Exit, None),
        ];
        for (op, expect) in cases {
            let inst = InstBuilder::new(op).build();
            assert_eq!(unit_for(&inst), expect, "{op}");
        }
        let ldg = InstBuilder::new(Opcode::Ldg)
            .dst(1)
            .global_strided(0, 4, 4)
            .build();
        assert_eq!(unit_for(&ldg), Some(ExecUnitKind::LdSt));
    }

    #[test]
    fn stat_deltas_scale_exactly() {
        let mut a = SmStats {
            issued: 10,
            stall_scoreboard: 4,
            active_cycles: 7,
            ..SmStats::default()
        };
        let before = SmStats {
            issued: 10,
            stall_scoreboard: 2,
            active_cycles: 6,
            ..SmStats::default()
        };
        let delta = a.delta_since(&before);
        assert_eq!(delta.stall_scoreboard, 2);
        assert_eq!(delta.active_cycles, 1);
        a.add_scaled(&delta, 3);
        assert_eq!(a.stall_scoreboard, 4 + 6);
        assert_eq!(a.active_cycles, 7 + 3);
        assert_eq!(a.issued, 10, "zero deltas stay zero under scaling");
    }
}
