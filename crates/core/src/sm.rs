//! The streaming-multiprocessor model: sub-cores, Warp Scheduler &
//! Dispatch, scoreboard, execution-unit dispatch, LD/ST units, shared
//! memory, barriers, and the (simplifiable) instruction/constant caches.
//!
//! The SM implements the GPU execution model of §III-B1: blocks arrive from
//! the Block Scheduler; each cycle every sub-core's scheduler selects a
//! ready warp and issues one instruction; arithmetic goes to the execution
//! units (through the [`AluModel`] interface), loads/stores go through the
//! LD/ST units to the memory system (through the [`MemorySystem`]
//! interface); instruction-completion acknowledgments release scoreboard
//! entries and wake dependent warps.

use crate::alu::AluModel;
use crate::scheduler::{WarpSchedulerPolicy, WarpView};
use crate::scoreboard::Scoreboard;
use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use swiftsim_config::{ExecUnitKind, SmConfig};
use swiftsim_mem::{coalesce_accesses, AddressMapping};
use swiftsim_metrics::{ProfModule, Profiler};
use swiftsim_trace::{
    AddressList, BlockTrace, MemSpace, Opcode, OpcodeClass, Reg, TraceInstruction,
};

use crate::mem_system::{MemReply, MemorySystem};

/// Issue-stall breakdown per SM (Metrics Gatherer counters, §III-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // self-describing counters
pub struct SmStats {
    pub issued: u64,
    pub mem_insts: u64,
    pub stall_scoreboard: u64,
    pub stall_unit_busy: u64,
    pub stall_barrier: u64,
    pub stall_empty: u64,
    pub shared_bank_conflicts: u64,
    pub icache_misses: u64,
    pub ccache_misses: u64,
    pub active_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Running,
    AtBarrier,
    Done,
}

#[derive(Debug)]
struct WarpContext<'a> {
    insts: &'a [TraceInstruction],
    next: usize,
    scoreboard: Scoreboard,
    state: WarpState,
    /// Parked on a scoreboard hazard: skip re-evaluation until one of this
    /// warp's pending writebacks lands (hot-path optimization — readiness
    /// cannot change before then).
    parked: bool,
}

impl WarpContext<'_> {
    fn current(&self) -> Option<&TraceInstruction> {
        self.insts.get(self.next)
    }
}

#[derive(Debug)]
struct BlockCtx<'a> {
    global_block: usize,
    warps: Vec<WarpContext<'a>>,
    barrier_waiting: u32,
    live_warps: u32,
    age: Cycle,
}

/// Simplified instruction + constant caches.
///
/// The detailed preset models both as small direct-mapped tag arrays whose
/// misses delay the instruction; Swift-Sim-Basic "simplif\[ies\] less
/// critical modules like instruction cache, constant cache" (§IV-A3) to
/// always-hit.
#[derive(Debug)]
struct FrontendCaches {
    detailed: bool,
    itags: Vec<u64>,
    ctags: Vec<u64>,
    imiss_latency: Cycle,
    cmiss_latency: Cycle,
}

impl FrontendCaches {
    fn new(detailed: bool) -> Self {
        FrontendCaches {
            detailed,
            itags: vec![u64::MAX; 256],
            ctags: vec![u64::MAX; 128],
            imiss_latency: 20,
            cmiss_latency: 40,
        }
    }

    /// Extra fetch latency for the instruction at `pc`.
    fn fetch_penalty(&mut self, pc: u32, stats: &mut SmStats) -> Cycle {
        if !self.detailed {
            return 0;
        }
        // 128 B instruction lines, direct mapped.
        let line = u64::from(pc) >> 7;
        let set = (line as usize) % self.itags.len();
        if self.itags[set] == line {
            0
        } else {
            self.itags[set] = line;
            stats.icache_misses += 1;
            self.imiss_latency
        }
    }

    /// Extra latency for a constant-memory access at `addr`.
    fn const_penalty(&mut self, addr: u64, stats: &mut SmStats) -> Cycle {
        if !self.detailed {
            return 0;
        }
        let line = addr >> 6;
        let set = (line as usize) % self.ctags.len();
        if self.ctags[set] == line {
            0
        } else {
            self.ctags[set] = line;
            stats.ccache_misses += 1;
            self.cmiss_latency
        }
    }
}

/// Reference to a pending writeback target inside an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WbTarget {
    pub slot: usize,
    pub warp: usize,
    pub reg: Reg,
}

/// What one SM tick produced, for the top-level run loop.
#[derive(Debug, Default)]
pub(crate) struct TickOutcome {
    /// Instructions issued this cycle across sub-cores.
    pub issued: u32,
    /// Global block ids that completed this cycle.
    pub completed_blocks: Vec<usize>,
    /// Earliest future cycle at which this SM could make progress if
    /// nothing was issued (writeback/port wakeups). `None` = idle.
    pub next_wakeup: Option<Cycle>,
    /// Whether some warp was blocked only by a busy issue port this cycle
    /// (such stalls resolve within an initiation interval, so idle-skipping
    /// simulators must not jump past them).
    pub unit_busy_stall: bool,
    /// Pending memory tokens issued this cycle: (token, writeback target).
    pub new_tokens: Vec<(u64, WbTarget)>,
}

/// One streaming multiprocessor.
pub(crate) struct SmCore<'a> {
    id: usize,
    cfg: SmConfig,
    schedulers: Vec<Box<dyn WarpSchedulerPolicy>>,
    blocks: Vec<Option<BlockCtx<'a>>>,
    wb_events: BinaryHeap<Reverse<(Cycle, usize, usize, u16)>>,
    alu: Box<dyn AluModel>,
    frontend: FrontendCaches,
    mapping: AddressMapping,
    stats: SmStats,
    /// Warps in `Running` state and not parked — the only warps a
    /// scheduler could possibly pick. When zero, the whole tick can
    /// early-out (hybrid fast path).
    schedulable: u32,
    /// Warps parked on a full LD/ST queue, woken in bulk when the memory
    /// system accepts again.
    mem_parked: Vec<(usize, usize)>,
    /// Reused scan buffers (hot path, avoids per-cycle allocation).
    scan_views: Vec<WarpView>,
    scan_refs: Vec<(usize, usize)>,
}

impl std::fmt::Debug for SmCore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmCore")
            .field("id", &self.id)
            .field("resident_blocks", &self.blocks.iter().flatten().count())
            .finish()
    }
}

impl<'a> SmCore<'a> {
    pub(crate) fn new(
        id: usize,
        cfg: &SmConfig,
        slots: usize,
        alu: Box<dyn AluModel>,
        detailed_frontend: bool,
        make_scheduler: &dyn Fn() -> Box<dyn WarpSchedulerPolicy>,
    ) -> Self {
        SmCore {
            id,
            cfg: cfg.clone(),
            schedulers: (0..cfg.sub_cores).map(|_| make_scheduler()).collect(),
            blocks: (0..slots).map(|_| None).collect(),
            wb_events: BinaryHeap::new(),
            alu,
            frontend: FrontendCaches::new(detailed_frontend),
            mapping: AddressMapping::new(&cfg.l1d),
            stats: SmStats::default(),
            schedulable: 0,
            mem_parked: Vec::new(),
            scan_views: Vec::new(),
            scan_refs: Vec::new(),
        }
    }

    /// Whether a block slot is free.
    pub(crate) fn has_free_slot(&self) -> bool {
        self.blocks.iter().any(Option::is_none)
    }

    /// Install a traced block into a free slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free (callers check [`SmCore::has_free_slot`]).
    pub(crate) fn install_block(&mut self, global_block: usize, block: &'a BlockTrace, now: Cycle) {
        let slot = self
            .blocks
            .iter()
            .position(Option::is_none)
            .expect("install_block requires a free slot");
        let warps: Vec<WarpContext<'a>> = block
            .warps()
            .iter()
            .map(|w| WarpContext {
                insts: w.instructions(),
                next: 0,
                scoreboard: Scoreboard::new(),
                state: if w.is_empty() {
                    WarpState::Done
                } else {
                    WarpState::Running
                },
                parked: false,
            })
            .collect();
        let live = warps.iter().filter(|w| w.state != WarpState::Done).count() as u32;
        self.schedulable += live;
        self.blocks[slot] = Some(BlockCtx {
            global_block,
            warps,
            barrier_waiting: 0,
            live_warps: live,
            age: now,
        });
    }

    /// Whether any block is resident.
    pub(crate) fn is_active(&self) -> bool {
        self.blocks.iter().any(Option::is_some)
    }

    /// Apply a writeback immediately (memory completion path). A register
    /// of `u16::MAX` marks a completion nobody waits on (a rare dst-less
    /// pending access) and is ignored.
    pub(crate) fn writeback_now(&mut self, target: WbTarget) {
        if target.reg.0 == u16::MAX {
            return;
        }
        if let Some(block) = self.blocks[target.slot].as_mut() {
            let warp = &mut block.warps[target.warp];
            warp.scoreboard.writeback(target.reg);
            if warp.parked {
                warp.parked = false;
                self.schedulable += 1;
            }
        }
    }

    /// Stats snapshot.
    pub(crate) fn stats(&self) -> SmStats {
        self.stats
    }

    fn drain_writebacks(&mut self, now: Cycle) {
        while let Some(&Reverse((at, slot, warp, reg))) = self.wb_events.peek() {
            if at > now {
                break;
            }
            self.wb_events.pop();
            if let Some(block) = self.blocks[slot].as_mut() {
                let w = &mut block.warps[warp];
                w.scoreboard.writeback(Reg(reg));
                if w.parked {
                    w.parked = false;
                    self.schedulable += 1;
                }
            }
        }
    }

    /// Simulate one cycle; issues at most one instruction per sub-core.
    pub(crate) fn tick(
        &mut self,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        prof: &mut Profiler,
    ) -> TickOutcome {
        let t0 = prof.start();
        self.alu.tick(now);
        self.drain_writebacks(now);
        prof.record(ProfModule::Alu, t0);

        let mut outcome = TickOutcome::default();
        if self.is_active() {
            self.stats.active_cycles += 1;
            prof.add_cycles(ProfModule::WarpScheduler, 1);
        }

        if self.frontend.detailed {
            let t0 = prof.start();
            self.detailed_core_tick();
            prof.record(ProfModule::WarpScheduler, t0);
        }
        let mem_ok = mem.can_accept(self.id);
        if mem_ok && !self.mem_parked.is_empty() {
            let parked = std::mem::take(&mut self.mem_parked);
            for (slot, w) in parked {
                if let Some(block) = self.blocks[slot].as_mut() {
                    let warp = &mut block.warps[w];
                    if warp.parked {
                        warp.parked = false;
                        self.schedulable += 1;
                    }
                }
            }
        }
        if !self.frontend.detailed && self.schedulable == 0 {
            // Hybrid fast path: every warp is parked, at a barrier, or
            // done — no scheduler can issue, so skip the scan entirely.
            if self.is_active() {
                self.stats.stall_scoreboard += u64::from(self.cfg.sub_cores);
            }
            outcome.next_wakeup = self.wb_events.peek().map(|Reverse((at, ..))| *at);
            return outcome;
        }
        for sc in 0..self.cfg.sub_cores as usize {
            self.tick_sub_core(sc, now, mem, mem_ok, &mut outcome, prof);
        }

        // Wakeups for the skip-idle optimization: pending writebacks, and
        // next cycle if a port-busy stall can resolve soon.
        let mut wakeup = self.wb_events.peek().map(|Reverse((at, ..))| *at);
        if outcome.unit_busy_stall {
            wakeup = Some(wakeup.map_or(now + 1, |w| w.min(now + 1)));
        }
        outcome.next_wakeup = wakeup;
        outcome
    }

    /// The per-cycle fetch/decode work of the detailed baseline: every
    /// resident warp's fetch group is looked up in the instruction cache
    /// and its instruction-buffer dependences re-examined each cycle —
    /// exactly the frontend activity a detailed simulator like Accel-Sim
    /// performs (and the work the hybrid presets eliminate).
    fn detailed_core_tick(&mut self) {
        let frontend = &mut self.frontend;
        let stats = &mut self.stats;
        for block in self.blocks.iter().flatten() {
            for warp in &block.warps {
                if warp.state == WarpState::Done {
                    continue;
                }
                if let Some(inst) = warp.current() {
                    // Fetch: the fetch group is re-probed each cycle the
                    // warp occupies an ibuffer slot.
                    let line = u64::from(inst.pc) >> 7;
                    let set = (line as usize) % frontend.itags.len();
                    if frontend.itags[set] != line {
                        frontend.itags[set] = line;
                        stats.icache_misses += 1;
                    }
                    // Decode: dependence pre-check against the scoreboard.
                    std::hint::black_box(warp.scoreboard.outstanding());
                    std::hint::black_box(inst.srcs.len());
                }
            }
        }
    }

    fn tick_sub_core(
        &mut self,
        sc: usize,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        mem_ok: bool,
        outcome: &mut TickOutcome,
        prof: &mut Profiler,
    ) {
        // Collect warps of this sub-core: warp w of slot s belongs to
        // sub-core (w % sub_cores).
        let t_sched = prof.start();
        let sub_cores = self.cfg.sub_cores as usize;
        let mut views = std::mem::take(&mut self.scan_views);
        let mut refs = std::mem::take(&mut self.scan_refs);
        views.clear();
        refs.clear();
        let mut any_unit_busy = false;
        let mut any_scoreboard = false;
        let mut any_barrier = false;

        let alu = self.alu.as_ref();
        let schedulable = &mut self.schedulable;
        let mem_parked = &mut self.mem_parked;
        for (slot, block) in self.blocks.iter_mut().enumerate() {
            let Some(block) = block else { continue };
            let age = block.age;
            for (w, warp) in block.warps.iter_mut().enumerate() {
                if w % sub_cores != sc || warp.state == WarpState::Done {
                    continue;
                }
                let id = refs.len();
                refs.push((slot, w));
                let ready = if warp.state == WarpState::AtBarrier {
                    any_barrier = true;
                    false
                } else if warp.parked {
                    // Still waiting on a pending writeback: readiness
                    // cannot have changed, skip the full check.
                    any_scoreboard = true;
                    false
                } else {
                    match issue_check(alu, sc, warp, now, mem_ok) {
                        Ok(_) => true,
                        Err(Stall::Scoreboard) => {
                            warp.parked = true;
                            *schedulable -= 1;
                            any_scoreboard = true;
                            false
                        }
                        Err(Stall::UnitBusy) => {
                            any_unit_busy = true;
                            false
                        }
                        Err(Stall::MemQueue) => {
                            warp.parked = true;
                            *schedulable -= 1;
                            mem_parked.push((slot, w));
                            any_unit_busy = true;
                            false
                        }
                        Err(Stall::Empty) => false,
                    }
                };
                views.push(WarpView { id, ready, age });
            }
        }

        if any_unit_busy {
            outcome.unit_busy_stall = true;
        }
        let picked = self.schedulers[sc].pick(&views, now);
        let target = picked.map(|view_id| refs[view_id]);
        if target.is_none() {
            if any_scoreboard {
                self.stats.stall_scoreboard += 1;
            } else if any_unit_busy {
                self.stats.stall_unit_busy += 1;
            } else if any_barrier {
                self.stats.stall_barrier += 1;
            } else if !views.is_empty() {
                self.stats.stall_empty += 1;
            }
        }
        self.scan_views = views;
        self.scan_refs = refs;
        prof.record(ProfModule::WarpScheduler, t_sched);
        if let Some((slot, warp_idx)) = target {
            self.issue(slot, warp_idx, sc, now, mem, outcome, prof);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        slot: usize,
        warp_idx: usize,
        sc: usize,
        now: Cycle,
        mem: &mut dyn MemorySystem,
        outcome: &mut TickOutcome,
        prof: &mut Profiler,
    ) {
        // Copy only the small header fields; the payload stays in place
        // (cloning the instruction per issue would allocate on the hot
        // path).
        let (pc, opcode, dst) = {
            let inst = self.blocks[slot]
                .as_ref()
                .expect("picked warp exists")
                .warps[warp_idx]
                .current()
                .expect("ready warp has inst");
            (inst.pc, inst.opcode, inst.dst)
        };
        let fetch_penalty = self.frontend.fetch_penalty(pc, &mut self.stats);

        self.stats.issued += 1;
        outcome.issued += 1;

        match opcode.class() {
            OpcodeClass::Barrier => {
                let block = self.blocks[slot].as_mut().expect("picked warp exists");
                let warp = &mut block.warps[warp_idx];
                warp.next += 1;
                warp.state = WarpState::AtBarrier;
                self.schedulable -= 1;
                block.barrier_waiting += 1;
                if block.barrier_waiting == block.live_warps {
                    block.barrier_waiting = 0;
                    for w in &mut block.warps {
                        if w.state == WarpState::AtBarrier {
                            w.state = WarpState::Running;
                            self.schedulable += 1;
                        }
                    }
                }
            }
            OpcodeClass::Exit => {
                let completed = {
                    let block = self.blocks[slot].as_mut().expect("picked warp exists");
                    let warp = &mut block.warps[warp_idx];
                    warp.next += 1;
                    warp.state = WarpState::Done;
                    self.schedulable -= 1;
                    block.live_warps -= 1;
                    // A warp at the barrier may now satisfy it.
                    if block.live_warps > 0 && block.barrier_waiting == block.live_warps {
                        block.barrier_waiting = 0;
                        for w in &mut block.warps {
                            if w.state == WarpState::AtBarrier {
                                w.state = WarpState::Running;
                                self.schedulable += 1;
                            }
                        }
                    }
                    (block.live_warps == 0).then_some(block.global_block)
                };
                if let Some(global_block) = completed {
                    outcome.completed_blocks.push(global_block);
                    self.blocks[slot] = None;
                }
            }
            OpcodeClass::Memory => {
                self.stats.mem_insts += 1;
                let t0 = prof.start();
                self.issue_memory(slot, warp_idx, sc, now, fetch_penalty, mem, outcome, prof);
                prof.record(ProfModule::LdSt, t0);
            }
            _ => {
                let t0 = prof.start();
                let kind = unit_for_class(opcode.class()).expect("arithmetic class has a unit");
                let wb_at = self.alu.issue(sc, kind, now) + fetch_penalty;
                let block = self.blocks[slot].as_mut().expect("picked warp exists");
                let warp = &mut block.warps[warp_idx];
                warp.scoreboard.issue_dst(dst);
                warp.next += 1;
                if let Some(dst) = dst {
                    self.wb_events.push(Reverse((wb_at, slot, warp_idx, dst.0)));
                }
                prof.add_cycles(ProfModule::Alu, wb_at.saturating_sub(now));
                prof.record(ProfModule::Alu, t0);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_memory(
        &mut self,
        slot: usize,
        warp_idx: usize,
        sc: usize,
        now: Cycle,
        fetch_penalty: Cycle,
        mem: &mut dyn MemorySystem,
        outcome: &mut TickOutcome,
        prof: &mut Profiler,
    ) {
        // Occupy the LD/ST issue port.
        let agu_done = self.alu.issue(sc, ExecUnitKind::LdSt, now) + fetch_penalty;

        // Disjoint field borrows: the instruction stays borrowed from
        // `self.blocks` while `self.stats`/`self.frontend`/`self.mapping`
        // are used — no clone needed.
        let inst = self.blocks[slot]
            .as_ref()
            .expect("picked warp exists")
            .warps[warp_idx]
            .current()
            .expect("ready warp has inst");
        let dst = inst.dst;
        let mem_info = inst.mem.as_ref().expect("memory opcode carries payload");
        let lanes = inst.active_lanes();

        let completion = match mem_info.space {
            MemSpace::Shared => {
                // Banked scratchpad: conflict degree serializes the access.
                let degree = shared_conflict_degree_list(
                    &mem_info.addresses,
                    lanes,
                    self.cfg.shared_mem_banks,
                );
                if degree > 1 {
                    self.stats.shared_bank_conflicts += u64::from(degree - 1);
                }
                Some(agu_done + Cycle::from(self.cfg.shared_mem_latency) + Cycle::from(degree - 1))
            }
            MemSpace::Const => {
                let first = match &mem_info.addresses {
                    AddressList::Strided { base, .. } => *base,
                    AddressList::Explicit(a) => a.first().copied().unwrap_or(0),
                };
                let penalty = self.frontend.const_penalty(first, &mut self.stats);
                Some(agu_done + Cycle::from(self.cfg.shared_mem_latency) + penalty)
            }
            MemSpace::Global | MemSpace::Local => {
                let addrs = mem_info.addresses.expand(lanes);
                let txns = coalesce_accesses(
                    &self.mapping,
                    &addrs,
                    mem_info.width,
                    inst.opcode.is_store(),
                );
                if txns.is_empty() {
                    Some(agu_done)
                } else {
                    match mem.access(self.id, inst.pc, &txns, agu_done) {
                        MemReply::Done(at) => Some(at),
                        MemReply::Pending(token) => {
                            outcome.new_tokens.push((
                                token,
                                WbTarget {
                                    slot,
                                    warp: warp_idx,
                                    reg: dst.unwrap_or(Reg(u16::MAX)),
                                },
                            ));
                            None
                        }
                    }
                }
            }
        };

        let block = self.blocks[slot].as_mut().expect("picked warp exists");
        let warp = &mut block.warps[warp_idx];
        warp.scoreboard.issue_dst(dst);
        warp.next += 1;
        match completion {
            Some(at) => {
                prof.add_cycles(ProfModule::LdSt, at.saturating_sub(now));
                if let Some(dst) = dst {
                    self.wb_events.push(Reverse((at, slot, warp_idx, dst.0)));
                }
            }
            None => {
                // Writeback arrives through the memory-completion path.
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    Scoreboard,
    UnitBusy,
    /// The SM's LD/ST queue is full (memory instructions only).
    MemQueue,
    Empty,
}

/// Whether `warp`'s next instruction could issue right now on sub-core
/// `sc`, and if not, why.
fn issue_check(
    alu: &dyn AluModel,
    sc: usize,
    warp: &WarpContext<'_>,
    now: Cycle,
    mem_ok: bool,
) -> Result<ExecUnitKind, Stall> {
    let Some(inst) = warp.current() else {
        return Err(Stall::Empty);
    };
    let kind = unit_for(inst);
    if !warp.scoreboard.can_issue(inst) {
        return Err(Stall::Scoreboard);
    }
    if inst.opcode == Opcode::Exit && !warp.scoreboard.is_clear() {
        return Err(Stall::Scoreboard);
    }
    if inst.opcode.class() == OpcodeClass::Memory && !mem_ok {
        // LD/ST queue full: structural stall, resolves as fills drain.
        return Err(Stall::MemQueue);
    }
    if let Some(kind) = kind {
        if !alu.port_free(sc, kind, now) {
            return Err(Stall::UnitBusy);
        }
        return Ok(kind);
    }
    Ok(ExecUnitKind::Int) // barrier/exit issue through the scheduler only
}

/// Execution unit an opcode dispatches to; `None` for scheduler-internal
/// classes (barrier, exit).
fn unit_for(inst: &TraceInstruction) -> Option<ExecUnitKind> {
    unit_for_class(inst.opcode.class())
}

/// Maximum number of lanes mapping to the same shared-memory bank
/// (identical addresses broadcast and do not conflict). Allocation-free:
/// a warp has at most 32 lanes and the modeled GPUs at most 64 banks.
fn shared_conflict_degree(addrs: &[u64], banks: u32) -> u32 {
    let banks = u64::from(banks.max(1)).min(64);
    let mut sorted = [0u64; 32];
    let n = addrs.len().min(32);
    sorted[..n].copy_from_slice(&addrs[..n]);
    let uniq = &mut sorted[..n];
    uniq.sort_unstable();
    let mut counts = [0u8; 64];
    let mut degree = 1u32;
    let mut prev: Option<u64> = None;
    for &a in uniq.iter() {
        if prev == Some(a) {
            continue; // identical addresses broadcast
        }
        prev = Some(a);
        let bank = ((a / 4) % banks) as usize;
        counts[bank] += 1;
        degree = degree.max(u32::from(counts[bank]));
    }
    degree
}

/// [`shared_conflict_degree`] straight from a compressed [`AddressList`],
/// avoiding the per-instruction address expansion on the hot path.
fn shared_conflict_degree_list(list: &AddressList, lanes: u32, banks: u32) -> u32 {
    match list {
        AddressList::Strided { base, stride } => {
            if *stride == 0 || lanes <= 1 {
                return 1; // broadcast
            }
            let banks = u64::from(banks.max(1)).min(64);
            let mut counts = [0u8; 64];
            let mut degree = 1u32;
            for i in 0..u64::from(lanes.min(32)) {
                let a = base.wrapping_add(i * stride);
                let bank = ((a / 4) % banks) as usize;
                counts[bank] += 1;
                degree = degree.max(u32::from(counts[bank]));
            }
            degree
        }
        AddressList::Explicit(addrs) => shared_conflict_degree(addrs, banks),
    }
}

/// Execution unit for an opcode class ([`unit_for`] without the
/// instruction borrow).
fn unit_for_class(class: OpcodeClass) -> Option<ExecUnitKind> {
    match class {
        OpcodeClass::Int | OpcodeClass::Control => Some(ExecUnitKind::Int),
        OpcodeClass::Sp => Some(ExecUnitKind::Sp),
        OpcodeClass::Dp => Some(ExecUnitKind::Dp),
        OpcodeClass::Sfu => Some(ExecUnitKind::Sfu),
        OpcodeClass::Tensor => Some(ExecUnitKind::Tensor),
        OpcodeClass::Memory => Some(ExecUnitKind::LdSt),
        OpcodeClass::Barrier | OpcodeClass::Exit => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_conflicts_counted() {
        // 32 lanes, same bank (stride 128 bytes = 32 words): full conflict.
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        assert_eq!(shared_conflict_degree(&addrs, 32), 32);
        // Stride 4: conflict-free.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(shared_conflict_degree(&addrs, 32), 1);
        // Broadcast: same address everywhere, no conflict.
        let addrs = vec![0x40u64; 32];
        assert_eq!(shared_conflict_degree(&addrs, 32), 1);
        // Empty input (fully predicated-off warp).
        assert_eq!(shared_conflict_degree(&[], 32), 1);
    }

    #[test]
    fn unit_mapping_covers_all_classes() {
        use swiftsim_trace::InstBuilder;
        let cases = [
            (Opcode::Iadd, Some(ExecUnitKind::Int)),
            (Opcode::Bra, Some(ExecUnitKind::Int)),
            (Opcode::Ffma, Some(ExecUnitKind::Sp)),
            (Opcode::Dfma, Some(ExecUnitKind::Dp)),
            (Opcode::Mufu, Some(ExecUnitKind::Sfu)),
            (Opcode::Hmma, Some(ExecUnitKind::Tensor)),
            (Opcode::Bar, None),
            (Opcode::Exit, None),
        ];
        for (op, expect) in cases {
            let inst = InstBuilder::new(op).build();
            assert_eq!(unit_for(&inst), expect, "{op}");
        }
        let ldg = InstBuilder::new(Opcode::Ldg)
            .dst(1)
            .global_strided(0, 4, 4)
            .build();
        assert_eq!(unit_for(&ldg), Some(ExecUnitKind::LdSt));
    }
}
