//! ALU-pipeline models: cycle-accurate and the paper's improved analytical
//! model (§III-D1, Fig. 3).
//!
//! Arithmetic execution goes through Fetch, Decode, Issue, Read Operands,
//! Execute, and Writeback. The **cycle-accurate** model
//! ([`CycleAccurateAlu`]) keeps explicit stage registers per execution unit
//! and shifts them every cycle, arbitrating the sub-core's writeback ports —
//! the "thorough code" whose per-cycle execution makes detailed simulators
//! slow.
//!
//! The **improved analytical** model ([`AnalyticalAlu`]) exploits the
//! observation that "the execution time of arithmetic instructions remains
//! constant without resource contention": it keeps only the
//! cycle-accurately-observed *contention* state (issue-port busy times, the
//! orange boxes of Fig. 3) and adds the fixed instruction latency
//! analytically (the blue boxes), eliminating the per-cycle stage work.
//!
//! Both implement [`AluModel`], the fixed interface the Warp Scheduler &
//! Dispatch module programs against, so swapping them "does not affect
//! other modules" (§III-B2).

use crate::Cycle;
use std::collections::HashMap;
use swiftsim_config::{ExecUnitKind, SmConfig};

/// Writeback ports per sub-core cycle (result-bus width).
const WB_PORTS_PER_CYCLE: u8 = 2;

/// The execution-unit timing interface.
///
/// One instance models all execution units of one SM (indexed by sub-core
/// and unit kind). The Warp Scheduler & Dispatch module checks
/// [`AluModel::port_free`] before selecting a warp, then calls
/// [`AluModel::issue`]; the returned cycle is when the instruction's
/// destination register becomes available (the completion acknowledgment of
/// §III-B2).
pub trait AluModel: Send {
    /// Whether the issue port of `(sub_core, kind)` can accept an
    /// instruction at `now`.
    fn port_free(&self, sub_core: usize, kind: ExecUnitKind, now: Cycle) -> bool;

    /// Issue one warp instruction; returns its writeback cycle.
    fn issue(&mut self, sub_core: usize, kind: ExecUnitKind, now: Cycle) -> Cycle;

    /// Advance per-cycle internal state (stage registers). Cheap models
    /// no-op here.
    fn tick(&mut self, now: Cycle);

    /// Model name for metrics.
    fn name(&self) -> &'static str;
}

#[derive(Debug, Clone, Copy)]
struct UnitShape {
    initiation_interval: Cycle,
    latency: Cycle,
}

fn shapes(sm: &SmConfig) -> [UnitShape; 6] {
    let mut out = [UnitShape {
        initiation_interval: 1,
        latency: 1,
    }; 6];
    for kind in ExecUnitKind::ALL {
        let u = sm.exec_unit(kind);
        out[kind.index()] = UnitShape {
            initiation_interval: Cycle::from(u.initiation_interval(sm.warp_size)),
            latency: Cycle::from(u.latency),
        };
    }
    out
}

/// Operand-collector units per sub-core (Turing-like).
const COLLECTORS_PER_SUB_CORE: usize = 8;
/// Register-file banks per sub-core.
const REG_BANKS: u16 = 8;

/// One operand-collector unit: gathers source operands from the banked
/// register file before execution, one operand per bank per cycle.
#[derive(Debug, Clone, Copy, Default)]
struct CollectorUnit {
    /// Operands still to read; 0 = free.
    pending: u8,
    /// Register bank of the operand currently being read.
    bank: u16,
}

/// Fully detailed per-cycle pipeline model.
///
/// Beyond issue-port occupancy it simulates, every cycle, the structures a
/// detailed simulator like Accel-Sim walks: operand-collector units reading
/// source operands from a banked register file (with bank-conflict
/// serialization), explicit pipeline stage registers per execution unit,
/// and a writeback result bus with bounded ports.
#[derive(Debug, Clone)]
pub struct CycleAccurateAlu {
    shapes: [UnitShape; 6],
    /// Issue-port busy-until per (sub-core, kind).
    port_busy: Vec<[Cycle; 6]>,
    /// Explicit stage registers per (sub-core, kind): occupancy per stage,
    /// shifted every cycle. This is the detailed per-cycle work the hybrid
    /// model eliminates.
    stages: Vec<[Vec<u8>; 6]>,
    /// Operand-collector pool per sub-core.
    collectors: Vec<[CollectorUnit; COLLECTORS_PER_SUB_CORE]>,
    /// Register-bank busy flags per sub-core, rebuilt every cycle.
    bank_busy: Vec<[bool; REG_BANKS as usize]>,
    /// Writeback-port bookings per sub-core: cycle -> committed writebacks.
    wb_slots: Vec<HashMap<Cycle, u8>>,
    issued: u64,
    wb_conflict_delays: u64,
    operand_conflicts: u64,
}

impl CycleAccurateAlu {
    /// Build the detailed model for one SM.
    pub fn new(sm: &SmConfig) -> Self {
        let shapes = shapes(sm);
        let sub_cores = sm.sub_cores as usize;
        let stage_regs = |kind: usize| vec![0u8; shapes[kind].latency as usize];
        CycleAccurateAlu {
            shapes,
            port_busy: vec![[0; 6]; sub_cores],
            stages: (0..sub_cores)
                .map(|_| std::array::from_fn(stage_regs))
                .collect(),
            collectors: vec![[CollectorUnit::default(); COLLECTORS_PER_SUB_CORE]; sub_cores],
            bank_busy: vec![[false; REG_BANKS as usize]; sub_cores],
            wb_slots: vec![HashMap::new(); sub_cores],
            issued: 0,
            wb_conflict_delays: 0,
            operand_conflicts: 0,
        }
    }

    /// Instructions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Cumulative cycles lost to writeback-port conflicts.
    pub fn wb_conflict_delays(&self) -> u64 {
        self.wb_conflict_delays
    }

    /// Cumulative register-bank conflicts observed by the operand
    /// collectors.
    pub fn operand_conflicts(&self) -> u64 {
        self.operand_conflicts
    }
}

impl AluModel for CycleAccurateAlu {
    fn port_free(&self, sub_core: usize, kind: ExecUnitKind, now: Cycle) -> bool {
        self.port_busy[sub_core][kind.index()] <= now
            && self.collectors[sub_core].iter().any(|c| c.pending == 0)
    }

    fn issue(&mut self, sub_core: usize, kind: ExecUnitKind, now: Cycle) -> Cycle {
        let shape = self.shapes[kind.index()];
        self.port_busy[sub_core][kind.index()] = now + shape.initiation_interval;

        // Claim a free operand-collector unit; the instruction reads (on
        // average) two source operands, serialized on a bank conflict.
        let mut operand_delay = 0;
        if let Some(c) = self.collectors[sub_core]
            .iter_mut()
            .find(|c| c.pending == 0)
        {
            c.pending = 2;
            c.bank = (self.issued % u64::from(REG_BANKS)) as u16;
            if self.bank_busy[sub_core][c.bank as usize] {
                operand_delay = 1;
                self.operand_conflicts += 1;
            }
            self.bank_busy[sub_core][c.bank as usize] = true;
        }

        // Enter the first pipeline stage.
        let pipe = &mut self.stages[sub_core][kind.index()];
        pipe[0] = pipe[0].saturating_add(1);

        // Arbitrate a writeback port: at most WB_PORTS_PER_CYCLE results
        // retire per sub-core per cycle.
        let mut wb = now + shape.latency + operand_delay;
        let slots = &mut self.wb_slots[sub_core];
        loop {
            let booked = slots.entry(wb).or_insert(0);
            if *booked < WB_PORTS_PER_CYCLE {
                *booked += 1;
                break;
            }
            wb += 1;
            self.wb_conflict_delays += 1;
        }
        self.issued += 1;
        wb
    }

    fn tick(&mut self, now: Cycle) {
        // Walk every structure — the detailed model's per-cycle cost.
        for sc in 0..self.stages.len() {
            // Shift pipeline stage registers.
            for pipe in self.stages[sc].iter_mut() {
                for i in (1..pipe.len()).rev() {
                    pipe[i] = pipe[i - 1];
                }
                if let Some(first) = pipe.first_mut() {
                    *first = 0;
                }
            }
            // Operand collectors each read one operand per cycle; rebuild
            // bank reservations from the still-pending reads.
            self.bank_busy[sc] = [false; REG_BANKS as usize];
            for c in self.collectors[sc].iter_mut() {
                if c.pending > 0 {
                    c.pending -= 1;
                    c.bank = (c.bank + 1) % REG_BANKS;
                    if c.pending > 0 {
                        self.bank_busy[sc][c.bank as usize] = true;
                    }
                }
            }
        }
        // Retire stale writeback bookings.
        if now.is_multiple_of(64) {
            for slots in &mut self.wb_slots {
                slots.retain(|&cycle, _| cycle >= now);
            }
        }
    }

    fn name(&self) -> &'static str {
        "cycle_accurate_alu"
    }
}

/// The improved analytical ALU model of §III-D1.
#[derive(Debug, Clone)]
pub struct AnalyticalAlu {
    shapes: [UnitShape; 6],
    /// Contention state, still tracked cycle-accurately at issue (orange
    /// boxes of Fig. 3).
    port_busy: Vec<[Cycle; 6]>,
    issued: u64,
}

impl AnalyticalAlu {
    /// Build the analytical model for one SM.
    pub fn new(sm: &SmConfig) -> Self {
        AnalyticalAlu {
            shapes: shapes(sm),
            port_busy: vec![[0; 6]; sm.sub_cores as usize],
            issued: 0,
        }
    }

    /// Instructions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl AluModel for AnalyticalAlu {
    fn port_free(&self, sub_core: usize, kind: ExecUnitKind, now: Cycle) -> bool {
        self.port_busy[sub_core][kind.index()] <= now
    }

    fn issue(&mut self, sub_core: usize, kind: ExecUnitKind, now: Cycle) -> Cycle {
        let shape = self.shapes[kind.index()];
        // Contention delay (issue-port occupancy) is simulated; the rest of
        // the pipeline is the fixed latency added analytically.
        self.port_busy[sub_core][kind.index()] = now + shape.initiation_interval;
        self.issued += 1;
        now + shape.latency
    }

    fn tick(&mut self, _now: Cycle) {}

    fn name(&self) -> &'static str {
        "analytical_alu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn sm() -> SmConfig {
        presets::rtx2080ti().sm
    }

    #[test]
    fn uncontended_latency_matches_config() {
        let cfg = sm();
        let mut ca = CycleAccurateAlu::new(&cfg);
        let mut an = AnalyticalAlu::new(&cfg);
        for kind in [ExecUnitKind::Int, ExecUnitKind::Sp, ExecUnitKind::Sfu] {
            let lat = Cycle::from(cfg.exec_unit(kind).latency);
            assert_eq!(ca.issue(0, kind, 1000), 1000 + lat, "{kind}");
            assert_eq!(an.issue(0, kind, 1000), 1000 + lat, "{kind}");
        }
    }

    #[test]
    fn initiation_interval_blocks_port() {
        let cfg = sm(); // INT: 16 lanes -> II = 2 for 32-thread warps
        let mut ca = CycleAccurateAlu::new(&cfg);
        assert!(ca.port_free(0, ExecUnitKind::Int, 0));
        ca.issue(0, ExecUnitKind::Int, 0);
        assert!(!ca.port_free(0, ExecUnitKind::Int, 1));
        assert!(ca.port_free(0, ExecUnitKind::Int, 2));
        // Other sub-cores and units are unaffected.
        assert!(ca.port_free(1, ExecUnitKind::Int, 1));
        assert!(ca.port_free(0, ExecUnitKind::Sp, 1));
    }

    #[test]
    fn dp_unit_has_long_initiation_interval() {
        let cfg = sm(); // DP: 1 lane -> II = 32
        let mut an = AnalyticalAlu::new(&cfg);
        an.issue(0, ExecUnitKind::Dp, 0);
        assert!(!an.port_free(0, ExecUnitKind::Dp, 31));
        assert!(an.port_free(0, ExecUnitKind::Dp, 32));
    }

    #[test]
    fn writeback_bus_conflicts_delay_detailed_model() {
        let cfg = sm();
        let mut ca = CycleAccurateAlu::new(&cfg);
        // INT and SP share latency 4; issue 3 same-cycle-retiring
        // instructions on one sub-core: only 2 writeback ports.
        let a = ca.issue(0, ExecUnitKind::Int, 0);
        let b = ca.issue(0, ExecUnitKind::Sp, 0);
        // Different unit kind with same latency to force a 3rd writer: use
        // another INT after its II on an artificial same-completion path.
        let c = ca.issue(1, ExecUnitKind::Int, 0); // different sub-core: own ports
        assert_eq!(a, 4);
        assert_eq!(b, 4);
        assert_eq!(c, 4);
        // Third writer on sub-core 0 completing at cycle 4:
        let ca2 = CycleAccurateAlu::new(&cfg);
        let mut cfg2 = sm();
        cfg2.exec_units[ExecUnitKind::Sfu.index()] = swiftsim_config::ExecUnitConfig::new(4, 4);
        let mut ca3 = CycleAccurateAlu::new(&cfg2);
        let x = ca3.issue(0, ExecUnitKind::Int, 0);
        let y = ca3.issue(0, ExecUnitKind::Sp, 0);
        let z = ca3.issue(0, ExecUnitKind::Sfu, 0);
        assert_eq!((x, y), (4, 4));
        assert_eq!(z, 5, "third same-cycle writeback is bumped");
        assert_eq!(ca3.wb_conflict_delays(), 1);
        // The analytical model ignores the writeback bus — its simplification.
        let mut an = AnalyticalAlu::new(&cfg2);
        assert_eq!(an.issue(0, ExecUnitKind::Int, 0), 4);
        assert_eq!(an.issue(0, ExecUnitKind::Sp, 0), 4);
        assert_eq!(an.issue(0, ExecUnitKind::Sfu, 0), 4);
        let _ = (ca.issued(), ca2.issued(), an.issued());
    }

    #[test]
    fn tick_is_cheap_for_analytical_model() {
        let cfg = sm();
        let mut an = AnalyticalAlu::new(&cfg);
        // Must be callable arbitrarily often without changing behavior.
        for now in 0..1000 {
            an.tick(now);
        }
        assert_eq!(an.issue(0, ExecUnitKind::Int, 5000), 5004);
    }

    #[test]
    fn detailed_tick_shifts_stages() {
        let cfg = sm();
        let mut ca = CycleAccurateAlu::new(&cfg);
        ca.issue(0, ExecUnitKind::Sp, 0);
        // One occupant entered stage 0; after a tick it is in stage 1.
        assert_eq!(ca.stages[0][ExecUnitKind::Sp.index()][0], 1);
        ca.tick(1);
        assert_eq!(ca.stages[0][ExecUnitKind::Sp.index()][0], 0);
        assert_eq!(ca.stages[0][ExecUnitKind::Sp.index()][1], 1);
    }

    #[test]
    fn issue_counters_advance() {
        let cfg = sm();
        let mut ca = CycleAccurateAlu::new(&cfg);
        let mut an = AnalyticalAlu::new(&cfg);
        for i in 0..10 {
            ca.issue((i % 4) as usize, ExecUnitKind::Int, i * 10);
            an.issue((i % 4) as usize, ExecUnitKind::Int, i * 10);
        }
        assert_eq!(ca.issued(), 10);
        assert_eq!(an.issued(), 10);
    }
}
