//! Swift-Sim: a modular and hybrid GPU architecture simulation framework.
//!
//! This crate is the Rust reproduction of the framework described in
//! *"Swift-Sim: A Modular and Hybrid GPU Architecture Simulation
//! Framework"* (DATE 2025). Every GPU component — block scheduler, warp
//! scheduler & dispatch, execution units, LD/ST units, caches, NoC, DRAM —
//! is an independent module behind a fixed interface, so each can be
//! simulated **cycle-accurately** or with an **analytical model** without
//! touching its neighbours (§III-B2 of the paper).
//!
//! The two hybrid working examples of §III-D are provided:
//!
//! * an **improved analytical ALU model** ([`alu::AnalyticalAlu`]): fixed
//!   per-opcode latencies plus contention observed at issue, instead of
//!   per-cycle pipeline-stage simulation;
//! * an **analytical memory model** ([`mem_system::AnalyticalMemory`]):
//!   per-PC expected latency `L_inst = L_L1·R_L1 + L_L2·R_L2 +
//!   L_DRAM·R_DRAM` (Eq. 1) plus a contention adder, instead of simulating
//!   caches, interconnect and DRAM.
//!
//! Three simulator presets mirror the paper's evaluation (§IV-A3):
//!
//! | Preset | ALU | Memory | Frontend caches |
//! |---|---|---|---|
//! | [`SimulatorPreset::Detailed`] (the Accel-Sim stand-in) | cycle-accurate | cycle-accurate | modeled |
//! | [`SimulatorPreset::SwiftBasic`] | analytical | cycle-accurate | simplified |
//! | [`SimulatorPreset::SwiftMemory`] | analytical | analytical (Eq. 1) | simplified |
//!
//! # Examples
//!
//! ```
//! use swiftsim_config::presets;
//! use swiftsim_core::{RunOptions, SimulatorPreset};
//! use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-block toy application.
//! let mut kernel = KernelTrace::new("toy", (2, 1, 1), (32, 1, 1));
//! for b in 0u64..2 {
//!     let blk = kernel.push_block();
//!     let w = blk.push_warp();
//!     w.push(InstBuilder::new(Opcode::Ldg).pc(0).dst(2).src(1).global_strided(b * 0x1000, 4, 4));
//!     w.push(InstBuilder::new(Opcode::Ffma).pc(16).dst(3).src(2).src(2));
//!     w.push(InstBuilder::new(Opcode::Exit).pc(32));
//! }
//! let app = ApplicationTrace::new("toy", vec![kernel]);
//!
//! let options = RunOptions::default().with_preset(SimulatorPreset::SwiftMemory);
//! let result = swiftsim_core::run(&app, &presets::rtx2080ti(), &options)?;
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
mod block_scheduler;
mod builder;
pub mod checkpoint;
mod error;
mod fidelity;
mod gpu;
mod input;
mod json;
pub mod mem_system;
mod options;
mod parallel;
mod prefetch;
mod result;
mod sampling;
mod scheduler;
mod scoreboard;
mod sm;
mod spsc;
mod stats;
mod twophase;

pub use alu::AluModel;
pub use block_scheduler::{BlockScheduler, Occupancy};
pub use builder::{run, GpuSimulator, SimulatorPreset};
pub use checkpoint::Snapshot;
pub use error::{panic_message, SimError, DEADLOCK_MARKER};
pub use fidelity::{
    AluModelKind, FidelityConfig, FrontendModelKind, MemoryModelKind, SamplingPolicy, SkipPolicy,
    SyncQuantum, DEFAULT_SAMPLING_REPS,
};
pub use input::TraceInput;
pub use json::RESULT_SCHEMA_VERSION;
pub use mem_system::{MemReply, MemorySystem};
pub use options::{CheckpointOptions, RunOptions};
pub use parallel::max_threads;
pub use result::{Confidence, KernelResult, SimulationResult};
pub use scheduler::{GtoScheduler, LrrScheduler, TwoLevelScheduler, WarpSchedulerPolicy, WarpView};
pub use scoreboard::Scoreboard;
pub use stats::{StatId, StatUnit, UnknownStat};

/// A simulation cycle index.
pub type Cycle = u64;
