//! Warp Scheduler & Dispatch policies (§III-B1, §III-D).
//!
//! The warp scheduler is the paper's canonical "module of interest": its
//! working example assumes an architect exploring *a new warp scheduling
//! algorithm*, so the scheduler is simulated cycle-accurately in every
//! preset and is trivially replaceable — a policy only sees an abstract
//! [`WarpView`] list and returns which warp to issue from.
//!
//! Three policies are provided: greedy-then-oldest ([`GtoScheduler`], the
//! Table II default), loose round-robin ([`LrrScheduler`]), and a
//! two-level scheduler ([`TwoLevelScheduler`]).

use swiftsim_config::SchedulerPolicy;

/// What a scheduling policy is allowed to know about one warp when picking
/// the next issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpView {
    /// Stable identifier of the warp within its sub-core.
    pub id: usize,
    /// Whether the warp has an instruction ready to issue this cycle
    /// (hazards and structural constraints already checked).
    pub ready: bool,
    /// Cycle at which the warp's current thread block was dispatched to the
    /// SM; lower = older (GTO's tie-break).
    pub age: u64,
}

/// A warp-scheduling policy.
///
/// Implementations must be deterministic: simulation reproducibility depends
/// on it. The trait is object-safe so the sub-core holds a
/// `Box<dyn WarpSchedulerPolicy>`.
pub trait WarpSchedulerPolicy: Send {
    /// Choose among `warps` the one to issue from this cycle, or `None`
    /// when no warp is ready. `now` is the current cycle.
    ///
    /// # No-pick idempotence (event-engine contract)
    ///
    /// When every view is unready, repeated `pick` calls with the same
    /// input must reach a fixed point by the second call: after one
    /// all-unready pick, further identical picks must return `None`
    /// without observable state change. The event-driven engine relies on
    /// this to memoize quiescent cycles — it may *omit* `pick` calls for
    /// cycles it proves identical, so any internal bookkeeping (round-robin
    /// cursors, greedy last-issued state, fetch groups) must not advance on
    /// an all-unready cycle in a way that alters a later successful pick.
    /// All built-in policies satisfy this: GTO and LRR mutate state only on
    /// a successful pick, and the two-level scheduler's active-set rotation
    /// reaches its fixed point on the first all-unready call.
    fn pick(&mut self, warps: &[WarpView], now: u64) -> Option<usize>;

    /// Human-readable policy name for metrics and reports.
    fn name(&self) -> &'static str;
}

/// Instantiate the policy configured in [`SchedulerPolicy`].
pub fn make_policy(policy: SchedulerPolicy) -> Box<dyn WarpSchedulerPolicy> {
    match policy {
        SchedulerPolicy::Gto => Box::new(GtoScheduler::new()),
        SchedulerPolicy::Lrr => Box::new(LrrScheduler::new()),
        SchedulerPolicy::TwoLevel => Box::new(TwoLevelScheduler::new(8)),
    }
}

/// Greedy-then-oldest: keep issuing from the same warp until it stalls,
/// then fall back to the oldest ready warp.
#[derive(Debug, Clone, Default)]
pub struct GtoScheduler {
    last: Option<usize>,
}

impl GtoScheduler {
    /// Create a GTO scheduler.
    pub fn new() -> Self {
        GtoScheduler::default()
    }
}

impl WarpSchedulerPolicy for GtoScheduler {
    fn pick(&mut self, warps: &[WarpView], _now: u64) -> Option<usize> {
        // Greedy: stick with the previous warp while it stays ready.
        if let Some(last) = self.last {
            if warps.iter().any(|w| w.id == last && w.ready) {
                return Some(last);
            }
        }
        // Oldest ready (age, then id for determinism).
        let pick = warps
            .iter()
            .filter(|w| w.ready)
            .min_by_key(|w| (w.age, w.id))?;
        self.last = Some(pick.id);
        Some(pick.id)
    }

    fn name(&self) -> &'static str {
        "gto"
    }
}

/// Loose round-robin: rotate through ready warps starting after the last
/// one that issued.
#[derive(Debug, Clone, Default)]
pub struct LrrScheduler {
    next: usize,
}

impl LrrScheduler {
    /// Create an LRR scheduler.
    pub fn new() -> Self {
        LrrScheduler::default()
    }
}

impl WarpSchedulerPolicy for LrrScheduler {
    fn pick(&mut self, warps: &[WarpView], _now: u64) -> Option<usize> {
        if warps.is_empty() {
            return None;
        }
        let n = warps.len();
        for off in 0..n {
            let idx = (self.next + off) % n;
            if warps[idx].ready {
                self.next = (idx + 1) % n;
                return Some(warps[idx].id);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "lrr"
    }
}

/// Two-level scheduler: a small *active set* is scheduled round-robin;
/// warps that stall are demoted to the pending set and replaced by pending
/// warps, hiding long-latency operations with a small selection window.
#[derive(Debug, Clone)]
pub struct TwoLevelScheduler {
    active_size: usize,
    active: Vec<usize>,
    next: usize,
}

impl TwoLevelScheduler {
    /// Create a two-level scheduler with the given active-set size.
    pub fn new(active_size: usize) -> Self {
        TwoLevelScheduler {
            active_size: active_size.max(1),
            active: Vec::new(),
            next: 0,
        }
    }
}

impl WarpSchedulerPolicy for TwoLevelScheduler {
    fn pick(&mut self, warps: &[WarpView], _now: u64) -> Option<usize> {
        // Demote active warps that are no longer ready.
        self.active
            .retain(|id| warps.iter().any(|w| w.id == *id && w.ready));
        // Promote ready pending warps into free active slots (by age).
        if self.active.len() < self.active_size {
            let mut candidates: Vec<&WarpView> = warps
                .iter()
                .filter(|w| w.ready && !self.active.contains(&w.id))
                .collect();
            candidates.sort_by_key(|w| (w.age, w.id));
            for c in candidates {
                if self.active.len() >= self.active_size {
                    break;
                }
                self.active.push(c.id);
            }
        }
        if self.active.is_empty() {
            return None;
        }
        let idx = self.next % self.active.len();
        self.next = self.next.wrapping_add(1);
        Some(self.active[idx])
    }

    fn name(&self) -> &'static str {
        "two_level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(ready: &[bool]) -> Vec<WarpView> {
        ready
            .iter()
            .enumerate()
            .map(|(id, &r)| WarpView {
                id,
                ready: r,
                age: id as u64,
            })
            .collect()
    }

    #[test]
    fn gto_sticks_with_current_warp() {
        let mut s = GtoScheduler::new();
        let w = views(&[true, true, true]);
        let first = s.pick(&w, 0).unwrap();
        assert_eq!(first, 0, "oldest first");
        // Still ready: greedy keeps picking it.
        assert_eq!(s.pick(&w, 1), Some(0));
        // Warp 0 stalls: fall to the next oldest.
        let w2 = views(&[false, true, true]);
        assert_eq!(s.pick(&w2, 2), Some(1));
        // And becomes the new greedy target.
        assert_eq!(s.pick(&views(&[true, true, true]), 3), Some(1));
    }

    #[test]
    fn gto_prefers_oldest_block() {
        let mut s = GtoScheduler::new();
        let mut w = views(&[true, true]);
        w[0].age = 100; // warp 0 belongs to a younger block
        w[1].age = 5;
        assert_eq!(s.pick(&w, 0), Some(1));
    }

    #[test]
    fn lrr_rotates() {
        let mut s = LrrScheduler::new();
        let w = views(&[true, true, true]);
        assert_eq!(s.pick(&w, 0), Some(0));
        assert_eq!(s.pick(&w, 1), Some(1));
        assert_eq!(s.pick(&w, 2), Some(2));
        assert_eq!(s.pick(&w, 3), Some(0));
    }

    #[test]
    fn lrr_skips_stalled() {
        let mut s = LrrScheduler::new();
        assert_eq!(s.pick(&views(&[false, true, false]), 0), Some(1));
        assert_eq!(s.pick(&views(&[true, false, false]), 1), Some(0));
    }

    #[test]
    fn no_ready_warp_returns_none() {
        let mut gto = GtoScheduler::new();
        let mut lrr = LrrScheduler::new();
        let mut tl = TwoLevelScheduler::new(4);
        let w = views(&[false, false]);
        assert_eq!(gto.pick(&w, 0), None);
        assert_eq!(lrr.pick(&w, 0), None);
        assert_eq!(tl.pick(&w, 0), None);
        assert_eq!(gto.pick(&[], 0), None);
        assert_eq!(lrr.pick(&[], 0), None);
    }

    #[test]
    fn two_level_bounds_active_set() {
        let mut s = TwoLevelScheduler::new(2);
        let w = views(&[true, true, true, true]);
        let mut picked = std::collections::HashSet::new();
        for now in 0..8 {
            picked.insert(s.pick(&w, now).unwrap());
        }
        // Only the 2 oldest warps rotate while they stay ready.
        assert_eq!(picked, [0usize, 1].into_iter().collect());
    }

    #[test]
    fn two_level_promotes_on_stall() {
        let mut s = TwoLevelScheduler::new(1);
        assert_eq!(s.pick(&views(&[true, true]), 0), Some(0));
        // Warp 0 stalls: warp 1 is promoted.
        assert_eq!(s.pick(&views(&[false, true]), 1), Some(1));
    }

    #[test]
    fn factory_matches_config() {
        assert_eq!(make_policy(SchedulerPolicy::Gto).name(), "gto");
        assert_eq!(make_policy(SchedulerPolicy::Lrr).name(), "lrr");
        assert_eq!(make_policy(SchedulerPolicy::TwoLevel).name(), "two_level");
    }

    #[test]
    fn policies_are_deterministic() {
        let seq = |mut p: Box<dyn WarpSchedulerPolicy>| -> Vec<Option<usize>> {
            (0..20)
                .map(|now| {
                    let ready: Vec<bool> = (0..4).map(|i| (now + i) % 3 != 0).collect();
                    p.pick(&views(&ready), now as u64)
                })
                .collect()
        };
        for policy in [
            SchedulerPolicy::Gto,
            SchedulerPolicy::Lrr,
            SchedulerPolicy::TwoLevel,
        ] {
            assert_eq!(seq(make_policy(policy)), seq(make_policy(policy)));
        }
    }
}
