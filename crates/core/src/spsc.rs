//! Single-producer single-consumer event queues for the two-phase parallel
//! engine (see [`crate::twophase`]).
//!
//! Each shard worker owns exactly one [`Sender`] and the coordinator owns
//! the matching [`Receiver`], so every queue is used strictly SPSC. The
//! transport is `std::sync::mpsc::channel`, whose core has been the
//! lock-free crossbeam-channel queue since Rust 1.67 — pushes and pops are
//! wait-free list operations, no mutex is ever taken on the hot path. The
//! wrapper narrows the std API to the operations the engine's protocol is
//! allowed to use and makes the producer side non-cloneable, so the SPSC
//! discipline is enforced by the type system rather than by convention.
//!
//! # Protocol guarantees
//!
//! * **FIFO**: the consumer observes events in exactly the order the
//!   producer pushed them. The commit phase relies on this: a shard's
//!   buffer order (cycle-major, then SM, then sub-core) *is* the
//!   deterministic order its events are applied in.
//! * **Visibility**: a `recv` on any other channel that happens-after the
//!   producer's pushes (the worker sends its phase summary last) makes all
//!   pushed events visible to `try_pop` — the consumer never needs to
//!   block on this queue.

use std::sync::mpsc;

/// Producer half: owned by exactly one shard worker.
pub(crate) struct Sender<T> {
    tx: mpsc::Sender<T>,
}

/// Consumer half: owned by the coordinator.
pub(crate) struct Receiver<T> {
    rx: mpsc::Receiver<T>,
}

/// Create a new SPSC queue.
pub(crate) fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { tx }, Receiver { rx })
}

impl<T> Sender<T> {
    /// Push one event. Returns `false` when the consumer is gone (the
    /// coordinator exited early, e.g. on another shard's error) — the
    /// producer should wind down.
    pub(crate) fn push(&self, value: T) -> bool {
        self.tx.send(value).is_ok()
    }
}

impl<T> Receiver<T> {
    /// Pop the next event if one is already visible.
    #[cfg(test)]
    pub(crate) fn try_pop(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }

    /// Pop exactly `n` events that the producer is known to have pushed
    /// (e.g. a count carried by a phase summary received after the pushes).
    ///
    /// # Panics
    ///
    /// Panics if the producer disconnected before `n` events arrived —
    /// that is a protocol bug, not a recoverable condition.
    pub(crate) fn pop_n(&self, n: usize, out: &mut Vec<T>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.rx.recv().expect("SPSC producer vanished mid-batch"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = channel();
        for i in 0..100 {
            assert!(tx.push(i));
        }
        let mut out = Vec::new();
        rx.pop_n(100, &mut out);
        assert_eq!(out, (0..100).collect::<Vec<i32>>());
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn cross_thread_batches_are_visible_after_summary() {
        // Mirrors the engine's protocol: records go through the SPSC queue,
        // the per-phase summary (carrying the count) through a separate
        // channel; receiving the summary guarantees the records are
        // poppable.
        let (tx, rx) = channel::<u64>();
        let (sum_tx, sum_rx) = std::sync::mpsc::channel::<usize>();
        let producer = std::thread::spawn(move || {
            for batch in 0..50u64 {
                let n = (batch % 7) as usize;
                for i in 0..n {
                    assert!(tx.push(batch * 100 + i as u64));
                }
                sum_tx.send(n).unwrap();
            }
        });
        let mut out = Vec::new();
        for batch in 0..50u64 {
            let n = sum_rx.recv().unwrap();
            out.clear();
            rx.pop_n(n, &mut out);
            assert_eq!(
                out,
                (0..n).map(|i| batch * 100 + i as u64).collect::<Vec<_>>()
            );
        }
        producer.join().unwrap();
    }

    #[test]
    fn push_reports_consumer_disconnect() {
        let (tx, rx) = channel();
        assert!(tx.push(1u8));
        drop(rx);
        assert!(!tx.push(2));
    }
}
