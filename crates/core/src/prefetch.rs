//! Background kernel decode for streaming trace ingestion.
//!
//! The simulator consumes kernels strictly in order, so while kernel *k*
//! simulates, kernel *k+1* can already be decoding from its
//! [`TraceSource`] on a scoped background thread. [`Prefetcher`] owns that
//! pipeline: at any moment at most one decoded kernel is in flight, so
//! peak memory stays at ~2 decoded kernels regardless of application size.
//!
//! Decode work is attributed to [`ProfModule::TraceDecode`] on the
//! prefetcher's own profiler (its own track in parallel runs), so the
//! overlap between decode and simulation is visible in Perfetto traces.

use crate::error::{panic_message, SimError};
use std::borrow::Cow;
use swiftsim_metrics::{ProfModule, Profiler};
use swiftsim_trace::{KernelTrace, TraceError, TraceSource};

type DecodeOutput<'env> = (Result<Cow<'env, KernelTrace>, TraceError>, Profiler);

/// Decode kernel `idx` and attribute the time to a `decode k{idx}:{name}`
/// profiler frame.
fn decode_one<'env>(
    source: &'env dyn TraceSource,
    idx: usize,
    prof: &mut Profiler,
) -> Result<Cow<'env, KernelTrace>, TraceError> {
    let meta = source.kernel_meta(idx);
    prof.begin_frame(&format!("decode k{idx}:{}", meta.name));
    let t0 = prof.start();
    let res = source.decode_kernel(idx);
    if let Some(t0) = t0 {
        prof.record_wall_ns(
            ProfModule::TraceDecode,
            t0.elapsed().as_nanos() as u64,
            meta.num_insts,
        );
    }
    prof.end_frame();
    res
}

/// Pipelined kernel decode over a [`TraceSource`].
///
/// Call [`Prefetcher::get`] with consecutive indices starting at 0; each
/// call returns kernel *k* and (when threaded) immediately starts decoding
/// kernel *k+1* in the background, so the decode overlaps whatever the
/// caller does with kernel *k*. In-memory sources skip the background
/// thread: their decode is a borrow, and a thread round-trip per kernel
/// would only add latency.
pub(crate) struct Prefetcher<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    source: &'env dyn TraceSource,
    threaded: bool,
    schedule: Vec<usize>,
    next_spawn: usize,
    next_get: usize,
    pending: Option<std::thread::ScopedJoinHandle<'scope, DecodeOutput<'env>>>,
    prof: Option<Profiler>,
}

impl<'scope, 'env> Prefetcher<'scope, 'env> {
    /// Start the pipeline over every kernel in the source. `prof` is the
    /// profiler decode frames land on; `threaded` enables the background
    /// thread (callers pass `false` for in-memory sources). When threaded,
    /// the first scheduled decode starts immediately.
    pub(crate) fn new(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        source: &'env dyn TraceSource,
        prof: Profiler,
        threaded: bool,
    ) -> Self {
        let schedule = (0..source.num_kernels()).collect();
        Prefetcher::with_schedule(scope, source, prof, threaded, schedule)
    }

    /// Start the pipeline over an explicit, strictly increasing subset of
    /// kernel indices — a sampled run decodes only its detailed launches,
    /// a resumed run only the ones past its snapshot.
    pub(crate) fn with_schedule(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        source: &'env dyn TraceSource,
        prof: Profiler,
        threaded: bool,
        schedule: Vec<usize>,
    ) -> Self {
        debug_assert!(schedule.windows(2).all(|w| w[0] < w[1]));
        let mut p = Prefetcher {
            scope,
            source,
            threaded,
            schedule,
            next_spawn: 0,
            next_get: 0,
            pending: None,
            prof: Some(prof),
        };
        p.maybe_spawn();
        p
    }

    fn maybe_spawn(&mut self) {
        if self.threaded && self.next_spawn < self.schedule.len() {
            let idx = self.schedule[self.next_spawn];
            self.next_spawn += 1;
            let source = self.source;
            let mut prof = self.prof.take().expect("profiler is checked in");
            self.pending = Some(self.scope.spawn(move || {
                let res = decode_one(source, idx, &mut prof);
                (res, prof)
            }));
        }
    }

    /// Fetch kernel `idx` — which must be the next scheduled index — and
    /// start decoding the following scheduled kernel in the background.
    pub(crate) fn get(&mut self, idx: usize) -> Result<Cow<'env, KernelTrace>, SimError> {
        debug_assert_eq!(Some(&idx), self.schedule.get(self.next_get));
        self.next_get += 1;
        let res = if self.threaded {
            match self.pending.take().expect("a decode is pending").join() {
                Ok((res, prof)) => {
                    self.prof = Some(prof);
                    self.maybe_spawn();
                    res
                }
                Err(payload) => {
                    // The profiler died with the thread; park a stand-in so
                    // the pipeline stays consistent while unwinding.
                    self.prof = Some(Profiler::disabled());
                    return Err(SimError::WorkerPanic {
                        context: format!("decoding kernel {idx}"),
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        } else {
            let mut prof = self.prof.take().expect("profiler is checked in");
            let res = decode_one(self.source, idx, &mut prof);
            self.prof = Some(prof);
            res
        };
        res.map_err(SimError::from)
    }

    /// Tear down the pipeline and hand back the decode profiler. Any
    /// still-running decode (e.g. after an early error) is joined and
    /// discarded.
    pub(crate) fn finish(mut self) -> Profiler {
        if let Some(handle) = self.pending.take() {
            if let Ok((_, prof)) = handle.join() {
                self.prof = Some(prof);
            }
        }
        self.prof.take().unwrap_or_else(Profiler::disabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};

    fn app(kernels: usize) -> ApplicationTrace {
        let mut v = Vec::new();
        for i in 0..kernels {
            let mut k = KernelTrace::new(format!("k{i}"), (1, 1, 1), (32, 1, 1));
            let b = k.push_block();
            let w = b.push_warp();
            w.push(InstBuilder::new(Opcode::Iadd).pc(0).dst(1).src(1));
            w.push(InstBuilder::new(Opcode::Exit).pc(16));
            v.push(k);
        }
        ApplicationTrace::new("pf", v)
    }

    #[test]
    fn delivers_kernels_in_order_threaded_and_inline() {
        let app = app(4);
        for threaded in [false, true] {
            std::thread::scope(|scope| {
                let mut pf = Prefetcher::new(scope, &app, Profiler::disabled(), threaded);
                for i in 0..4 {
                    let k = pf.get(i).expect("decode");
                    assert_eq!(k.name, format!("k{i}"));
                }
                pf.finish();
            });
        }
    }

    #[test]
    fn records_decode_frames() {
        let app = app(2);
        let epoch = std::time::Instant::now();
        let prof = std::thread::scope(|scope| {
            let mut pf = Prefetcher::new(scope, &app, Profiler::enabled_on_track(epoch, 7), true);
            for i in 0..2 {
                pf.get(i).expect("decode");
            }
            pf.finish()
        });
        let frames = prof.frames();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].name, "decode k0:k0");
        assert_eq!(frames[0].track, 7);
        assert_eq!(frames[1].events(ProfModule::TraceDecode), 2);
    }

    #[test]
    fn schedule_skips_unlisted_kernels() {
        let app = app(6);
        for threaded in [false, true] {
            std::thread::scope(|scope| {
                let mut pf = Prefetcher::with_schedule(
                    scope,
                    &app,
                    Profiler::disabled(),
                    threaded,
                    vec![1, 4, 5],
                );
                for i in [1usize, 4, 5] {
                    let k = pf.get(i).expect("decode");
                    assert_eq!(k.name, format!("k{i}"));
                }
                pf.finish();
            });
        }
    }

    #[test]
    fn empty_source_is_fine() {
        let app = app(0);
        std::thread::scope(|scope| {
            let pf = Prefetcher::new(scope, &app, Profiler::disabled(), true);
            pf.finish();
        });
    }
}
