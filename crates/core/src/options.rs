//! Run configuration: one [`RunOptions`] value carries everything a
//! simulation run needs beyond the hardware description.
//!
//! The `SimulatorBuilder` surface grew one setter per PR (threads, profile,
//! fidelity, per-module overrides…); sampling and checkpointing would have
//! added five more. [`RunOptions`] collapses that surface into a single
//! plain-data struct with `Default` + builder-style `with_*` methods,
//! consumed by [`crate::run`] and [`crate::GpuSimulator::try_new`]:
//!
//! ```
//! use swiftsim_config::presets;
//! use swiftsim_core::{RunOptions, SimulatorPreset};
//!
//! let options = RunOptions::default()
//!     .with_preset(SimulatorPreset::SwiftMemory)
//!     .with_threads(2);
//! let sim = swiftsim_core::GpuSimulator::try_new(presets::rtx2080ti(), &options).unwrap();
//! assert!(sim.description().contains("analytical_memory"));
//! ```

use crate::builder::SimulatorPreset;
use crate::fidelity::{FidelityConfig, SamplingPolicy};
use std::path::PathBuf;

/// Checkpoint/resume knobs of one run.
///
/// Snapshots are written at kernel boundaries (the only points where the
/// engine's dynamic state — MSHRs, event heaps, in-flight requests — is
/// provably empty), so a resumed run replays the remaining kernels against
/// restored persistent state and is **bit-identical** to an uninterrupted
/// one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Write a snapshot here after every kernel boundary (atomically:
    /// write-then-rename, each snapshot replacing the last).
    pub write_to: Option<PathBuf>,
    /// Load a snapshot from here before simulating and continue from its
    /// kernel boundary. The snapshot's identity (trace content hash,
    /// fidelity, thread count) must match this run.
    pub resume_from: Option<PathBuf>,
    /// Stop after this many kernels, writing a final snapshot to
    /// `write_to`. The deterministic stand-in for "the process was killed
    /// mid-application": the partial result covers only the simulated
    /// prefix.
    pub halt_after: Option<usize>,
}

impl CheckpointOptions {
    /// Whether any checkpoint behavior is requested.
    pub fn is_active(&self) -> bool {
        self.write_to.is_some() || self.resume_from.is_some() || self.halt_after.is_some()
    }
}

/// Everything a simulation run needs beyond the hardware description:
/// fidelity (including sampling), thread count, profiling, checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Per-module fidelity plan (presets are aliases over it).
    pub fidelity: FidelityConfig,
    /// Worker threads (SM-sharded). `0` = auto: host parallelism capped at
    /// the SM count. Validated against the configuration by
    /// [`crate::GpuSimulator::try_new`].
    pub threads: usize,
    /// Record per-module wall-time/cycle attribution while simulating.
    pub profile: bool,
    /// Checkpoint/resume behavior.
    pub checkpoint: CheckpointOptions,
}

impl Default for RunOptions {
    /// Single-threaded detailed-baseline run, no profiling, no
    /// checkpointing.
    fn default() -> Self {
        RunOptions {
            fidelity: FidelityConfig::default(),
            threads: 1,
            profile: false,
            checkpoint: CheckpointOptions::default(),
        }
    }
}

impl RunOptions {
    /// Apply one of the paper's presets — an alias for
    /// `with_fidelity(FidelityConfig::for_preset(preset))`.
    #[must_use]
    pub fn with_preset(self, preset: SimulatorPreset) -> Self {
        self.with_fidelity(FidelityConfig::for_preset(preset))
    }

    /// Set the full per-module fidelity in one call.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: FidelityConfig) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Set the kernel-launch sampling policy (a field of the fidelity
    /// plan, surfaced here because it is the knob large workloads reach
    /// for first).
    #[must_use]
    pub fn with_sampling(mut self, sampling: SamplingPolicy) -> Self {
        self.fidelity.sampling = sampling;
        self
    }

    /// Simulate with `threads` worker threads (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enable self-profiling.
    #[must_use]
    pub fn with_profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Write a snapshot to `path` after every kernel boundary.
    #[must_use]
    pub fn with_checkpoint_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint.write_to = Some(path.into());
        self
    }

    /// Resume from the snapshot at `path`.
    #[must_use]
    pub fn with_resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint.resume_from = Some(path.into());
        self
    }

    /// Stop after `kernels` kernels, writing a final snapshot (see
    /// [`CheckpointOptions::halt_after`]).
    #[must_use]
    pub fn with_halt_after(mut self, kernels: usize) -> Self {
        self.checkpoint.halt_after = Some(kernels);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::{AluModelKind, SyncQuantum};

    #[test]
    fn default_matches_legacy_builder_defaults() {
        let o = RunOptions::default();
        assert_eq!(o.fidelity, FidelityConfig::default());
        assert_eq!(o.threads, 1);
        assert!(!o.profile);
        assert!(!o.checkpoint.is_active());
    }

    #[test]
    fn with_methods_compose() {
        let o = RunOptions::default()
            .with_preset(SimulatorPreset::SwiftBasic)
            .with_sampling(SamplingPolicy::KernelCluster { reps: 3 })
            .with_threads(4)
            .with_profile(true)
            .with_checkpoint_out("/tmp/ck")
            .with_resume("/tmp/ck")
            .with_halt_after(7);
        assert_eq!(o.fidelity.alu, AluModelKind::Analytical);
        assert_eq!(
            o.fidelity.sampling,
            SamplingPolicy::KernelCluster { reps: 3 }
        );
        assert_eq!(o.fidelity.sync_quantum, SyncQuantum::PerCycle);
        assert_eq!(o.threads, 4);
        assert!(o.profile);
        assert_eq!(o.checkpoint.write_to.as_deref(), Some("/tmp/ck".as_ref()));
        assert_eq!(
            o.checkpoint.resume_from.as_deref(),
            Some("/tmp/ck".as_ref())
        );
        assert_eq!(o.checkpoint.halt_after, Some(7));
        assert!(o.checkpoint.is_active());
    }
}
