//! Per-warp register scoreboard.
//!
//! The Warp Scheduler & Dispatch module (§III-B1) may only issue an
//! instruction whose source and destination registers have no pending
//! writes — the scoreboard tracks those pending writes. It is deliberately
//! tiny and allocation-free on the hot path: pending registers are a fixed
//! 256-bit set per warp (SASS register files have at most 256 architectural
//! registers).

use swiftsim_trace::{Reg, TraceInstruction};

/// Pending-write tracker for one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scoreboard {
    pending: [u64; 4],
    outstanding: u32,
}

impl Scoreboard {
    /// Create an empty scoreboard.
    pub fn new() -> Self {
        Scoreboard::default()
    }

    #[inline]
    fn bit(reg: Reg) -> (usize, u64) {
        let r = usize::from(reg.0) & 0xff;
        (r / 64, 1u64 << (r % 64))
    }

    /// Whether `reg` has a pending write.
    pub fn is_pending(&self, reg: Reg) -> bool {
        let (word, mask) = Self::bit(reg);
        self.pending[word] & mask != 0
    }

    /// Whether `inst` can issue: no RAW hazard on its sources and no WAW
    /// hazard on its destination.
    pub fn can_issue(&self, inst: &TraceInstruction) -> bool {
        if self.outstanding == 0 {
            return true;
        }
        if let Some(dst) = inst.dst {
            if self.is_pending(dst) {
                return false;
            }
        }
        inst.srcs.iter().all(|&src| !self.is_pending(src))
    }

    /// Record the issue of `inst` (reserves its destination register).
    pub fn issue(&mut self, inst: &TraceInstruction) {
        self.issue_dst(inst.dst);
    }

    /// Record an issue by destination register alone (hot-path variant:
    /// sources only matter at the [`Scoreboard::can_issue`] check).
    pub fn issue_dst(&mut self, dst: Option<Reg>) {
        if let Some(dst) = dst {
            let (word, mask) = Self::bit(dst);
            if self.pending[word] & mask == 0 {
                self.pending[word] |= mask;
                self.outstanding += 1;
            }
        }
    }

    /// Record the writeback of `dst` (releases the register).
    pub fn writeback(&mut self, dst: Reg) {
        let (word, mask) = Self::bit(dst);
        if self.pending[word] & mask != 0 {
            self.pending[word] &= !mask;
            self.outstanding -= 1;
        }
    }

    /// Number of registers with writes in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Whether no writes are in flight.
    pub fn is_clear(&self) -> bool {
        self.outstanding == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_trace::{InstBuilder, Opcode};

    #[test]
    fn raw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        let producer = InstBuilder::new(Opcode::Iadd).dst(5).src(1).build();
        let consumer = InstBuilder::new(Opcode::Fadd).dst(6).src(5).build();
        assert!(sb.can_issue(&producer));
        sb.issue(&producer);
        assert!(!sb.can_issue(&consumer), "RAW on R5");
        sb.writeback(Reg(5));
        assert!(sb.can_issue(&consumer));
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        let first = InstBuilder::new(Opcode::Iadd).dst(5).build();
        let second = InstBuilder::new(Opcode::Imul).dst(5).build();
        sb.issue(&first);
        assert!(!sb.can_issue(&second), "WAW on R5");
        sb.writeback(Reg(5));
        assert!(sb.can_issue(&second));
    }

    #[test]
    fn independent_instructions_flow() {
        let mut sb = Scoreboard::new();
        sb.issue(&InstBuilder::new(Opcode::Iadd).dst(1).build());
        let other = InstBuilder::new(Opcode::Fadd).dst(2).src(3).build();
        assert!(sb.can_issue(&other));
    }

    #[test]
    fn no_dst_instructions_always_reissue() {
        let mut sb = Scoreboard::new();
        let store = InstBuilder::new(Opcode::Stg)
            .src(1)
            .global_strided(0, 4, 4)
            .build();
        sb.issue(&store);
        assert!(sb.is_clear());
        assert!(sb.can_issue(&store));
    }

    #[test]
    fn outstanding_counts_unique_registers() {
        let mut sb = Scoreboard::new();
        sb.issue(&InstBuilder::new(Opcode::Iadd).dst(1).build());
        sb.issue(&InstBuilder::new(Opcode::Iadd).dst(2).build());
        assert_eq!(sb.outstanding(), 2);
        sb.writeback(Reg(1));
        assert_eq!(sb.outstanding(), 1);
        // Double writeback is harmless.
        sb.writeback(Reg(1));
        assert_eq!(sb.outstanding(), 1);
        sb.writeback(Reg(2));
        assert!(sb.is_clear());
    }

    #[test]
    fn high_register_numbers_wrap_into_range() {
        let mut sb = Scoreboard::new();
        sb.issue(&InstBuilder::new(Opcode::Iadd).dst(255).build());
        assert!(sb.is_pending(Reg(255)));
        sb.writeback(Reg(255));
        assert!(sb.is_clear());
    }
}
