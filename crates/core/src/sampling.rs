//! Kernel-level sampling: cluster repeated launches, simulate
//! representatives, replay the rest.
//!
//! Real GPU applications launch the same kernels over and over — a training
//! loop runs its forward/backward kernels once per batch, a solver runs its
//! stencil kernel once per timestep. Simulating every one of those launches
//! in detail buys no new information. Under
//! [`SamplingPolicy::KernelCluster`], launches are grouped into *clusters*
//! by everything [`KernelMeta`] carries (name, grid/block geometry, shared
//! memory, registers, dynamic instruction count); the first `reps`
//! launches of each cluster are simulated in detail and every later launch
//! is *replayed*: its cycle count is the representatives' measured CPI
//! times its instruction count, its statistics are the representatives'
//! per-launch mean, and its trace body is never decoded.
//!
//! Replays cost effectively nothing, so an application with `R`-fold
//! launch repetition simulates roughly `R / reps` times faster. The price
//! is bounded and *reported*: the spread of the representatives' measured
//! cycles becomes a per-cluster relative error bound, surfaced per kernel
//! and as a whole-app bound in the result's [`Confidence`] block.
//!
//! The sampler's measurements are part of checkpoint snapshots (a resumed
//! run must replay later launches from the **same** representative
//! measurements to stay bit-identical), serialized through the word-stream
//! helpers in [`crate::checkpoint`].

use crate::fidelity::SamplingPolicy;
use crate::result::{Confidence, KernelResult};
use crate::sm::SmStats;
use crate::Cycle;
use swiftsim_config::fnv1a64;
use swiftsim_trace::{KernelMeta, TraceSource};

/// Error bound assigned to replays of a single-representative cluster,
/// where no spread was measured. Launches within a cluster are identical
/// in content but start from different memory-hierarchy state, so some
/// launch-to-launch variation always exists; this floor keeps a
/// `cluster:1` run from claiming zero error it never measured.
pub(crate) const SINGLE_REP_ERROR_FLOOR: f64 = 0.05;

/// Minimum error bound for clusters with two or more representatives. The
/// measured spread only observes variation *between* the representatives;
/// memory-hierarchy warmup keeps drifting past them (the steady state the
/// replayed launches actually run in), so a raw spread of near-zero would
/// understate the true replay error. One percent covers the residual drift
/// observed across the workload suite while staying far below the
/// single-representative floor.
pub(crate) const MULTI_REP_ERROR_FLOOR: f64 = 0.01;

/// One detailed representative's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RepMeasure {
    /// Cycles the launch took.
    pub cycles: Cycle,
    /// Per-launch statistics delta.
    pub stats: SmStats,
    /// Dynamic instructions issued.
    pub instructions: u64,
    /// Thread blocks executed.
    pub blocks: u64,
}

/// The sampling driver one run owns: the launch-order plan plus the
/// representative measurements accumulated so far.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Sampler {
    /// Cluster index of each kernel launch, in launch order.
    cluster_of: Vec<usize>,
    /// Whether each launch is simulated in detail.
    detailed: Vec<bool>,
    num_clusters: usize,
    /// Per-cluster measurements of its detailed representatives.
    reps: Vec<Vec<RepMeasure>>,
}

/// fnv1a64 over every field of [`KernelMeta`] — the cluster identity.
fn cluster_key(meta: &KernelMeta) -> u64 {
    let text = format!(
        "{}|{},{},{}|{},{},{}|{}|{}|{}",
        meta.name,
        meta.grid_dim.x,
        meta.grid_dim.y,
        meta.grid_dim.z,
        meta.block_dim.x,
        meta.block_dim.y,
        meta.block_dim.z,
        meta.shared_mem_bytes,
        meta.regs_per_thread,
        meta.num_insts
    );
    fnv1a64(text.as_bytes())
}

impl Sampler {
    /// Build the launch-order plan for `source` under `policy`.
    ///
    /// Returns `None` when sampling is off. The plan is a pure function of
    /// the trace metadata and the policy, so a resumed run rebuilds the
    /// identical plan from the trace alone.
    pub(crate) fn plan(source: &dyn TraceSource, policy: SamplingPolicy) -> Option<Sampler> {
        let SamplingPolicy::KernelCluster { reps } = policy else {
            return None;
        };
        let n = source.num_kernels();
        let mut key_to_cluster: Vec<(u64, usize)> = Vec::new();
        let mut cluster_of = Vec::with_capacity(n);
        let mut detailed = Vec::with_capacity(n);
        let mut seen_per_cluster: Vec<u32> = Vec::new();
        for idx in 0..n {
            let key = cluster_key(&source.kernel_meta(idx));
            let cluster = match key_to_cluster.iter().find(|(k, _)| *k == key) {
                Some(&(_, c)) => c,
                None => {
                    let c = seen_per_cluster.len();
                    key_to_cluster.push((key, c));
                    seen_per_cluster.push(0);
                    c
                }
            };
            cluster_of.push(cluster);
            detailed.push(seen_per_cluster[cluster] < reps);
            seen_per_cluster[cluster] += 1;
        }
        let num_clusters = seen_per_cluster.len();
        Some(Sampler {
            cluster_of,
            detailed,
            num_clusters,
            reps: vec![Vec::new(); num_clusters],
        })
    }

    /// Whether launch `kernel` is simulated in detail.
    pub(crate) fn is_detailed(&self, kernel: usize) -> bool {
        self.detailed[kernel]
    }

    /// Launch indices simulated in detail, in launch order — the set the
    /// analytical memory model's pre-pass must decode (replayed launches
    /// are never decoded, which is where most of the speedup comes from).
    pub(crate) fn detailed_indices(&self) -> Vec<usize> {
        (0..self.detailed.len())
            .filter(|&k| self.detailed[k])
            .collect()
    }

    /// Record the measurements of detailed launch `kernel`.
    pub(crate) fn record(&mut self, kernel: usize, measure: RepMeasure) {
        debug_assert!(self.detailed[kernel]);
        self.reps[self.cluster_of[kernel]].push(measure);
    }

    /// Synthesize the outcome of replayed launch `kernel` from its
    /// cluster's representatives.
    ///
    /// Cycle count is the representatives' mean CPI times the launch's
    /// instruction count; since instruction count is part of the cluster
    /// identity, this equals the rounded mean of the representative cycle
    /// counts. Statistics are the per-field rounded means.
    ///
    /// # Panics
    ///
    /// Panics if no representative of the cluster has been recorded —
    /// the plan guarantees representatives precede replays in launch
    /// order, so that is an engine sequencing bug.
    pub(crate) fn replay(&self, kernel: usize) -> RepMeasure {
        let reps = &self.reps[self.cluster_of[kernel]];
        assert!(
            !reps.is_empty(),
            "replayed kernel {kernel} before any representative of its cluster ran"
        );
        let n = reps.len() as u64;
        let mean = |get: &dyn Fn(&RepMeasure) -> u64| -> u64 {
            let sum: u128 = reps.iter().map(|r| u128::from(get(r))).sum();
            ((sum + u128::from(n / 2)) / u128::from(n)) as u64
        };
        RepMeasure {
            cycles: mean(&|r| r.cycles),
            stats: SmStats {
                issued: mean(&|r| r.stats.issued),
                mem_insts: mean(&|r| r.stats.mem_insts),
                stall_scoreboard: mean(&|r| r.stats.stall_scoreboard),
                stall_unit_busy: mean(&|r| r.stats.stall_unit_busy),
                stall_barrier: mean(&|r| r.stats.stall_barrier),
                stall_empty: mean(&|r| r.stats.stall_empty),
                shared_bank_conflicts: mean(&|r| r.stats.shared_bank_conflicts),
                icache_misses: mean(&|r| r.stats.icache_misses),
                ccache_misses: mean(&|r| r.stats.ccache_misses),
                active_cycles: mean(&|r| r.stats.active_cycles),
            },
            instructions: mean(&|r| r.instructions),
            blocks: mean(&|r| r.blocks),
        }
    }

    /// Relative cycle error bound of one cluster's replays: the spread of
    /// the representatives' measured cycles (floored at
    /// [`MULTI_REP_ERROR_FLOOR`]), or the single-representative floor when
    /// no spread was measured.
    fn cluster_bound(&self, cluster: usize) -> f64 {
        let reps = &self.reps[cluster];
        if reps.len() < 2 {
            return SINGLE_REP_ERROR_FLOOR;
        }
        let min = reps.iter().map(|r| r.cycles).min().unwrap_or(0);
        let max = reps.iter().map(|r| r.cycles).max().unwrap_or(0);
        let sum: u128 = reps.iter().map(|r| u128::from(r.cycles)).sum();
        let mean = sum as f64 / reps.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        ((max - min) as f64 / mean).max(MULTI_REP_ERROR_FLOOR)
    }

    /// The run's [`Confidence`] block. `kernels` is the launch-order
    /// result list — the full application, or the simulated prefix when
    /// the run halted at a checkpoint boundary.
    pub(crate) fn confidence(&self, kernels: &[KernelResult]) -> Confidence {
        debug_assert!(kernels.len() <= self.detailed.len());
        let mut kernel_error_bounds = Vec::with_capacity(kernels.len());
        let mut replayed_kernels = 0u64;
        let mut replayed_cycles: Cycle = 0;
        let mut weighted: f64 = 0.0;
        let mut total_cycles: Cycle = 0;
        for (k, result) in kernels.iter().enumerate() {
            total_cycles += result.cycles;
            if self.detailed[k] {
                kernel_error_bounds.push(0.0);
            } else {
                let bound = self.cluster_bound(self.cluster_of[k]);
                kernel_error_bounds.push(bound);
                replayed_kernels += 1;
                replayed_cycles += result.cycles;
                weighted += result.cycles as f64 * bound;
            }
        }
        let app_error_bound = if total_cycles == 0 {
            0.0
        } else {
            weighted / total_cycles as f64
        };
        Confidence {
            clusters: self.num_clusters as u64,
            sampled_kernels: (kernels.len() as u64) - replayed_kernels,
            replayed_kernels,
            replayed_cycles,
            kernel_error_bounds,
            app_error_bound,
        }
    }

    /// Serialize the representative measurements as a word stream for
    /// checkpoint snapshots. The plan itself is not serialized — it is a
    /// pure function of the trace and policy, and snapshot identity
    /// already pins both.
    pub(crate) fn save_words(&self) -> Vec<u64> {
        let mut out = vec![self.num_clusters as u64];
        for cluster in &self.reps {
            out.push(cluster.len() as u64);
            for r in cluster {
                out.push(r.cycles);
                out.extend_from_slice(&crate::checkpoint::stats_words(&r.stats));
                out.push(r.instructions);
                out.push(r.blocks);
            }
        }
        out
    }

    /// Restore representative measurements saved by
    /// [`Sampler::save_words`] into a freshly planned sampler.
    ///
    /// # Errors
    ///
    /// Rejects a stream whose cluster count disagrees with the plan or
    /// that is truncated/malformed.
    pub(crate) fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut it = words.iter().copied();
        let mut next = || -> Result<u64, String> {
            it.next()
                .ok_or_else(|| "sampling state truncated".to_owned())
        };
        let clusters = next()? as usize;
        if clusters != self.num_clusters {
            return Err(format!(
                "sampling state has {clusters} clusters, trace plan has {}",
                self.num_clusters
            ));
        }
        let mut reps = Vec::with_capacity(clusters);
        for _ in 0..clusters {
            let len = next()? as usize;
            let mut cluster = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                let cycles = next()?;
                let mut stats = [0u64; 10];
                for slot in &mut stats {
                    *slot = next()?;
                }
                cluster.push(RepMeasure {
                    cycles,
                    stats: crate::checkpoint::stats_from_words(&stats),
                    instructions: next()?,
                    blocks: next()?,
                });
            }
            reps.push(cluster);
        }
        if it.next().is_some() {
            return Err("sampling state has trailing words".to_owned());
        }
        self.reps = reps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_trace::{Dim3, KernelTrace};

    /// A source of `n` kernels cycling through `metas`.
    struct MetaSource {
        metas: Vec<KernelMeta>,
        order: Vec<usize>,
    }

    impl TraceSource for MetaSource {
        fn name(&self) -> &str {
            "meta"
        }
        fn num_kernels(&self) -> usize {
            self.order.len()
        }
        fn kernel_meta(&self, index: usize) -> KernelMeta {
            self.metas[self.order[index]].clone()
        }
        fn decode_kernel(
            &self,
            _index: usize,
        ) -> Result<std::borrow::Cow<'_, KernelTrace>, swiftsim_trace::TraceError> {
            unreachable!("planning never decodes")
        }
        fn content_hash(&self) -> Result<u64, swiftsim_trace::TraceError> {
            Ok(0)
        }
    }

    fn meta(name: &str, gx: u32, insts: u64) -> KernelMeta {
        KernelMeta {
            name: name.to_owned(),
            grid_dim: Dim3 { x: gx, y: 1, z: 1 },
            block_dim: Dim3 { x: 32, y: 1, z: 1 },
            shared_mem_bytes: 0,
            regs_per_thread: 16,
            num_insts: insts,
        }
    }

    fn measure(cycles: Cycle) -> RepMeasure {
        RepMeasure {
            cycles,
            stats: SmStats {
                issued: cycles.wrapping_mul(2),
                ..SmStats::default()
            },
            instructions: 100,
            blocks: 4,
        }
    }

    #[test]
    fn off_policy_has_no_plan() {
        let src = MetaSource {
            metas: vec![meta("k", 1, 10)],
            order: vec![0, 0],
        };
        assert!(Sampler::plan(&src, SamplingPolicy::Off).is_none());
    }

    #[test]
    fn first_reps_instances_are_detailed_rest_replayed() {
        // Launch order: a a b a a b a — reps=2 → detailed: a0 a1 b0 b1, replayed: a3 a4 a6... wait
        let src = MetaSource {
            metas: vec![meta("a", 4, 100), meta("b", 8, 200)],
            order: vec![0, 0, 1, 0, 0, 1, 0],
        };
        let s = Sampler::plan(&src, SamplingPolicy::KernelCluster { reps: 2 }).unwrap();
        assert_eq!(s.num_clusters, 2);
        let detailed: Vec<bool> = (0..7).map(|k| s.is_detailed(k)).collect();
        assert_eq!(
            detailed,
            vec![true, true, true, false, false, true, false],
            "first 2 of cluster a (launches 0,1) and of cluster b (2,5) are detailed"
        );
        assert_eq!(s.detailed_indices(), vec![0, 1, 2, 5]);
    }

    #[test]
    fn identical_names_with_different_geometry_split_clusters() {
        let src = MetaSource {
            metas: vec![meta("k", 4, 100), meta("k", 8, 100), meta("k", 4, 999)],
            order: vec![0, 1, 2, 0],
        };
        let s = Sampler::plan(&src, SamplingPolicy::KernelCluster { reps: 1 }).unwrap();
        assert_eq!(s.num_clusters, 3);
        assert!(s.is_detailed(0) && s.is_detailed(1) && s.is_detailed(2));
        assert!(!s.is_detailed(3), "second launch of cluster 0 is replayed");
    }

    #[test]
    fn replay_is_rounded_mean_of_reps() {
        let src = MetaSource {
            metas: vec![meta("k", 4, 100)],
            order: vec![0, 0, 0],
        };
        let mut s = Sampler::plan(&src, SamplingPolicy::KernelCluster { reps: 2 }).unwrap();
        s.record(0, measure(100));
        s.record(1, measure(103));
        let r = s.replay(2);
        assert_eq!(r.cycles, 102, "round((100+103)/2)");
        assert_eq!(r.stats.issued, 203, "stats mean rounds too");
        assert_eq!(r.instructions, 100);
        assert_eq!(r.blocks, 4);
    }

    #[test]
    fn confidence_weights_bounds_by_replayed_cycles() {
        let src = MetaSource {
            metas: vec![meta("k", 4, 100)],
            order: vec![0, 0, 0, 0],
        };
        let mut s = Sampler::plan(&src, SamplingPolicy::KernelCluster { reps: 2 }).unwrap();
        s.record(0, measure(90));
        s.record(1, measure(110));
        let kr = |cycles| KernelResult {
            name: "k".into(),
            cycles,
            instructions: 100,
            blocks: 4,
        };
        let kernels = vec![kr(90), kr(110), kr(100), kr(100)];
        let c = s.confidence(&kernels);
        assert_eq!(c.clusters, 1);
        assert_eq!(c.sampled_kernels, 2);
        assert_eq!(c.replayed_kernels, 2);
        assert_eq!(c.replayed_cycles, 200);
        // Cluster bound: (110-90)/100 = 0.2; detailed kernels bound 0.
        assert_eq!(c.kernel_error_bounds, vec![0.0, 0.0, 0.2, 0.2]);
        // App bound: (100*0.2 + 100*0.2) / 400 = 0.1.
        assert!(
            (c.app_error_bound - 0.1).abs() < 1e-12,
            "{}",
            c.app_error_bound
        );
    }

    #[test]
    fn single_rep_cluster_uses_error_floor() {
        let src = MetaSource {
            metas: vec![meta("k", 4, 100)],
            order: vec![0, 0],
        };
        let mut s = Sampler::plan(&src, SamplingPolicy::KernelCluster { reps: 1 }).unwrap();
        s.record(0, measure(100));
        let kernels = vec![
            KernelResult {
                name: "k".into(),
                cycles: 100,
                instructions: 100,
                blocks: 4,
            };
            2
        ];
        let c = s.confidence(&kernels);
        assert_eq!(c.kernel_error_bounds[1], SINGLE_REP_ERROR_FLOOR);
    }

    #[test]
    fn measurements_round_trip_through_words() {
        let src = MetaSource {
            metas: vec![meta("a", 4, 100), meta("b", 8, 200)],
            order: vec![0, 1, 0, 1],
        };
        let mut s = Sampler::plan(&src, SamplingPolicy::KernelCluster { reps: 1 }).unwrap();
        s.record(0, measure(u64::MAX - 3));
        s.record(1, measure(7));
        let words = s.save_words();
        let mut restored = Sampler::plan(&src, SamplingPolicy::KernelCluster { reps: 1 }).unwrap();
        restored.restore_words(&words).unwrap();
        assert_eq!(restored, s);
        // Cluster-count mismatch is rejected.
        let other = MetaSource {
            metas: vec![meta("a", 4, 100)],
            order: vec![0],
        };
        let mut wrong = Sampler::plan(&other, SamplingPolicy::KernelCluster { reps: 1 }).unwrap();
        assert!(wrong
            .restore_words(&words)
            .unwrap_err()
            .contains("clusters"));
    }
}
