//! Per-module fidelity selection: one data-driven description of which
//! model simulates each GPU component (§III-B3).
//!
//! "Based on the modular modeling approach, we can adopt various modeling
//! methods for a single module." [`FidelityConfig`] is the single source of
//! truth for those choices — the builder consumes it, the presets are a
//! pure alias table over it ([`FidelityConfig::for_preset`]), and the
//! resolved configuration travels verbatim into `--json` output, campaign
//! cache keys, and [`GpuSimulator::description`].
//!
//! The config is parseable from GPGPU-Sim-style option text
//! ([`FidelityConfig::parse_args`]), so existing `gpgpusim.config`-shaped
//! files can carry fidelity keys:
//!
//! ```text
//! -sim_alu_model analytical
//! -sim_mem_model analytical_reuse
//! -sim_frontend_model simplified
//! -sim_skip_policy event_driven
//! ```
//!
//! [`GpuSimulator::description`]: crate::GpuSimulator::description

use crate::builder::SimulatorPreset;
use crate::error::SimError;
use std::str::FromStr;

/// Which model simulates the ALU pipeline (§III-D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluModelKind {
    /// Explicit pipeline-stage registers, ticked every cycle.
    CycleAccurate,
    /// Fixed latency + cycle-accurately observed contention (Fig. 3).
    Analytical,
}

/// Which model simulates memory accesses (§III-D2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModelKind {
    /// Full L1/NoC/L2/DRAM event simulation.
    CycleAccurate,
    /// Eq. 1 expected latency + contention adder, with hit rates from a
    /// functional cache-simulation pre-pass.
    Analytical,
    /// Eq. 1 with hit rates from the reuse-distance tool instead
    /// (fully-associative LRU approximation).
    AnalyticalReuse,
}

/// Which model simulates the SM frontend (instruction/constant caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrontendModelKind {
    /// Model the instruction and constant caches (fetch penalties, misses).
    Detailed,
    /// Simplify the frontend away: fetches are free, no frontend misses.
    Simplified,
}

/// How the engine advances simulated time.
///
/// Both policies produce **bit-identical** results — the same
/// `SimulationResult` statistics and profiler counter totals — because the
/// event-driven engine accounts skipped quiescent cycles exactly as the
/// dense loop would have ticked them. The differential suite
/// (`crates/core/tests/event_engine_equiv.rs`) gates this equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipPolicy {
    /// Tick every component on every cycle, even quiescent ones.
    Dense,
    /// Fast-forward the clock to the minimum next-actionable cycle
    /// reported by the components (writeback heap, memory event queue)
    /// whenever a cycle issues nothing.
    EventDriven,
}

/// How often parallel SM shards synchronize with the shared memory system
/// when a simulation runs with more than one thread.
///
/// The two-phase parallel engine alternates a *compute phase* (shards tick
/// their SMs independently, buffering memory-visible events) with a *commit
/// phase* (buffered events are applied to the shared memory system in a
/// deterministic global order). This knob sets the length of that cycle
/// quantum. Single-threaded runs ignore it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SyncQuantum {
    /// Commit after every simulated cycle. The committed-event order is a
    /// total order identical to the sequential engine's call order, so the
    /// results are **bit-identical** to a single-threaded run regardless of
    /// thread count (gated by `event_engine_equiv`).
    #[default]
    PerCycle,
    /// Relaxed synchronization: shards run `n >= 2` cycles ahead between
    /// commits. Deterministic and reproducible for a fixed thread count,
    /// but memory contention is observed at quantum granularity, so the
    /// statistics may diverge from the sequential engine. Divergence is
    /// exercised by the relaxed-quantum cases in `event_engine_equiv`.
    Cycles(u32),
    /// Legacy decoupled shards: each shard owns a private slice of the
    /// memory hierarchy and never exchanges traffic (the paper's original
    /// parallel model). Fast, but per-shard bandwidth is an approximation.
    Unsynchronized,
}

/// Whether (and how aggressively) repeated kernel launches are sampled.
///
/// Kernel-level sampling clusters launches by *content hash + launch
/// geometry* (name, grid/block dims, shared memory, registers, instruction
/// count — everything [`swiftsim_trace::KernelMeta`] carries). The first
/// `reps` instances of each cluster are simulated in detail; every later
/// instance is *replayed*: its cycle count is the cluster representatives'
/// measured CPI times its instruction count, its statistics are the
/// representatives' mean, and its decode is skipped entirely. The spread
/// across representatives becomes the per-cluster error bound carried in
/// the result's `confidence` block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SamplingPolicy {
    /// Simulate every kernel launch in detail (no sampling, no error).
    #[default]
    Off,
    /// Cluster repeated launches; simulate `reps` representatives per
    /// cluster in detail and replay the rest analytically.
    KernelCluster {
        /// Detailed representatives per cluster (>= 1). Two or more give a
        /// measured spread for the error bound; one falls back to the
        /// default floor.
        reps: u32,
    },
}

impl SamplingPolicy {
    /// Short stable token, used in JSON output and parseable back:
    /// `off`, `cluster` (default reps), or `cluster:N`.
    pub fn token(self) -> String {
        match self {
            SamplingPolicy::Off => "off".to_owned(),
            SamplingPolicy::KernelCluster { reps } => format!("cluster:{reps}"),
        }
    }

    /// Representatives simulated in detail per cluster (0 when off).
    pub fn reps(self) -> u32 {
        match self {
            SamplingPolicy::Off => 0,
            SamplingPolicy::KernelCluster { reps } => reps,
        }
    }
}

/// Default representatives per cluster for `-sim_sampling cluster`.
pub const DEFAULT_SAMPLING_REPS: u32 = 2;

impl FromStr for SamplingPolicy {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, SimError> {
        match s {
            "off" => Ok(SamplingPolicy::Off),
            "cluster" => Ok(SamplingPolicy::KernelCluster {
                reps: DEFAULT_SAMPLING_REPS,
            }),
            other => match other.strip_prefix("cluster:").map(str::parse::<u32>) {
                Some(Ok(reps)) if reps >= 1 => Ok(SamplingPolicy::KernelCluster { reps }),
                _ => Err(parse_err(
                    "sampling policy",
                    other,
                    "off, cluster, cluster:N",
                )),
            },
        }
    }
}

/// The resolved per-module fidelity of one simulator instance.
///
/// # Examples
///
/// ```
/// use swiftsim_core::{FidelityConfig, SimulatorPreset};
///
/// let f = FidelityConfig::for_preset(SimulatorPreset::SwiftMemory);
/// assert_eq!(
///     f.describe(),
///     "analytical_alu+analytical_memory+simplified_frontend+event_driven"
/// );
///
/// let parsed = FidelityConfig::parse_args(
///     "-sim_alu_model analytical -sim_mem_model analytical_reuse",
/// )
/// .unwrap();
/// assert!(parsed.describe().contains("analytical_memory_rd"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FidelityConfig {
    /// ALU-pipeline model.
    pub alu: AluModelKind,
    /// Memory-hierarchy model.
    pub memory: MemoryModelKind,
    /// Frontend (instruction/constant cache) model.
    pub frontend: FrontendModelKind,
    /// Clock-advance policy.
    pub skip_policy: SkipPolicy,
    /// Shard-synchronization quantum for multi-threaded runs.
    pub sync_quantum: SyncQuantum,
    /// Kernel-launch sampling policy (off in every preset).
    pub sampling: SamplingPolicy,
}

impl Default for FidelityConfig {
    /// The detailed-baseline module choices (everything cycle-accurate)
    /// under the event-driven engine.
    fn default() -> Self {
        FidelityConfig::for_preset(SimulatorPreset::Detailed)
    }
}

impl AluModelKind {
    /// Short stable token, used in JSON output and parseable back.
    pub fn token(self) -> &'static str {
        match self {
            AluModelKind::CycleAccurate => "cycle_accurate",
            AluModelKind::Analytical => "analytical",
        }
    }
}

impl MemoryModelKind {
    /// Short stable token, used in JSON output and parseable back.
    pub fn token(self) -> &'static str {
        match self {
            MemoryModelKind::CycleAccurate => "cycle_accurate",
            MemoryModelKind::Analytical => "analytical",
            MemoryModelKind::AnalyticalReuse => "analytical_reuse",
        }
    }
}

impl FrontendModelKind {
    /// Short stable token, used in JSON output and parseable back.
    pub fn token(self) -> &'static str {
        match self {
            FrontendModelKind::Detailed => "detailed",
            FrontendModelKind::Simplified => "simplified",
        }
    }
}

impl SkipPolicy {
    /// Short stable token, used in JSON output and parseable back.
    pub fn token(self) -> &'static str {
        match self {
            SkipPolicy::Dense => "dense",
            SkipPolicy::EventDriven => "event_driven",
        }
    }
}

impl SyncQuantum {
    /// Short stable token, used in JSON output and parseable back.
    pub fn token(self) -> String {
        match self {
            SyncQuantum::PerCycle => "per_cycle".to_owned(),
            SyncQuantum::Cycles(n) => n.to_string(),
            SyncQuantum::Unsynchronized => "unsync".to_owned(),
        }
    }
}

fn parse_err(what: &str, value: &str, expected: &str) -> SimError {
    SimError::InvalidConfig {
        message: format!("unknown {what} {value:?} (expected one of: {expected})"),
    }
}

impl FromStr for AluModelKind {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, SimError> {
        match s {
            "cycle_accurate" | "cycle-accurate" | "detailed" => Ok(AluModelKind::CycleAccurate),
            "analytical" => Ok(AluModelKind::Analytical),
            other => Err(parse_err("ALU model", other, "cycle_accurate, analytical")),
        }
    }
}

impl FromStr for MemoryModelKind {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, SimError> {
        match s {
            "cycle_accurate" | "cycle-accurate" | "detailed" => Ok(MemoryModelKind::CycleAccurate),
            "analytical" => Ok(MemoryModelKind::Analytical),
            "analytical_reuse" | "analytical-reuse" | "analytical_rd" => {
                Ok(MemoryModelKind::AnalyticalReuse)
            }
            other => Err(parse_err(
                "memory model",
                other,
                "cycle_accurate, analytical, analytical_reuse",
            )),
        }
    }
}

impl FromStr for FrontendModelKind {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, SimError> {
        match s {
            "detailed" => Ok(FrontendModelKind::Detailed),
            "simplified" => Ok(FrontendModelKind::Simplified),
            other => Err(parse_err("frontend model", other, "detailed, simplified")),
        }
    }
}

impl FromStr for SkipPolicy {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, SimError> {
        match s {
            "dense" => Ok(SkipPolicy::Dense),
            "event_driven" | "event-driven" => Ok(SkipPolicy::EventDriven),
            other => Err(parse_err("skip policy", other, "dense, event_driven")),
        }
    }
}

impl FromStr for SyncQuantum {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, SimError> {
        match s {
            "per_cycle" | "per-cycle" | "1" => Ok(SyncQuantum::PerCycle),
            "unsync" | "unsynchronized" => Ok(SyncQuantum::Unsynchronized),
            other => match other.parse::<u32>() {
                Ok(n) if n >= 2 => Ok(SyncQuantum::Cycles(n)),
                _ => Err(parse_err(
                    "sync quantum",
                    other,
                    "per_cycle, a cycle count >= 2, unsync",
                )),
            },
        }
    }
}

impl FidelityConfig {
    /// The module choices behind one of the paper's presets (§IV-A3).
    ///
    /// All presets run event-driven: the policy is a pure engine
    /// optimization, bit-identical to dense ticking.
    pub fn for_preset(preset: SimulatorPreset) -> Self {
        match preset {
            SimulatorPreset::Detailed => FidelityConfig {
                alu: AluModelKind::CycleAccurate,
                memory: MemoryModelKind::CycleAccurate,
                frontend: FrontendModelKind::Detailed,
                skip_policy: SkipPolicy::EventDriven,
                sync_quantum: SyncQuantum::PerCycle,
                sampling: SamplingPolicy::Off,
            },
            SimulatorPreset::SwiftBasic => FidelityConfig {
                alu: AluModelKind::Analytical,
                memory: MemoryModelKind::CycleAccurate,
                frontend: FrontendModelKind::Simplified,
                skip_policy: SkipPolicy::EventDriven,
                sync_quantum: SyncQuantum::PerCycle,
                sampling: SamplingPolicy::Off,
            },
            SimulatorPreset::SwiftMemory => FidelityConfig {
                alu: AluModelKind::Analytical,
                memory: MemoryModelKind::Analytical,
                frontend: FrontendModelKind::Simplified,
                skip_policy: SkipPolicy::EventDriven,
                sync_quantum: SyncQuantum::PerCycle,
                sampling: SamplingPolicy::Off,
            },
        }
    }

    /// Stable human-readable summary, e.g.
    /// `"analytical_alu+cycle_accurate_memory+simplified_frontend+event_driven"`.
    ///
    /// This is what [`GpuSimulator::description`] reports and what lands in
    /// campaign cache keys.
    ///
    /// [`GpuSimulator::description`]: crate::GpuSimulator::description
    pub fn describe(&self) -> String {
        let alu = match self.alu {
            AluModelKind::CycleAccurate => "cycle_accurate_alu",
            AluModelKind::Analytical => "analytical_alu",
        };
        let mem = match self.memory {
            MemoryModelKind::CycleAccurate => "cycle_accurate_memory",
            MemoryModelKind::Analytical => "analytical_memory",
            MemoryModelKind::AnalyticalReuse => "analytical_memory_rd",
        };
        let frontend = match self.frontend {
            FrontendModelKind::Detailed => "detailed_frontend",
            FrontendModelKind::Simplified => "simplified_frontend",
        };
        let mut out = format!("{alu}+{mem}+{frontend}+{}", self.skip_policy.token());
        // The default per-cycle quantum is bit-identical to the sequential
        // engine, so it stays silent; only non-default quanta change what a
        // run computes and therefore must show up in descriptions (and in
        // the campaign cache keys built from them).
        match self.sync_quantum {
            SyncQuantum::PerCycle => {}
            SyncQuantum::Cycles(n) => {
                out.push_str(&format!("+sync_q{n}"));
            }
            SyncQuantum::Unsynchronized => out.push_str("+unsync"),
        }
        // Sampling changes what a run computes, so any non-off policy must
        // show up in descriptions (and in the campaign cache keys built from
        // them); `off` stays silent so existing keys are unchanged.
        match self.sampling {
            SamplingPolicy::Off => {}
            SamplingPolicy::KernelCluster { reps } => {
                out.push_str(&format!("+sampled_r{reps}"));
            }
        }
        out
    }

    /// Apply one GPGPU-Sim-style fidelity option.
    ///
    /// Recognized keys: `-sim_alu_model`, `-sim_mem_model`,
    /// `-sim_frontend_model`, `-sim_skip_policy`, `-sim_sync_quantum`,
    /// `-sim_sampling`. Unknown `-sim_*` keys are
    /// an error (a typo'd fidelity knob must not silently fall back to the
    /// default); returns `Ok(false)` for any other key so callers can embed
    /// fidelity options inside a full config file.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown `-sim_*` key or
    /// an unparseable value.
    pub fn apply_option(&mut self, key: &str, value: &str) -> Result<bool, SimError> {
        match key {
            "-sim_alu_model" => self.alu = value.parse()?,
            "-sim_mem_model" => self.memory = value.parse()?,
            "-sim_frontend_model" => self.frontend = value.parse()?,
            "-sim_skip_policy" => self.skip_policy = value.parse()?,
            "-sim_sync_quantum" => self.sync_quantum = value.parse()?,
            "-sim_sampling" => self.sampling = value.parse()?,
            other if other.starts_with("-sim_") => {
                return Err(SimError::InvalidConfig {
                    message: format!(
                        "unknown fidelity option {other:?} (expected -sim_alu_model, \
                         -sim_mem_model, -sim_frontend_model, -sim_skip_policy, \
                         -sim_sync_quantum, or -sim_sampling)"
                    ),
                });
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Parse GPGPU-Sim-style option text into a fidelity, starting from the
    /// default (detailed-baseline) choices.
    ///
    /// The text is tokenized on whitespace; `#` starts a line comment.
    /// `-sim_*` options are applied via
    /// [`apply_option`](FidelityConfig::apply_option); any other `-flag`
    /// and its value tokens are ignored, so a complete
    /// `gpgpusim.config`-shaped file parses cleanly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an unknown `-sim_*` key, a
    /// bad value, or a `-sim_*` key missing its value.
    pub fn parse_args(text: &str) -> Result<Self, SimError> {
        let mut fidelity = FidelityConfig::default();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            let mut tokens = line.split_whitespace().peekable();
            while let Some(token) = tokens.next() {
                if !token.starts_with('-') {
                    continue; // stray value of an ignored foreign option
                }
                if token.starts_with("-sim_") {
                    let value = tokens.next().ok_or_else(|| SimError::InvalidConfig {
                        message: format!("fidelity option {token:?} is missing its value"),
                    })?;
                    fidelity.apply_option(token, value)?;
                }
                // Foreign options keep their value tokens; the `!starts_with('-')`
                // check above skips those on the next iterations.
            }
        }
        Ok(fidelity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_aliases_are_stable() {
        assert_eq!(
            FidelityConfig::for_preset(SimulatorPreset::Detailed).describe(),
            "cycle_accurate_alu+cycle_accurate_memory+detailed_frontend+event_driven"
        );
        assert_eq!(
            FidelityConfig::for_preset(SimulatorPreset::SwiftBasic).describe(),
            "analytical_alu+cycle_accurate_memory+simplified_frontend+event_driven"
        );
        assert_eq!(
            FidelityConfig::for_preset(SimulatorPreset::SwiftMemory).describe(),
            "analytical_alu+analytical_memory+simplified_frontend+event_driven"
        );
    }

    #[test]
    fn tokens_round_trip_through_from_str() {
        for alu in [AluModelKind::CycleAccurate, AluModelKind::Analytical] {
            assert_eq!(alu.token().parse::<AluModelKind>().unwrap(), alu);
        }
        for mem in [
            MemoryModelKind::CycleAccurate,
            MemoryModelKind::Analytical,
            MemoryModelKind::AnalyticalReuse,
        ] {
            assert_eq!(mem.token().parse::<MemoryModelKind>().unwrap(), mem);
        }
        for fe in [FrontendModelKind::Detailed, FrontendModelKind::Simplified] {
            assert_eq!(fe.token().parse::<FrontendModelKind>().unwrap(), fe);
        }
        for skip in [SkipPolicy::Dense, SkipPolicy::EventDriven] {
            assert_eq!(skip.token().parse::<SkipPolicy>().unwrap(), skip);
        }
    }

    #[test]
    fn parse_args_reads_gpgpusim_style_keys() {
        let f = FidelityConfig::parse_args(
            "# swift-sim-memory with a dense clock\n\
             -sim_alu_model analytical\n\
             -sim_mem_model analytical_reuse\n\
             -sim_frontend_model simplified\n\
             -sim_skip_policy dense\n",
        )
        .unwrap();
        assert_eq!(f.alu, AluModelKind::Analytical);
        assert_eq!(f.memory, MemoryModelKind::AnalyticalReuse);
        assert_eq!(f.frontend, FrontendModelKind::Simplified);
        assert_eq!(f.skip_policy, SkipPolicy::Dense);
    }

    #[test]
    fn parse_args_ignores_foreign_options() {
        let f = FidelityConfig::parse_args(
            "-gpgpu_n_clusters 68 extra tokens\n\
             -sim_mem_model analytical # trailing comment\n\
             -gpgpu_cache:dl1 S:4:128:64\n",
        )
        .unwrap();
        assert_eq!(f.memory, MemoryModelKind::Analytical);
        assert_eq!(f.alu, AluModelKind::CycleAccurate, "default untouched");
    }

    #[test]
    fn parse_args_rejects_unknown_sim_keys_and_bad_values() {
        assert!(FidelityConfig::parse_args("-sim_warp_model fancy").is_err());
        assert!(FidelityConfig::parse_args("-sim_alu_model quantum").is_err());
        assert!(FidelityConfig::parse_args("-sim_mem_model").is_err());
    }

    #[test]
    fn default_is_detailed_event_driven() {
        let f = FidelityConfig::default();
        assert_eq!(f, FidelityConfig::for_preset(SimulatorPreset::Detailed));
        assert_eq!(f.skip_policy, SkipPolicy::EventDriven);
        assert_eq!(f.sync_quantum, SyncQuantum::PerCycle);
    }

    #[test]
    fn sync_quantum_tokens_round_trip() {
        for q in [
            SyncQuantum::PerCycle,
            SyncQuantum::Cycles(2),
            SyncQuantum::Cycles(64),
            SyncQuantum::Unsynchronized,
        ] {
            assert_eq!(q.token().parse::<SyncQuantum>().unwrap(), q);
        }
        // A 1-cycle quantum *is* per-cycle synchronization.
        assert_eq!("1".parse::<SyncQuantum>().unwrap(), SyncQuantum::PerCycle);
        assert!("0".parse::<SyncQuantum>().is_err());
        assert!("-4".parse::<SyncQuantum>().is_err());
        assert!("sometimes".parse::<SyncQuantum>().is_err());
    }

    #[test]
    fn sampling_tokens_round_trip() {
        for p in [
            SamplingPolicy::Off,
            SamplingPolicy::KernelCluster { reps: 1 },
            SamplingPolicy::KernelCluster { reps: 8 },
        ] {
            assert_eq!(p.token().parse::<SamplingPolicy>().unwrap(), p);
        }
        assert_eq!(
            "cluster".parse::<SamplingPolicy>().unwrap(),
            SamplingPolicy::KernelCluster {
                reps: DEFAULT_SAMPLING_REPS
            }
        );
        assert!("cluster:0".parse::<SamplingPolicy>().is_err());
        assert!("interval".parse::<SamplingPolicy>().is_err());
    }

    #[test]
    fn sampling_parses_and_shows_in_describe() {
        let f = FidelityConfig::parse_args("-sim_sampling cluster:3").unwrap();
        assert_eq!(f.sampling, SamplingPolicy::KernelCluster { reps: 3 });
        assert!(f.describe().ends_with("+sampled_r3"), "{}", f.describe());

        // Off stays silent so preset descriptions (and the campaign cache
        // keys derived from them) are unchanged.
        let f = FidelityConfig::parse_args("-sim_sampling off").unwrap();
        assert_eq!(f.describe(), FidelityConfig::default().describe());
        assert!(!f.describe().contains("sampled"), "{}", f.describe());
    }

    #[test]
    fn unknown_sim_key_error_lists_all_keys() {
        let err = FidelityConfig::parse_args("-sim_bogus x").unwrap_err();
        let msg = err.to_string();
        for key in [
            "-sim_alu_model",
            "-sim_mem_model",
            "-sim_frontend_model",
            "-sim_skip_policy",
            "-sim_sync_quantum",
            "-sim_sampling",
        ] {
            assert!(msg.contains(key), "{msg} missing {key}");
        }
    }

    #[test]
    fn sync_quantum_parses_and_shows_in_describe() {
        let f = FidelityConfig::parse_args("-sim_sync_quantum 8").unwrap();
        assert_eq!(f.sync_quantum, SyncQuantum::Cycles(8));
        assert!(f.describe().ends_with("+sync_q8"), "{}", f.describe());

        let f = FidelityConfig::parse_args("-sim_sync_quantum unsync").unwrap();
        assert_eq!(f.sync_quantum, SyncQuantum::Unsynchronized);
        assert!(f.describe().ends_with("+unsync"), "{}", f.describe());

        // The default quantum stays silent so preset descriptions (and the
        // campaign cache keys derived from them) are unchanged.
        let f = FidelityConfig::parse_args("-sim_sync_quantum per_cycle").unwrap();
        assert_eq!(f.describe(), FidelityConfig::default().describe());
        assert!(!f.describe().contains("sync"), "{}", f.describe());
    }
}
