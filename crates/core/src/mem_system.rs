//! Memory-access models: the cycle-accurate hierarchy walk and the
//! analytical model of §III-D2 (Eq. 1).
//!
//! Both implement [`MemorySystem`], the fixed interface the LD/ST units
//! program against: *"the memory requests will be sent to the cache through
//! the LD/ST units"* and the unit only needs an instruction-completion
//! acknowledgment back (§III-B2). Swapping the implementation is exactly
//! the Swift-Sim-Basic → Swift-Sim-Memory step of the paper.
//!
//! * [`CycleAccurateMemory`] walks every request through the per-SM L1,
//!   the SM↔L2 interconnect, the banked L2 slices, and the partitioned
//!   DRAM channels, with MSHR merging, reservation-failure retries, queue
//!   back-pressure, and dirty writebacks — event-accurately ordered.
//! * [`AnalyticalMemory`] computes the expected latency of each load/store
//!   PC as `L_inst = L_L1·R_L1 + L_L2·R_L2 + L_DRAM·R_DRAM` (Eq. 1), with
//!   the per-PC hit rates taken from a reuse-distance tool or functional
//!   cache simulator, then adds only the *additional latency due to
//!   resource contention* — modeled from the SM's outstanding-request
//!   count.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use swiftsim_config::GpuConfig;
use swiftsim_mem::FastMap;
use swiftsim_mem::{
    AccessOutcome, AddressMapping, DramChannel, DramChannelState, DramStats, FunctionalCacheSim,
    LineSnapshot, MemTxn, MshrCounters, PcHitRates, ReuseDistanceAnalyzer, SectorCache,
    SectorCacheState, TagArrayState,
};
use swiftsim_metrics::{Json, MetricsCollector, ProfModule, Profiler, Value};
use swiftsim_noc::{Crossbar, Interconnect, Mesh, NocState, NocStats, PortState};

use crate::checkpoint::{WordReader, WordWriter};

/// Sentinel waiter for requests nobody waits on (forwarded stores).
const NO_WAITER: u64 = u64::MAX;

/// Per-SM LD/ST queue depth: memory instructions stall at the scheduler
/// once this many transactions are blocked on L1 resources.
const LDST_QUEUE_DEPTH: usize = 64;

/// What happened to one transaction presented to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnDisposition {
    /// Completed synchronously at the given cycle.
    Sync(Cycle),
    /// In flight; completion arrives through the event path.
    Async,
    /// Rejected by a reservation failure; queued until resources free.
    Blocked,
}

/// Reply to a warp-level memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemReply {
    /// Completion time known immediately (all transactions hit, or the
    /// model is analytical).
    Done(Cycle),
    /// Completion will be delivered by [`MemorySystem::advance`] under the
    /// returned token.
    Pending(u64),
}

/// A completed pending access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCompletion {
    /// Token from [`MemReply::Pending`].
    pub token: u64,
    /// Cycle at which the data is available.
    pub at: Cycle,
}

/// The memory-access interface of the framework.
pub trait MemorySystem: Send {
    /// Whether SM `sm`'s LD/ST path can accept another instruction right
    /// now. When false, the Warp Scheduler must stall memory instructions
    /// (a memory-pipeline-full structural stall, as in Accel-Sim).
    fn can_accept(&self, sm: usize) -> bool {
        let _ = sm;
        true
    }

    /// Issue one warp memory instruction from SM `sm` at PC `pc`, already
    /// coalesced into `txns`, at cycle `now`.
    fn access(&mut self, sm: usize, pc: u32, txns: &[MemTxn], now: Cycle) -> MemReply;

    /// Advance internal state to `now`, appending finished pending accesses
    /// to `completions`.
    fn advance(&mut self, now: Cycle, completions: &mut Vec<MemCompletion>);

    /// Earliest cycle at which internal state changes, if any (lets the
    /// event-driven engine fast-forward over idle spans).
    fn next_event(&self) -> Option<Cycle>;

    /// Describe the oldest in-flight request (and, when known, the MSHR
    /// entry or DRAM transaction it waits on), for deadlock diagnostics.
    /// Default: nothing to report.
    fn oldest_pending(&self) -> Option<String> {
        None
    }

    /// Report counters to the Metrics Gatherer.
    fn report(&self, collector: &mut MetricsCollector);

    /// Model name for metrics.
    fn name(&self) -> &'static str;

    /// Enable self-profiling. Models that cannot attribute their own time
    /// ignore this (the default).
    fn set_profiling(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Flush wall-time/cycle attribution accumulated since the last call
    /// into `prof`, under the memory-side modules (L1/NoC/L2/DRAM or the
    /// analytical model). Called once per kernel while the kernel's
    /// profiling frame is open. Default: no attribution.
    fn report_profile(&mut self, prof: &mut Profiler) {
        let _ = prof;
    }

    /// Serialize the model's persistent state at a quiescent kernel
    /// boundary for a checkpoint snapshot (cache tags, DRAM timing,
    /// lifetime counters — everything that carries across kernels).
    ///
    /// Only valid at a kernel boundary, where no request or event is in
    /// flight; implementations must verify that quiescence and refuse
    /// otherwise. Models that do not support checkpointing keep the
    /// default, which refuses.
    ///
    /// # Errors
    ///
    /// The model is not quiescent, or does not support checkpointing.
    fn save_state(&self) -> Result<Json, String> {
        Err(format!("{} does not support checkpointing", self.name()))
    }

    /// Restore state serialized by [`MemorySystem::save_state`] into a
    /// freshly built model of the same configuration.
    ///
    /// # Errors
    ///
    /// The state is malformed, belongs to a different model kind, or
    /// disagrees with this model's geometry (SM/partition/bank counts).
    fn load_state(&mut self, state: &Json) -> Result<(), String> {
        let _ = state;
        Err(format!("{} does not support checkpointing", self.name()))
    }
}

// ---------------------------------------------------------------------------
// Cycle-accurate hierarchy
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Event {
    /// Request arrives at an L2 slice.
    L2Access {
        part: usize,
        txn: MemTxn,
        waiter: u64,
    },
    /// DRAM data returns to the L2 slice.
    DramReturn { part: usize, line_addr: u64 },
    /// Reply data arrives back at the SM; fill the L1 line.
    L1Fill { sm: usize, line_addr: u64 },
    /// Drain the pending injection queue of one forward-NoC port.
    FwdDrain { part: usize },
    /// Drain the pending injection queue of one reply-NoC port.
    RspDrain { sm: usize },
    /// Drain the pending submission queue of one DRAM channel.
    DramDrain { part: usize },
}

/// Heap entry: min-ordered by (time, sequence) with the payload inline.
#[derive(Debug, Clone)]
struct HeapEvent {
    at: Cycle,
    seq: u64,
    event: Event,
}

impl PartialEq for HeapEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEvent {}
impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug, Clone, Copy)]
struct L2Waiter {
    sm: usize,
    line_addr: u64,
}

#[derive(Debug)]
struct PendingReq {
    outstanding: u32,
    last_ready: Cycle,
    /// Issuing SM and issue cycle, for deadlock diagnostics.
    sm: usize,
    issued_at: Cycle,
}

/// Fully simulated L1 → NoC → L2 → DRAM memory system.
pub struct CycleAccurateMemory {
    l1: Vec<SectorCache>,
    l2: Vec<SectorCache>,
    dram: Vec<DramChannel>,
    fwd_noc: Box<dyn Interconnect>,
    rsp_noc: Box<dyn Interconnect>,
    line_bytes: u32,
    partitions: u32,
    events: BinaryHeap<HeapEvent>,
    event_seq: u64,
    reqs: FastMap<u64, PendingReq>,
    next_token: u64,
    l2_waiters: FastMap<u64, L2Waiter>,
    next_l2_waiter: u64,
    /// Source-side injection queues: messages the NoC or DRAM refused,
    /// drained in order as the destination frees (one armed drain event per
    /// destination, so back-pressure costs O(1) per message).
    fwd_pending: Vec<VecDeque<(usize, MemTxn, u64)>>,
    fwd_armed: Vec<bool>,
    rsp_pending: Vec<VecDeque<(usize, u64, u32)>>,
    rsp_armed: Vec<bool>,
    dram_pending: Vec<VecDeque<(u64, bool, bool)>>,
    dram_armed: Vec<bool>,
    /// Transactions blocked by an L1 MSHR/way reservation failure, drained
    /// when a fill frees resources (the per-SM LD/ST queue).
    l1_blocked: Vec<VecDeque<(MemTxn, u64)>>,
    /// Transactions blocked at an L2 slice, drained on DRAM returns.
    l2_blocked: Vec<VecDeque<(MemTxn, u64)>>,
    retry_cycles: u64,
    accesses: u64,
    store_only: u64,
    events_processed: u64,
    /// Self-profiling: when on, `advance` times its drain loop and buckets
    /// the drained events per hierarchy level so `report_profile` can split
    /// the wall time across L1/NoC/L2/DRAM.
    profiling: bool,
    prof_advance_ns: u64,
    /// Events drained since the last profile flush: `[L1, NoC, L2, DRAM]`.
    prof_level_events: [u64; 4],
}

impl std::fmt::Debug for CycleAccurateMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleAccurateMemory")
            .field("sms", &self.l1.len())
            .field("partitions", &self.partitions)
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl CycleAccurateMemory {
    /// Build the detailed memory system for `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        let sms = cfg.num_sms as usize;
        let parts = cfg.memory.partitions as usize;
        CycleAccurateMemory {
            l1: (0..sms)
                .map(|i| SectorCache::new(&cfg.sm.l1d, i as u64))
                .collect(),
            l2: (0..parts)
                .map(|i| SectorCache::new(&cfg.memory.l2, 0x5eed + i as u64))
                .collect(),
            dram: (0..parts)
                .map(|_| {
                    DramChannel::new(
                        cfg.memory.dram_latency,
                        cfg.memory.dram_cycles_per_txn,
                        cfg.memory.dram_queue_depth,
                    )
                })
                .collect(),
            fwd_noc: make_noc(cfg, sms, parts),
            rsp_noc: make_noc(cfg, parts, sms),
            line_bytes: cfg.memory.l2.line_bytes,
            partitions: cfg.memory.partitions,
            events: BinaryHeap::new(),
            event_seq: 0,
            reqs: FastMap::default(),
            next_token: 0,
            l2_waiters: FastMap::default(),
            next_l2_waiter: 0,
            fwd_pending: vec![VecDeque::new(); parts],
            fwd_armed: vec![false; parts],
            rsp_pending: vec![VecDeque::new(); sms],
            rsp_armed: vec![false; sms],
            dram_pending: vec![VecDeque::new(); parts],
            dram_armed: vec![false; parts],
            l1_blocked: (0..sms).map(|_| VecDeque::new()).collect(),
            l2_blocked: (0..parts).map(|_| VecDeque::new()).collect(),
            retry_cycles: 0,
            accesses: 0,
            store_only: 0,
            events_processed: 0,
            profiling: false,
            prof_advance_ns: 0,
            prof_level_events: [0; 4],
        }
    }

    fn schedule(&mut self, at: Cycle, event: Event) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(HeapEvent { at, seq, event });
    }

    fn partition_of(&self, line_addr: u64) -> usize {
        AddressMapping::partition_index(line_addr, self.line_bytes, self.partitions)
    }

    /// Send a transaction toward L2, queueing on NoC back-pressure.
    fn forward_to_l2(&mut self, sm: usize, txn: MemTxn, waiter: u64, now: Cycle) {
        let part = self.partition_of(txn.line_addr);
        if !self.fwd_pending[part].is_empty() {
            // Preserve order behind already-queued messages.
            self.retry_cycles += 1;
            self.fwd_pending[part].push_back((sm, txn, waiter));
            self.arm_fwd(part, now);
            return;
        }
        let flits = 1 + u32::from(txn.write) * txn.num_sectors();
        match self.fwd_noc.traverse(sm, part, flits, now) {
            Some(arrival) => self.schedule(arrival, Event::L2Access { part, txn, waiter }),
            None => {
                self.retry_cycles += 1;
                self.fwd_pending[part].push_back((sm, txn, waiter));
                self.arm_fwd(part, now);
            }
        }
    }

    fn arm_fwd(&mut self, part: usize, now: Cycle) {
        if !self.fwd_armed[part] {
            self.fwd_armed[part] = true;
            let at = self.fwd_noc.earliest_accept(part, now).max(now + 1);
            self.schedule(at, Event::FwdDrain { part });
        }
    }

    fn drain_fwd(&mut self, part: usize, now: Cycle) {
        self.fwd_armed[part] = false;
        while let Some((sm, txn, waiter)) = self.fwd_pending[part].pop_front() {
            let flits = 1 + u32::from(txn.write) * txn.num_sectors();
            match self.fwd_noc.traverse(sm, part, flits, now) {
                Some(arrival) => self.schedule(arrival, Event::L2Access { part, txn, waiter }),
                None => {
                    self.fwd_pending[part].push_front((sm, txn, waiter));
                    self.arm_fwd(part, now);
                    return;
                }
            }
        }
    }

    fn reply_to_sm(&mut self, part: usize, sm: usize, line_addr: u64, flits: u32, now: Cycle) {
        if !self.rsp_pending[sm].is_empty() {
            self.retry_cycles += 1;
            self.rsp_pending[sm].push_back((part, line_addr, flits));
            self.arm_rsp(sm, now);
            return;
        }
        match self.rsp_noc.traverse(part, sm, flits, now) {
            Some(arrival) => self.schedule(arrival, Event::L1Fill { sm, line_addr }),
            None => {
                self.retry_cycles += 1;
                self.rsp_pending[sm].push_back((part, line_addr, flits));
                self.arm_rsp(sm, now);
            }
        }
    }

    fn arm_rsp(&mut self, sm: usize, now: Cycle) {
        if !self.rsp_armed[sm] {
            self.rsp_armed[sm] = true;
            let at = self.rsp_noc.earliest_accept(sm, now).max(now + 1);
            self.schedule(at, Event::RspDrain { sm });
        }
    }

    fn drain_rsp(&mut self, sm: usize, now: Cycle) {
        self.rsp_armed[sm] = false;
        while let Some((part, line_addr, flits)) = self.rsp_pending[sm].pop_front() {
            match self.rsp_noc.traverse(part, sm, flits, now) {
                Some(arrival) => self.schedule(arrival, Event::L1Fill { sm, line_addr }),
                None => {
                    self.rsp_pending[sm].push_front((part, line_addr, flits));
                    self.arm_rsp(sm, now);
                    return;
                }
            }
        }
    }

    fn submit_dram(
        &mut self,
        part: usize,
        line_addr: u64,
        write: bool,
        wants_return: bool,
        now: Cycle,
    ) {
        if !self.dram_pending[part].is_empty() {
            self.retry_cycles += 1;
            self.dram_pending[part].push_back((line_addr, write, wants_return));
            self.arm_dram(part, now);
            return;
        }
        match self.dram[part].submit(write, now) {
            Some(done) => {
                if wants_return {
                    self.schedule(done, Event::DramReturn { part, line_addr });
                }
            }
            None => {
                self.retry_cycles += 1;
                self.dram_pending[part].push_back((line_addr, write, wants_return));
                self.arm_dram(part, now);
            }
        }
    }

    fn arm_dram(&mut self, part: usize, now: Cycle) {
        if !self.dram_armed[part] {
            self.dram_armed[part] = true;
            let at = self.dram[part].earliest_accept(now).max(now + 1);
            self.schedule(at, Event::DramDrain { part });
        }
    }

    fn drain_dram(&mut self, part: usize, now: Cycle) {
        self.dram_armed[part] = false;
        while let Some((line_addr, write, wants_return)) = self.dram_pending[part].pop_front() {
            match self.dram[part].submit(write, now) {
                Some(done) => {
                    if wants_return {
                        self.schedule(done, Event::DramReturn { part, line_addr });
                    }
                }
                None => {
                    self.dram_pending[part].push_front((line_addr, write, wants_return));
                    self.arm_dram(part, now);
                    return;
                }
            }
        }
    }

    fn complete_txn(&mut self, packed: u64, at: Cycle, completions: &mut Vec<MemCompletion>) {
        if packed == NO_WAITER {
            return;
        }
        let (_sm, token) = unpack_sm_token(packed);
        let done = {
            let Some(req) = self.reqs.get_mut(&token) else {
                return;
            };
            req.outstanding -= 1;
            req.last_ready = req.last_ready.max(at);
            req.outstanding == 0
        };
        if done {
            let req = self.reqs.remove(&token).expect("checked above");
            completions.push(MemCompletion {
                token,
                at: req.last_ready,
            });
        }
    }

    /// Run one transaction against SM `sm`'s L1.
    fn process_l1_txn(
        &mut self,
        sm: usize,
        txn: MemTxn,
        packed: u64,
        now: Cycle,
    ) -> TxnDisposition {
        match self.l1[sm].access(txn, packed, now) {
            AccessOutcome::Hit {
                ready_at,
                downstream_write,
            } => {
                if let Some(w) = downstream_write {
                    self.forward_to_l2(sm, w, NO_WAITER, now);
                }
                TxnDisposition::Sync(ready_at)
            }
            AccessOutcome::Miss {
                fetch,
                downstream_write,
            } => {
                self.forward_to_l2(sm, fetch, packed, now);
                if let Some(w) = downstream_write {
                    self.forward_to_l2(sm, w, NO_WAITER, now);
                }
                TxnDisposition::Async
            }
            AccessOutcome::MissMerged { downstream_write } => {
                if let Some(w) = downstream_write {
                    self.forward_to_l2(sm, w, NO_WAITER, now);
                }
                TxnDisposition::Async
            }
            AccessOutcome::WriteForwarded { forward } => {
                // Stores complete from the warp's perspective at issue.
                self.forward_to_l2(sm, forward, NO_WAITER, now);
                TxnDisposition::Sync(now + 1)
            }
            AccessOutcome::ReservationFailure => TxnDisposition::Blocked,
        }
    }

    /// Re-attempt transactions blocked on L1 resources; called whenever a
    /// fill frees an MSHR entry.
    fn drain_l1_blocked(&mut self, sm: usize, now: Cycle, completions: &mut Vec<MemCompletion>) {
        while let Some((txn, packed)) = self.l1_blocked[sm].pop_front() {
            match self.process_l1_txn(sm, txn, packed, now) {
                TxnDisposition::Sync(ready) => self.complete_txn(packed, ready, completions),
                TxnDisposition::Async => {}
                TxnDisposition::Blocked => {
                    self.l1_blocked[sm].push_front((txn, packed));
                    return;
                }
            }
        }
    }

    fn handle_event(&mut self, now: Cycle, event: Event, completions: &mut Vec<MemCompletion>) {
        match event {
            Event::FwdDrain { part } => self.drain_fwd(part, now),
            Event::RspDrain { sm } => self.drain_rsp(sm, now),
            Event::DramDrain { part } => self.drain_dram(part, now),
            Event::L2Access { part, txn, waiter } => {
                // The L2-level waiter wraps the original requester so the
                // reply can be routed back.
                let l2_waiter_id = if waiter == NO_WAITER {
                    NO_WAITER
                } else {
                    let id = self.next_l2_waiter;
                    self.next_l2_waiter += 1;
                    // `waiter` here is an (sm, token) pair packed by caller.
                    let (sm, _token) = unpack_sm_token(waiter);
                    self.l2_waiters.insert(
                        id,
                        L2Waiter {
                            sm,
                            line_addr: txn.line_addr,
                        },
                    );
                    // Remember the token for final completion at L1 fill
                    // time; the L1 MSHR already holds it, so nothing more
                    // to store here.
                    id
                };
                match self.l2[part].access(txn, pack_l2(l2_waiter_id, waiter), now) {
                    AccessOutcome::Hit {
                        ready_at,
                        downstream_write,
                    } => {
                        if let Some(wb) = downstream_write {
                            self.submit_dram(part, wb.line_addr, true, false, ready_at);
                        }
                        if waiter != NO_WAITER {
                            let (sm, _token) = unpack_sm_token(waiter);
                            self.l2_waiters.remove(&l2_waiter_id);
                            self.reply_to_sm(
                                part,
                                sm,
                                txn.line_addr,
                                1 + txn.num_sectors(),
                                ready_at,
                            );
                        }
                    }
                    AccessOutcome::Miss { fetch, .. } => {
                        self.submit_dram(part, fetch.line_addr, false, true, now);
                    }
                    AccessOutcome::MissMerged { .. } => {}
                    AccessOutcome::WriteForwarded { forward } => {
                        // L2 is write-back/write-allocate in all presets, but
                        // a no-allocate configuration forwards to DRAM.
                        self.submit_dram(part, forward.line_addr, true, false, now);
                        if waiter != NO_WAITER {
                            self.l2_waiters.remove(&l2_waiter_id);
                        }
                    }
                    AccessOutcome::ReservationFailure => {
                        if waiter != NO_WAITER {
                            self.l2_waiters.remove(&l2_waiter_id);
                        }
                        self.retry_cycles += 1;
                        self.l2_blocked[part].push_back((txn, waiter));
                    }
                }
            }
            Event::DramReturn { part, line_addr } => {
                let fill = self.l2[part].fill(line_addr, now);
                // The fill freed one L2 MSHR entry (and possibly a way):
                // admit a couple of blocked transactions, keeping the rest
                // queued for later returns.
                for _ in 0..2 {
                    let Some((txn, waiter)) = self.l2_blocked[part].pop_front() else {
                        break;
                    };
                    self.schedule(now + 1, Event::L2Access { part, txn, waiter });
                }
                if let Some(wb) = fill.writeback {
                    self.submit_dram(part, wb.line_addr, true, false, now);
                }
                for packed in fill.waiters {
                    let (l2_waiter_id, _orig) = unpack_l2(packed);
                    if l2_waiter_id == NO_WAITER {
                        continue;
                    }
                    let Some(w) = self.l2_waiters.remove(&l2_waiter_id) else {
                        continue;
                    };
                    self.reply_to_sm(part, w.sm, w.line_addr, 5, now);
                }
            }
            Event::L1Fill { sm, line_addr } => {
                let fill = self.l1[sm].fill(line_addr, now);
                // Streaming write-through L1s never evict dirty data, but a
                // reconfigured (write-back) L1 may.
                if let Some(wb) = fill.writeback {
                    let txn = MemTxn {
                        line_addr: wb.line_addr,
                        sector_mask: wb.dirty_mask,
                        write: true,
                    };
                    self.forward_to_l2(sm, txn, NO_WAITER, now);
                }
                for token in fill.waiters {
                    self.complete_txn(token, now, completions);
                }
                // The fill freed an MSHR entry (and possibly a way):
                // blocked transactions can now proceed.
                self.drain_l1_blocked(sm, now, completions);
            }
        }
    }

    /// The per-SM L1 caches (exposed for metrics and tests).
    pub fn l1_stats(&self, sm: usize) -> swiftsim_mem::CacheStats {
        self.l1[sm].stats()
    }

    /// Aggregate L2 miss rate so far.
    pub fn l2_miss_rate(&self) -> f64 {
        let (mut m, mut d) = (0u64, 0u64);
        for slice in &self.l2 {
            let s = slice.stats();
            m += s.misses + s.merged_misses;
            d += s.hits + s.misses + s.merged_misses;
        }
        if d == 0 {
            0.0
        } else {
            m as f64 / d as f64
        }
    }
}

/// Instantiate the configured interconnect topology — swapping the NoC is
/// a configuration change, not a remodeling effort (§II-B's criticism of
/// queueing-equation NoC models).
fn make_noc(cfg: &GpuConfig, num_src: usize, num_dst: usize) -> Box<dyn Interconnect> {
    match cfg.noc.topology {
        swiftsim_config::NocTopology::Crossbar => {
            Box::new(Crossbar::new(&cfg.noc, num_src, num_dst))
        }
        swiftsim_config::NocTopology::Mesh => Box::new(Mesh::new(&cfg.noc, num_src, num_dst)),
    }
}

/// Pack an SM index and token into the single u64 the L1 waiter slot holds.
fn pack_sm_token(sm: usize, token: u64) -> u64 {
    debug_assert!(token < 1 << 48);
    ((sm as u64) << 48) | token
}

fn unpack_sm_token(packed: u64) -> (usize, u64) {
    ((packed >> 48) as usize, packed & ((1 << 48) - 1))
}

/// Pack the L2-waiter slab id alongside the original requester id.
fn pack_l2(l2_waiter_id: u64, _orig: u64) -> u64 {
    l2_waiter_id
}

fn unpack_l2(packed: u64) -> (u64, u64) {
    (packed, 0)
}

impl MemorySystem for CycleAccurateMemory {
    fn can_accept(&self, sm: usize) -> bool {
        // Bounded LD/ST queue: once transactions back up on L1 resources,
        // the scheduler must stop issuing memory instructions to this SM.
        self.l1_blocked[sm].len() < LDST_QUEUE_DEPTH
    }

    fn access(&mut self, sm: usize, _pc: u32, txns: &[MemTxn], now: Cycle) -> MemReply {
        self.accesses += 1;
        if txns.iter().all(|t| t.write) {
            self.store_only += 1;
        }
        let token = self.next_token;
        self.next_token += 1;
        let packed = pack_sm_token(sm, token);

        // Register the request *before* touching the L1: an event-path
        // transaction (retry) may otherwise complete against a missing
        // entry.
        self.reqs.insert(
            token,
            PendingReq {
                outstanding: txns.len() as u32,
                last_ready: now + 1,
                sm,
                issued_at: now,
            },
        );

        let mut sync_ready: Vec<Cycle> = Vec::new();
        for &txn in txns {
            match self.process_l1_txn(sm, txn, packed, now) {
                TxnDisposition::Sync(ready) => sync_ready.push(ready),
                TxnDisposition::Async => {}
                TxnDisposition::Blocked => {
                    self.retry_cycles += 1;
                    self.l1_blocked[sm].push_back((txn, packed));
                }
            }
        }

        let req = self.reqs.get_mut(&token).expect("just inserted");
        req.outstanding -= sync_ready.len() as u32;
        for r in sync_ready {
            req.last_ready = req.last_ready.max(r);
        }
        if req.outstanding == 0 {
            let req = self.reqs.remove(&token).expect("present");
            return MemReply::Done(req.last_ready);
        }
        MemReply::Pending(token)
    }

    fn advance(&mut self, now: Cycle, completions: &mut Vec<MemCompletion>) {
        if !self.profiling {
            while self.events.peek().is_some_and(|e| e.at <= now) {
                let HeapEvent { at, event, .. } = self.events.pop().expect("peeked");
                self.events_processed += 1;
                self.handle_event(at, event, completions);
            }
            return;
        }
        if self.events.peek().is_none_or(|e| e.at > now) {
            return;
        }
        // One Instant pair per drain burst (not per event) keeps the probe
        // cost negligible; the wall time is split by per-level event counts
        // in report_profile.
        let t0 = std::time::Instant::now();
        while self.events.peek().is_some_and(|e| e.at <= now) {
            let HeapEvent { at, event, .. } = self.events.pop().expect("peeked");
            self.events_processed += 1;
            self.prof_level_events[match event {
                Event::L1Fill { .. } => 0,
                Event::FwdDrain { .. } | Event::RspDrain { .. } => 1,
                Event::L2Access { .. } => 2,
                Event::DramReturn { .. } | Event::DramDrain { .. } => 3,
            }] += 1;
            self.handle_event(at, event, completions);
        }
        self.prof_advance_ns += t0.elapsed().as_nanos() as u64;
    }

    fn next_event(&self) -> Option<Cycle> {
        self.events.peek().map(|e| e.at)
    }

    fn oldest_pending(&self) -> Option<String> {
        let (token, req) = self
            .reqs
            .iter()
            .min_by_key(|(&token, req)| (req.issued_at, token))?;
        let mut msg = format!(
            "oldest memory request: token {token} from SM {} issued at cycle {} \
             ({} transactions outstanding)",
            req.sm, req.issued_at, req.outstanding
        );
        if let Some((line, waiters)) = self.l1[req.sm].oldest_mshr_line() {
            msg.push_str(&format!(
                ", oldest L1 MSHR line {line:#x} with {waiters} waiter(s)"
            ));
        }
        if let Some(at) = self.dram.iter().filter_map(|d| d.next_completion()).min() {
            msg.push_str(&format!(", next DRAM completion at cycle {at}"));
        }
        Some(msg)
    }

    fn report(&self, collector: &mut MetricsCollector) {
        let mut l1_hits = 0u64;
        let mut l1_misses = 0u64;
        let mut l1_conflicts = 0u64;
        let mut l1_resfail = 0u64;
        for cache in &self.l1 {
            let s = cache.stats();
            l1_hits += s.hits;
            l1_misses += s.misses + s.merged_misses;
            l1_conflicts += s.bank_conflicts;
            l1_resfail += s.reservation_failures;
        }
        let mut scope = collector.scope("mem");
        scope.set("l1.hits", Value::Count(l1_hits));
        scope.set("l1.misses", Value::Count(l1_misses));
        let l1_total = l1_hits + l1_misses;
        scope.set(
            "l1.miss_rate",
            Value::Ratio(if l1_total == 0 {
                0.0
            } else {
                l1_misses as f64 / l1_total as f64
            }),
        );
        scope.set("l1.bank_conflicts", Value::Count(l1_conflicts));
        scope.set("l1.reservation_failures", Value::Count(l1_resfail));
        scope.set("l2.miss_rate", Value::Ratio(self.l2_miss_rate()));
        let mut dram_reads = 0u64;
        let mut dram_writes = 0u64;
        for ch in &self.dram {
            dram_reads += ch.stats().reads;
            dram_writes += ch.stats().writes;
        }
        scope.set("dram.reads", Value::Count(dram_reads));
        scope.set("dram.writes", Value::Count(dram_writes));
        scope.set(
            "noc.fwd_stall_cycles",
            Value::Cycles(self.fwd_noc.stats().stall_cycles),
        );
        scope.set(
            "noc.rsp_stall_cycles",
            Value::Cycles(self.rsp_noc.stats().stall_cycles),
        );
        scope.set("retries", Value::Count(self.retry_cycles));
        scope.set("events", Value::Count(self.events_processed));
        scope.set("accesses", Value::Count(self.accesses));
        scope.set("store_only_accesses", Value::Count(self.store_only));
    }

    fn name(&self) -> &'static str {
        "cycle_accurate_memory"
    }

    fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
    }

    fn report_profile(&mut self, prof: &mut Profiler) {
        const MODULES: [ProfModule; 4] = [
            ProfModule::L1,
            ProfModule::Noc,
            ProfModule::L2,
            ProfModule::Dram,
        ];
        let total: u64 = self.prof_level_events.iter().sum();
        if total > 0 {
            for (level, &module) in MODULES.iter().enumerate() {
                let events = self.prof_level_events[level];
                if events == 0 {
                    continue;
                }
                let wall = (u128::from(self.prof_advance_ns) * u128::from(events)
                    / u128::from(total)) as u64;
                prof.record_wall_ns(module, wall, events);
            }
        }
        self.prof_advance_ns = 0;
        self.prof_level_events = [0; 4];
    }

    fn save_state(&self) -> Result<Json, String> {
        // A kernel boundary is quiescent: every event has drained, every
        // request has completed, every queue is empty. Anything else in
        // flight would be lost by the snapshot, so refuse loudly.
        if !self.events.is_empty() {
            return Err(format!("{} events still scheduled", self.events.len()));
        }
        if !self.reqs.is_empty() {
            return Err(format!("{} requests still pending", self.reqs.len()));
        }
        if !self.l2_waiters.is_empty() {
            return Err(format!(
                "{} L2 waiters still pending",
                self.l2_waiters.len()
            ));
        }
        let queued: usize = self.fwd_pending.iter().map(VecDeque::len).sum::<usize>()
            + self.rsp_pending.iter().map(VecDeque::len).sum::<usize>()
            + self.dram_pending.iter().map(VecDeque::len).sum::<usize>()
            + self.l1_blocked.iter().map(VecDeque::len).sum::<usize>()
            + self.l2_blocked.iter().map(VecDeque::len).sum::<usize>();
        if queued != 0 {
            return Err(format!("{queued} messages still queued for injection"));
        }
        if self
            .fwd_armed
            .iter()
            .chain(&self.rsp_armed)
            .chain(&self.dram_armed)
            .any(|&a| a)
        {
            return Err("a drain event is still armed".to_owned());
        }
        let caches = |list: &[SectorCache], what: &str| -> Result<Json, String> {
            let mut out = Vec::with_capacity(list.len());
            for (i, cache) in list.iter().enumerate() {
                let state = cache
                    .save_state()
                    .map_err(|e| format!("{what}[{i}]: {e}"))?;
                out.push(Json::str(cache_words(&state)));
            }
            Ok(Json::Arr(out))
        };
        let mut counters = WordWriter::new();
        for &c in &[
            self.event_seq,
            self.next_token,
            self.next_l2_waiter,
            self.retry_cycles,
            self.accesses,
            self.store_only,
            self.events_processed,
        ] {
            counters.push(c);
        }
        Ok(Json::obj(vec![
            ("kind", Json::str("cycle_accurate")),
            ("l1", caches(&self.l1, "l1")?),
            ("l2", caches(&self.l2, "l2")?),
            (
                "dram",
                Json::Arr(
                    self.dram
                        .iter()
                        .map(|d| Json::str(dram_words(&d.save_state())))
                        .collect(),
                ),
            ),
            ("fwd_noc", Json::str(noc_words(&self.fwd_noc.save_state()))),
            ("rsp_noc", Json::str(noc_words(&self.rsp_noc.save_state()))),
            ("counters", Json::str(counters.finish())),
        ]))
    }

    fn load_state(&mut self, state: &Json) -> Result<(), String> {
        let kind = state.get("kind").and_then(Json::as_str).unwrap_or("?");
        if kind != "cycle_accurate" {
            return Err(format!(
                "memory snapshot is for a {kind:?} model, this run uses cycle_accurate"
            ));
        }
        let arr = |key: &str, expect: usize| -> Result<Vec<&str>, String> {
            let items = state
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("memory snapshot missing {key} array"))?;
            if items.len() != expect {
                return Err(format!(
                    "memory snapshot has {} {key} entries, this config has {expect}",
                    items.len()
                ));
            }
            items
                .iter()
                .map(|j| {
                    j.as_str()
                        .ok_or_else(|| format!("{key} entry is not a string"))
                })
                .collect()
        };
        for (i, words) in arr("l1", self.l1.len())?.iter().enumerate() {
            let parsed = cache_from_words(words, "l1")?;
            self.l1[i]
                .restore_state(&parsed)
                .map_err(|e| format!("l1[{i}]: {e}"))?;
        }
        for (i, words) in arr("l2", self.l2.len())?.iter().enumerate() {
            let parsed = cache_from_words(words, "l2")?;
            self.l2[i]
                .restore_state(&parsed)
                .map_err(|e| format!("l2[{i}]: {e}"))?;
        }
        for (i, words) in arr("dram", self.dram.len())?.iter().enumerate() {
            let parsed = dram_from_words(words)?;
            self.dram[i]
                .restore_state(&parsed)
                .map_err(|e| format!("dram[{i}]: {e}"))?;
        }
        let noc_text = |key: &str| -> Result<String, String> {
            state
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("memory snapshot missing {key}"))
        };
        self.fwd_noc
            .restore_state(&noc_from_words(&noc_text("fwd_noc")?, "fwd_noc")?)
            .map_err(|e| format!("fwd_noc: {e}"))?;
        self.rsp_noc
            .restore_state(&noc_from_words(&noc_text("rsp_noc")?, "rsp_noc")?)
            .map_err(|e| format!("rsp_noc: {e}"))?;
        let counters = state
            .get("counters")
            .and_then(Json::as_str)
            .ok_or_else(|| "memory snapshot missing counters".to_owned())?;
        let mut r = WordReader::new(counters, "memory counters");
        self.event_seq = r.next()?;
        self.next_token = r.next()?;
        self.next_l2_waiter = r.next()?;
        self.retry_cycles = r.next()?;
        self.accesses = r.next()?;
        self.store_only = r.next()?;
        self.events_processed = r.next()?;
        r.finish()
    }
}

// ---------------------------------------------------------------------------
// Checkpoint word codecs for the component state structs
// ---------------------------------------------------------------------------

/// Encode one cache's snapshot as a word stream:
/// `[nlines, per line (tag, state|valid<<8|dirty<<16, last_use, alloc_time),
/// rng x4, bank_free_at slice, mshr x4, stats x10]`.
fn cache_words(state: &SectorCacheState) -> String {
    let mut w = WordWriter::new();
    w.push(state.tags.lines.len() as u64);
    for line in &state.tags.lines {
        w.push(line.tag);
        w.push(
            u64::from(line.state)
                | u64::from(line.valid_mask) << 8
                | u64::from(line.dirty_mask) << 16,
        );
        w.push(line.last_use);
        w.push(line.alloc_time);
    }
    for &word in &state.tags.rng {
        w.push(word);
    }
    w.push_slice(&state.bank_free_at);
    w.push(state.mshr.peak);
    w.push(state.mshr.merges);
    w.push(state.mshr.reservation_failures);
    w.push(state.mshr.seq);
    let s = &state.stats;
    for &c in &[
        s.accesses,
        s.hits,
        s.misses,
        s.merged_misses,
        s.write_forwards,
        s.reservation_failures,
        s.bank_conflicts,
        s.bank_stall_cycles,
        s.writebacks,
        s.fills,
    ] {
        w.push(c);
    }
    w.finish()
}

fn cache_from_words(text: &str, what: &str) -> Result<SectorCacheState, String> {
    let mut r = WordReader::new(text, what);
    let nlines = r.next_usize()?;
    let mut lines = Vec::with_capacity(nlines.min(1 << 20));
    for _ in 0..nlines {
        let tag = r.next()?;
        let packed = r.next()?;
        lines.push(LineSnapshot {
            tag,
            state: (packed & 0xff) as u8,
            valid_mask: (packed >> 8 & 0xff) as u8,
            dirty_mask: (packed >> 16 & 0xff) as u8,
            last_use: r.next()?,
            alloc_time: r.next()?,
        });
    }
    let rng = [r.next()?, r.next()?, r.next()?, r.next()?];
    let bank_free_at = r.next_slice()?;
    let mshr = MshrCounters {
        peak: r.next()?,
        merges: r.next()?,
        reservation_failures: r.next()?,
        seq: r.next()?,
    };
    let stats = swiftsim_mem::CacheStats {
        accesses: r.next()?,
        hits: r.next()?,
        misses: r.next()?,
        merged_misses: r.next()?,
        write_forwards: r.next()?,
        reservation_failures: r.next()?,
        bank_conflicts: r.next()?,
        bank_stall_cycles: r.next()?,
        writebacks: r.next()?,
        fills: r.next()?,
    };
    r.finish()?;
    Ok(SectorCacheState {
        tags: TagArrayState { lines, rng },
        bank_free_at,
        mshr,
        stats,
    })
}

/// `[next_free, reads, writes, queued_cycles, busy_cycles, rejections,
/// in_flight slice]`.
fn dram_words(state: &DramChannelState) -> String {
    let mut w = WordWriter::new();
    w.push(state.next_free);
    w.push(state.stats.reads);
    w.push(state.stats.writes);
    w.push(state.stats.queued_cycles);
    w.push(state.stats.busy_cycles);
    w.push(state.stats.rejections);
    w.push_slice(&state.in_flight);
    w.finish()
}

fn dram_from_words(text: &str) -> Result<DramChannelState, String> {
    let mut r = WordReader::new(text, "dram channel");
    let next_free = r.next()?;
    let stats = DramStats {
        reads: r.next()?,
        writes: r.next()?,
        queued_cycles: r.next()?,
        busy_cycles: r.next()?,
        rejections: r.next()?,
    };
    let in_flight = r.next_slice()?;
    r.finish()?;
    Ok(DramChannelState {
        next_free,
        in_flight,
        stats,
    })
}

/// `[nports, per port (next_free, in_flight slice), stats x4]`.
fn noc_words(state: &NocState) -> String {
    let mut w = WordWriter::new();
    w.push(state.ports.len() as u64);
    for port in &state.ports {
        w.push(port.next_free);
        w.push_slice(&port.in_flight);
    }
    w.push(state.stats.flits);
    w.push(state.stats.traversals);
    w.push(state.stats.stall_cycles);
    w.push(state.stats.rejections);
    w.finish()
}

fn noc_from_words(text: &str, what: &str) -> Result<NocState, String> {
    let mut r = WordReader::new(text, what);
    let nports = r.next_usize()?;
    let mut ports = Vec::with_capacity(nports.min(4096));
    for _ in 0..nports {
        ports.push(PortState {
            next_free: r.next()?,
            in_flight: r.next_slice()?,
        });
    }
    let stats = NocStats {
        flits: r.next()?,
        traversals: r.next()?,
        stall_cycles: r.next()?,
        rejections: r.next()?,
    };
    r.finish()?;
    Ok(NocState { ports, stats })
}

// ---------------------------------------------------------------------------
// Analytical memory model (Eq. 1)
// ---------------------------------------------------------------------------

/// Latency constants of Eq. 1, derived from a [`GpuConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTerms {
    /// `L_L1`: L1 hit latency.
    pub l1: f64,
    /// `L_L2`: L1 miss served by L2 (adds two NoC traversals).
    pub l2: f64,
    /// `L_DRAM`: served by DRAM behind L2.
    pub dram: f64,
}

impl LatencyTerms {
    /// Derive the terms from a hardware configuration.
    pub fn from_config(cfg: &GpuConfig) -> Self {
        let l1 = f64::from(cfg.sm.l1d.latency);
        let l2 = l1 + 2.0 * f64::from(cfg.noc.latency) + f64::from(cfg.memory.l2.latency);
        let dram = l2 + f64::from(cfg.memory.dram_latency);
        LatencyTerms { l1, l2, dram }
    }

    /// Evaluate Eq. 1 for the given hit rates.
    pub fn expected_latency(&self, r: PcHitRates) -> f64 {
        self.l1 * r.l1 + self.l2 * r.l2 + self.dram * r.dram
    }
}

/// The classic analytical memory model (§III-D2).
#[derive(Debug)]
pub struct AnalyticalMemory {
    terms: LatencyTerms,
    /// Per-PC (expected latency, hit-rate profile).
    per_pc: HashMap<u32, (f64, PcHitRates)>,
    default_latency: f64,
    /// Outstanding transaction completion times per SM, used for the
    /// contention adder.
    outstanding: Vec<BinaryHeap<Reverse<Cycle>>>,
    /// Extra cycles per outstanding transaction (queueing pressure).
    contention_per_txn: f64,
    /// Virtual clock of the aggregate DRAM service: advances by
    /// `bw_cycles_per_txn` per expected DRAM transaction. The bandwidth
    /// ceiling part of the contention adder — without it a latency-only
    /// model lets throughput grow without bound, grossly underestimating
    /// bandwidth-saturated kernels.
    bw_next_free: f64,
    /// Aggregate cycles one DRAM transaction occupies the channels:
    /// `1 / (partitions * min(1/cycles_per_txn, queue_depth/latency))`.
    bw_cycles_per_txn: f64,
    accesses: u64,
    txns: u64,
    contention_cycles: u64,
    /// Expected transactions served by each level, accumulated from the
    /// per-PC hit-rate profile as transactions flow through `access`. The
    /// model never simulates the hierarchy, but its own rate profile
    /// yields estimated `mem.l1.*` / `mem.l2.*` / `mem.dram.*` statistics,
    /// so the typed stat catalog is populated across every preset and the
    /// validation harness can correlate them against the oracle.
    est_l1_hits: f64,
    est_l1_misses: f64,
    est_l2_hits: f64,
    est_dram_reads: f64,
    est_dram_writes: f64,
    /// Counter snapshots at the last profile flush, so each kernel frame
    /// gets per-kernel deltas from report_profile.
    prof_accesses: u64,
    prof_contention: u64,
}

impl AnalyticalMemory {
    /// Build the model from per-PC hit rates (e.g. produced by
    /// [`FunctionalCacheSim`] or a reuse-distance tool).
    pub fn new(cfg: &GpuConfig, rates: &HashMap<u32, PcHitRates>) -> Self {
        let terms = LatencyTerms::from_config(cfg);
        let per_pc = rates
            .iter()
            .map(|(&pc, &r)| (pc, (terms.expected_latency(r), r)))
            .collect();
        // Queueing pressure per outstanding transaction. Saturated-bandwidth
        // behaviour is covered by the explicit service clock below, so this
        // term only models the residual NoC/MSHR queueing an SM's own
        // outstanding transactions cause; a quarter of the SMs contending
        // at any instant calibrates it against the cycle-accurate
        // hierarchy.
        let service = f64::from(cfg.memory.partitions)
            / f64::from(cfg.memory.dram_cycles_per_txn)
            / (f64::from(cfg.num_sms) * 0.25);
        // Effective per-channel throughput is the lesser of the issue rate
        // (1/cycles_per_txn) and the concurrency limit (queue_depth
        // outstanding over the access latency).
        let per_channel = (1.0 / f64::from(cfg.memory.dram_cycles_per_txn))
            .min(f64::from(cfg.memory.dram_queue_depth) / f64::from(cfg.memory.dram_latency));
        let bw_cycles_per_txn = 1.0 / (per_channel * f64::from(cfg.memory.partitions)).max(1e-9);
        AnalyticalMemory {
            terms,
            per_pc,
            default_latency: terms.expected_latency(PcHitRates::all_dram()),
            outstanding: (0..cfg.num_sms as usize)
                .map(|_| BinaryHeap::new())
                .collect(),
            contention_per_txn: (1.0 / service.max(1e-6)).min(16.0),
            bw_next_free: 0.0,
            bw_cycles_per_txn,
            accesses: 0,
            txns: 0,
            contention_cycles: 0,
            est_l1_hits: 0.0,
            est_l1_misses: 0.0,
            est_l2_hits: 0.0,
            est_dram_reads: 0.0,
            est_dram_writes: 0.0,
            prof_accesses: 0,
            prof_contention: 0,
        }
    }

    /// Convenience constructor: replay `replayed` (a finished functional
    /// simulation) into per-PC rates.
    pub fn from_funcsim(cfg: &GpuConfig, sim: &FunctionalCacheSim, pcs: &[u32]) -> Self {
        let rates = pcs.iter().map(|&pc| (pc, sim.rates(pc))).collect();
        AnalyticalMemory::new(cfg, &rates)
    }

    /// The Eq. 1 latency terms in use.
    pub fn terms(&self) -> LatencyTerms {
        self.terms
    }

    /// The expected uncontended latency for `pc`.
    pub fn latency_of(&self, pc: u32) -> f64 {
        self.per_pc
            .get(&pc)
            .map_or(self.default_latency, |&(latency, _)| latency)
    }

    /// The DRAM-served fraction for `pc` (defaults to 1.0 for unknown PCs).
    pub fn dram_rate_of(&self, pc: u32) -> f64 {
        self.per_pc.get(&pc).map_or(1.0, |&(_, r)| r.dram)
    }
}

impl MemorySystem for AnalyticalMemory {
    fn access(&mut self, sm: usize, pc: u32, txns: &[MemTxn], now: Cycle) -> MemReply {
        self.accesses += 1;
        self.txns += txns.len() as u64;
        let (l_inst, rates) = self
            .per_pc
            .get(&pc)
            .copied()
            .unwrap_or((self.default_latency, PcHitRates::all_dram()));
        let dram_rate = rates.dram;
        // Expected per-level service counts from the rate profile: the
        // estimated hierarchy statistics the model reports in place of
        // simulated ones.
        let n = txns.len() as f64;
        let writes = txns.iter().filter(|t| t.write).count() as f64;
        self.est_l1_hits += rates.l1 * n;
        self.est_l1_misses += (rates.l2 + rates.dram) * n;
        self.est_l2_hits += rates.l2 * n;
        // Every DRAM-served transaction fetches the line (write-allocate),
        // and a missing store additionally writes the dirty line back —
        // the same ~0.75 writebacks-per-store factor the bandwidth model
        // below uses.
        self.est_dram_reads += rates.dram * n;
        self.est_dram_writes += 0.75 * rates.dram * writes;
        let heap = &mut self.outstanding[sm];
        while heap.peek().is_some_and(|Reverse(t)| *t <= now) {
            heap.pop();
        }
        // Contention adder, part 1: queueing pressure from this SM's
        // outstanding transactions plus serialization of this access's own
        // transactions.
        let pressure = heap.len() as f64 * self.contention_per_txn;
        let serialization = (txns.len().saturating_sub(1)) as f64;

        // Part 2: the global bandwidth ceiling. Each expected DRAM
        // transaction advances the shared service clock; in saturation the
        // clock overtakes the latency estimate and throughput converges to
        // the channels' effective bandwidth.
        // A missing load costs one DRAM read. A missing store costs more:
        // the write-allocate L2 fetches the line (one read) and eventually
        // writes the dirty line back (~0.75 writebacks per store observed
        // against the cycle-accurate hierarchy).
        let dram_txns: f64 = txns
            .iter()
            .map(|t| if t.write { 1.75 } else { 1.0 })
            .sum::<f64>()
            * dram_rate;
        self.bw_next_free = self.bw_next_free.max(now as f64) + dram_txns * self.bw_cycles_per_txn;

        let latency_done =
            now + l_inst.round() as Cycle + (pressure + serialization).round() as u64;
        let done = latency_done.max(self.bw_next_free as Cycle);
        self.contention_cycles += done - (now + l_inst.round() as Cycle).min(done);

        for _ in txns {
            heap.push(Reverse(done));
        }
        MemReply::Done(done)
    }

    fn advance(&mut self, _now: Cycle, _completions: &mut Vec<MemCompletion>) {}

    fn next_event(&self) -> Option<Cycle> {
        None
    }

    fn report(&self, collector: &mut MetricsCollector) {
        let mut scope = collector.scope("mem");
        scope.set("accesses", Value::Count(self.accesses));
        scope.set("txns", Value::Count(self.txns));
        scope.set("contention_cycles", Value::Cycles(self.contention_cycles));
        scope.set("model.pcs", Value::Count(self.per_pc.len() as u64));
        // Estimated hierarchy statistics, under the same keys the
        // cycle-accurate hierarchy reports, so the stat catalog's
        // l1/l2/dram entries exist for every preset.
        scope.set("l1.hits", Value::Count(self.est_l1_hits.round() as u64));
        scope.set("l1.misses", Value::Count(self.est_l1_misses.round() as u64));
        let l1_total = self.est_l1_hits + self.est_l1_misses;
        scope.set(
            "l1.miss_rate",
            Value::Ratio(if l1_total == 0.0 {
                0.0
            } else {
                self.est_l1_misses / l1_total
            }),
        );
        let l2_total = self.est_l2_hits + self.est_dram_reads;
        scope.set(
            "l2.miss_rate",
            Value::Ratio(if l2_total == 0.0 {
                0.0
            } else {
                self.est_dram_reads / l2_total
            }),
        );
        scope.set(
            "dram.reads",
            Value::Count(self.est_dram_reads.round() as u64),
        );
        scope.set(
            "dram.writes",
            Value::Count(self.est_dram_writes.round() as u64),
        );
    }

    fn name(&self) -> &'static str {
        "analytical_memory"
    }

    fn report_profile(&mut self, prof: &mut Profiler) {
        // The analytical model is evaluated synchronously inside the LD/ST
        // issue path, so its wall time already lands in the ldst-coalescer
        // span; here it contributes its event volume and the contention
        // cycles it charged this kernel.
        let accesses = self.accesses - self.prof_accesses;
        let contention = self.contention_cycles - self.prof_contention;
        self.prof_accesses = self.accesses;
        self.prof_contention = self.contention_cycles;
        if accesses > 0 {
            prof.record_wall_ns(ProfModule::MemAnalytical, 0, accesses);
        }
        if contention > 0 {
            prof.add_cycles(ProfModule::MemAnalytical, contention);
        }
    }

    fn save_state(&self) -> Result<Json, String> {
        // The per-PC latency table and the Eq. 1 terms are a pure function
        // of the configuration and the pre-pass, which a resumed run
        // rebuilds identically — only the evolving timing state travels.
        // Outstanding completion times may legitimately lie in the future
        // at a kernel boundary; heap iteration order is unspecified, so
        // they are sorted for a canonical encoding.
        let mut w = WordWriter::new();
        w.push_f64(self.bw_next_free);
        w.push(self.accesses);
        w.push(self.txns);
        w.push(self.contention_cycles);
        w.push(self.prof_accesses);
        w.push(self.prof_contention);
        w.push_f64(self.est_l1_hits);
        w.push_f64(self.est_l1_misses);
        w.push_f64(self.est_l2_hits);
        w.push_f64(self.est_dram_reads);
        w.push_f64(self.est_dram_writes);
        w.push(self.outstanding.len() as u64);
        for heap in &self.outstanding {
            let mut times: Vec<Cycle> = heap.iter().map(|&Reverse(t)| t).collect();
            times.sort_unstable();
            w.push_slice(&times);
        }
        Ok(Json::obj(vec![
            ("kind", Json::str("analytical")),
            ("v", Json::str(w.finish())),
        ]))
    }

    fn load_state(&mut self, state: &Json) -> Result<(), String> {
        let kind = state.get("kind").and_then(Json::as_str).unwrap_or("?");
        if kind != "analytical" {
            return Err(format!(
                "memory snapshot is for a {kind:?} model, this run uses analytical"
            ));
        }
        let text = state
            .get("v")
            .and_then(Json::as_str)
            .ok_or_else(|| "memory snapshot missing words".to_owned())?;
        let mut r = WordReader::new(text, "analytical memory");
        let bw_next_free = r.next_f64()?;
        let accesses = r.next()?;
        let txns = r.next()?;
        let contention_cycles = r.next()?;
        let prof_accesses = r.next()?;
        let prof_contention = r.next()?;
        let est_l1_hits = r.next_f64()?;
        let est_l1_misses = r.next_f64()?;
        let est_l2_hits = r.next_f64()?;
        let est_dram_reads = r.next_f64()?;
        let est_dram_writes = r.next_f64()?;
        let nsm = r.next_usize()?;
        if nsm != self.outstanding.len() {
            return Err(format!(
                "memory snapshot has {nsm} SMs, this config has {}",
                self.outstanding.len()
            ));
        }
        let mut outstanding = Vec::with_capacity(nsm);
        for _ in 0..nsm {
            outstanding.push(r.next_slice()?.into_iter().map(Reverse).collect());
        }
        r.finish()?;
        self.bw_next_free = bw_next_free;
        self.accesses = accesses;
        self.txns = txns;
        self.contention_cycles = contention_cycles;
        self.prof_accesses = prof_accesses;
        self.prof_contention = prof_contention;
        self.est_l1_hits = est_l1_hits;
        self.est_l1_misses = est_l1_misses;
        self.est_l2_hits = est_l2_hits;
        self.est_dram_reads = est_dram_reads;
        self.est_dram_writes = est_dram_writes;
        self.outstanding = outstanding;
        Ok(())
    }
}

/// Streaming accumulator behind [`build_analytical_memory`]: the
/// functional cache-simulation pre-pass (§III-D2's "cache simulator")
/// consumed kernel-by-kernel, so a lazily-decoded application never has to
/// be materialized whole. Feed kernels in launch order, then
/// [`finish`](AnalyticalMemoryBuilder::finish).
pub struct AnalyticalMemoryBuilder {
    cfg: GpuConfig,
    funcsim: FunctionalCacheSim,
    mapping: AddressMapping,
    pcs: std::collections::HashSet<u32>,
    num_sms: usize,
}

impl AnalyticalMemoryBuilder {
    /// Start a pre-pass for the given hardware configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        AnalyticalMemoryBuilder {
            cfg: cfg.clone(),
            funcsim: FunctionalCacheSim::new(cfg),
            mapping: AddressMapping::new(&cfg.sm.l1d),
            pcs: std::collections::HashSet::new(),
            num_sms: cfg.num_sms.max(1) as usize,
        }
    }

    /// Replay one kernel's global/local memory instructions through the
    /// functional cache simulator. The kernel can be dropped afterwards.
    pub fn feed_kernel(&mut self, kernel: &swiftsim_trace::KernelTrace) {
        for (b, block) in kernel.blocks().iter().enumerate() {
            // Approximate the block scheduler's round-robin placement.
            let sm = b % self.num_sms;
            for warp in block.warps() {
                for inst in warp {
                    let Some(mem) = &inst.mem else { continue };
                    if !matches!(
                        mem.space,
                        swiftsim_trace::MemSpace::Global | swiftsim_trace::MemSpace::Local
                    ) {
                        continue;
                    }
                    let addrs = mem.addresses.expand(inst.active_lanes());
                    for txn in swiftsim_mem::coalesce_accesses(
                        &self.mapping,
                        &addrs,
                        mem.width,
                        inst.opcode.is_store(),
                    ) {
                        self.funcsim.access(sm, inst.pc, txn);
                    }
                    self.pcs.insert(inst.pc);
                }
            }
        }
    }

    /// Instantiate the Eq. 1 model from the accumulated per-PC hit rates.
    pub fn finish(self) -> Box<dyn MemorySystem> {
        let pcs: Vec<u32> = self.pcs.into_iter().collect();
        Box::new(AnalyticalMemory::from_funcsim(
            &self.cfg,
            &self.funcsim,
            &pcs,
        ))
    }
}

/// Build an [`AnalyticalMemory`] for `source`: the functional
/// cache-simulation pre-pass replays every global/local memory instruction
/// of the trace to obtain per-PC hit rates, then instantiates the Eq. 1
/// model from them. Kernels are decoded one at a time and dropped, so peak
/// memory is one kernel. The pre-pass cost is part of Swift-Sim-Memory's
/// runtime and is orders of magnitude cheaper than cycle-accurate
/// simulation.
///
/// # Errors
///
/// Returns [`crate::SimError::Trace`] when a kernel fails to decode.
pub fn build_analytical_memory(
    cfg: &GpuConfig,
    source: &dyn swiftsim_trace::TraceSource,
) -> Result<Box<dyn MemorySystem>, crate::SimError> {
    let all: Vec<usize> = (0..source.num_kernels()).collect();
    build_analytical_memory_for(cfg, source, &all)
}

/// [`build_analytical_memory`] restricted to the given kernel launches —
/// the pre-pass a sampled run uses, feeding only the launches it will
/// simulate in detail. Replayed launches are never decoded, which is where
/// most of kernel-level sampling's speedup comes from.
///
/// # Errors
///
/// Returns [`crate::SimError::Trace`] when a kernel fails to decode.
pub fn build_analytical_memory_for(
    cfg: &GpuConfig,
    source: &dyn swiftsim_trace::TraceSource,
    kernels: &[usize],
) -> Result<Box<dyn MemorySystem>, crate::SimError> {
    let mut builder = AnalyticalMemoryBuilder::new(cfg);
    for &k in kernels {
        let kernel = source.decode_kernel(k)?;
        builder.feed_kernel(&kernel);
    }
    Ok(builder.finish())
}

/// Build an [`AnalyticalMemory`] using the *reuse-distance tool* instead of
/// the functional cache simulator — the other hit-rate source §III-D2
/// names. Stack distances are computed per SM for the L1 (stores bypass
/// the write-through, no-allocate L1) and globally for the shared L2; an
/// access is predicted to hit a level when its distance is below that
/// level's line capacity (fully-associative LRU approximation — exactly
/// the assumption §II-B criticizes, which is why non-LRU exploration needs
/// the cycle-accurate cache module instead).
pub fn build_analytical_memory_reuse(
    cfg: &GpuConfig,
    source: &dyn swiftsim_trace::TraceSource,
) -> Result<Box<dyn MemorySystem>, crate::SimError> {
    let all: Vec<usize> = (0..source.num_kernels()).collect();
    build_analytical_memory_reuse_for(cfg, source, &all)
}

/// [`build_analytical_memory_reuse`] restricted to the given kernel
/// launches (see [`build_analytical_memory_for`]).
///
/// # Errors
///
/// Returns [`crate::SimError::Trace`] when a kernel fails to decode.
pub fn build_analytical_memory_reuse_for(
    cfg: &GpuConfig,
    source: &dyn swiftsim_trace::TraceSource,
    kernels: &[usize],
) -> Result<Box<dyn MemorySystem>, crate::SimError> {
    let mut builder = ReuseAnalyticalMemoryBuilder::new(cfg);
    for &k in kernels {
        let kernel = source.decode_kernel(k)?;
        builder.feed_kernel(&kernel);
    }
    Ok(builder.finish())
}

#[derive(Default, Clone, Copy)]
struct ReuseCounts {
    l1: u64,
    l2: u64,
    dram: u64,
}

/// Streaming accumulator behind [`build_analytical_memory_reuse`]: the
/// reuse-distance pre-pass consumed kernel-by-kernel. Feed kernels in
/// launch order, then [`finish`](ReuseAnalyticalMemoryBuilder::finish).
pub struct ReuseAnalyticalMemoryBuilder {
    cfg: GpuConfig,
    mapping: AddressMapping,
    num_sms: usize,
    l1_lines: u64,
    l2_lines: u64,
    l1_rd: Vec<ReuseDistanceAnalyzer>,
    l2_rd: ReuseDistanceAnalyzer,
    per_pc: HashMap<u32, ReuseCounts>,
}

impl ReuseAnalyticalMemoryBuilder {
    /// Start a pre-pass for the given hardware configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        let num_sms = cfg.num_sms.max(1) as usize;
        ReuseAnalyticalMemoryBuilder {
            cfg: cfg.clone(),
            mapping: AddressMapping::new(&cfg.sm.l1d),
            num_sms,
            l1_lines: u64::from(cfg.sm.l1d.sets) * u64::from(cfg.sm.l1d.ways),
            l2_lines: u64::from(cfg.memory.l2.sets)
                * u64::from(cfg.memory.l2.ways)
                * u64::from(cfg.memory.partitions),
            l1_rd: (0..num_sms).map(|_| ReuseDistanceAnalyzer::new()).collect(),
            l2_rd: ReuseDistanceAnalyzer::new(),
            per_pc: HashMap::new(),
        }
    }

    /// Replay one kernel's global/local memory instructions through the
    /// reuse-distance analyzers. The kernel can be dropped afterwards.
    pub fn feed_kernel(&mut self, kernel: &swiftsim_trace::KernelTrace) {
        for (b, block) in kernel.blocks().iter().enumerate() {
            let sm = b % self.num_sms;
            for warp in block.warps() {
                for inst in warp {
                    let Some(mem) = &inst.mem else { continue };
                    if !matches!(
                        mem.space,
                        swiftsim_trace::MemSpace::Global | swiftsim_trace::MemSpace::Local
                    ) {
                        continue;
                    }
                    let addrs = mem.addresses.expand(inst.active_lanes());
                    let counts = self.per_pc.entry(inst.pc).or_default();
                    for txn in swiftsim_mem::coalesce_accesses(
                        &self.mapping,
                        &addrs,
                        mem.width,
                        inst.opcode.is_store(),
                    ) {
                        let l1_hit = if txn.write {
                            false // write-through, no-write-allocate L1
                        } else {
                            matches!(self.l1_rd[sm].record(txn.line_addr),
                                     Some(d) if d < self.l1_lines)
                        };
                        if l1_hit {
                            counts.l1 += 1;
                            continue;
                        }
                        let l2_hit = matches!(self.l2_rd.record(txn.line_addr),
                                              Some(d) if d < self.l2_lines);
                        if l2_hit {
                            counts.l2 += 1;
                        } else {
                            counts.dram += 1;
                        }
                    }
                }
            }
        }
    }

    /// Instantiate the Eq. 1 model from the accumulated hit counts.
    pub fn finish(self) -> Box<dyn MemorySystem> {
        let rates: HashMap<u32, PcHitRates> = self
            .per_pc
            .into_iter()
            .map(|(pc, c)| {
                let total = (c.l1 + c.l2 + c.dram).max(1) as f64;
                (
                    pc,
                    PcHitRates {
                        l1: c.l1 as f64 / total,
                        l2: c.l2 as f64 / total,
                        dram: c.dram as f64 / total,
                    },
                )
            })
            .collect();
        Box::new(AnalyticalMemory::new(&self.cfg, &rates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn small_cfg() -> GpuConfig {
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 2;
        cfg.memory.partitions = 2;
        cfg
    }

    fn read(line: u64) -> MemTxn {
        MemTxn {
            line_addr: line,
            sector_mask: 0b0001,
            write: false,
        }
    }

    fn drain(mem: &mut CycleAccurateMemory, until: Cycle) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        let mut now = 0;
        while now <= until {
            match mem.next_event() {
                Some(t) if t <= until => now = t,
                _ => break,
            }
            mem.advance(now, &mut out);
        }
        out
    }

    #[test]
    fn cold_load_misses_all_the_way_to_dram() {
        let cfg = small_cfg();
        let mut mem = CycleAccurateMemory::new(&cfg);
        let reply = mem.access(0, 0x10, &[read(0x1000)], 0);
        let MemReply::Pending(token) = reply else {
            panic!("cold load must be pending, got {reply:?}");
        };
        let done = drain(&mut mem, 100_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, token);
        // Must pay at least NoC + DRAM + NoC.
        let floor = Cycle::from(2 * cfg.noc.latency + cfg.memory.dram_latency);
        assert!(done[0].at >= floor, "{} < {floor}", done[0].at);
    }

    #[test]
    fn warm_load_hits_in_l1() {
        let cfg = small_cfg();
        let mut mem = CycleAccurateMemory::new(&cfg);
        mem.access(0, 0x10, &[read(0x1000)], 0);
        drain(&mut mem, 100_000);
        let reply = mem.access(0, 0x10, &[read(0x1000)], 10_000);
        assert!(
            matches!(reply, MemReply::Done(at) if at == 10_000 + Cycle::from(cfg.sm.l1d.latency)),
            "second access must be an L1 hit, got {reply:?}"
        );
        assert_eq!(mem.l1_stats(0).hits, 1);
    }

    #[test]
    fn cross_sm_reuse_hits_l2() {
        let cfg = small_cfg();
        let mut mem = CycleAccurateMemory::new(&cfg);
        mem.access(0, 0x10, &[read(0x1000)], 0);
        drain(&mut mem, 100_000);
        let reply = mem.access(1, 0x10, &[read(0x1000)], 10_000);
        let MemReply::Pending(_) = reply else {
            panic!("L1 of SM1 is cold");
        };
        let done = drain(&mut mem, 200_000);
        assert_eq!(done.len(), 1);
        // Served by L2: faster than DRAM path, slower than L1.
        let dram_floor = Cycle::from(cfg.memory.dram_latency);
        assert!(done[0].at - 10_000 < dram_floor + 300);
        assert!(mem.l2_miss_rate() < 1.0);
    }

    #[test]
    fn stores_complete_immediately() {
        let cfg = small_cfg();
        let mut mem = CycleAccurateMemory::new(&cfg);
        let w = MemTxn {
            line_addr: 0x2000,
            sector_mask: 1,
            write: true,
        };
        let reply = mem.access(0, 0x20, &[w], 0);
        assert!(matches!(reply, MemReply::Done(_)));
        // The store still generates downstream traffic.
        drain(&mut mem, 100_000);
        let mut collector = MetricsCollector::new();
        mem.report(&mut collector);
        assert!(collector.count("mem.dram.writes").unwrap_or(0) <= 1);
    }

    #[test]
    fn multi_txn_load_completes_once() {
        let cfg = small_cfg();
        let mut mem = CycleAccurateMemory::new(&cfg);
        let reply = mem.access(0, 0x30, &[read(0x1000), read(0x9000), read(0x5000)], 0);
        let MemReply::Pending(token) = reply else {
            panic!()
        };
        let done = drain(&mut mem, 1_000_000);
        assert_eq!(done.len(), 1, "exactly one completion for the instruction");
        assert_eq!(done[0].token, token);
    }

    #[test]
    fn analytical_matches_eq1() {
        let cfg = small_cfg();
        let terms = LatencyTerms::from_config(&cfg);
        let rates = PcHitRates {
            l1: 0.5,
            l2: 0.3,
            dram: 0.2,
        };
        let expect = 0.5 * terms.l1 + 0.3 * terms.l2 + 0.2 * terms.dram;
        assert!((terms.expected_latency(rates) - expect).abs() < 1e-9);

        let mut table = HashMap::new();
        table.insert(0x40u32, rates);
        let mut mem = AnalyticalMemory::new(&cfg, &table);
        let MemReply::Done(at) = mem.access(0, 0x40, &[read(0x0)], 100) else {
            panic!("analytical accesses always complete immediately")
        };
        assert_eq!(at, 100 + expect.round() as Cycle);
    }

    #[test]
    fn analytical_unknown_pc_uses_dram_latency() {
        let cfg = small_cfg();
        let mem = AnalyticalMemory::new(&cfg, &HashMap::new());
        let terms = mem.terms();
        assert!((mem.latency_of(0x999) - terms.dram).abs() < 1e-9);
    }

    #[test]
    fn analytical_contention_grows_with_outstanding() {
        let cfg = small_cfg();
        let mut mem = AnalyticalMemory::new(&cfg, &HashMap::new());
        let MemReply::Done(first) = mem.access(0, 1, &[read(0)], 0) else {
            panic!()
        };
        // Pile on more accesses in the same cycle: later ones see pressure.
        let mut last = first;
        for i in 1..20u64 {
            let MemReply::Done(at) = mem.access(0, 1, &[read(i * 0x80)], 0) else {
                panic!()
            };
            assert!(at >= last, "latency must not shrink under load");
            last = at;
        }
        assert!(last > first, "contention adder must kick in");
        // A different SM is unaffected.
        let MemReply::Done(other) = mem.access(1, 1, &[read(0)], 0) else {
            panic!()
        };
        assert_eq!(other, first);
    }

    #[test]
    fn analytical_outstanding_drains_over_time() {
        let cfg = small_cfg();
        let mut mem = AnalyticalMemory::new(&cfg, &HashMap::new());
        for i in 0..20u64 {
            mem.access(0, 1, &[read(i * 0x80)], 0);
        }
        // Far in the future all outstanding txns have drained.
        let MemReply::Done(at) = mem.access(0, 1, &[read(0)], 1_000_000) else {
            panic!()
        };
        let MemReply::Done(fresh) = mem.access(1, 1, &[read(0)], 1_000_000) else {
            panic!()
        };
        assert!(at <= fresh + 1, "drained SM behaves like a fresh one");
    }

    #[test]
    fn reports_are_populated() {
        let cfg = small_cfg();
        let mut mem = CycleAccurateMemory::new(&cfg);
        mem.access(0, 0x10, &[read(0x1000)], 0);
        drain(&mut mem, 100_000);
        let mut c = MetricsCollector::new();
        mem.report(&mut c);
        assert_eq!(c.count("mem.l1.misses"), Some(1));
        assert_eq!(c.count("mem.dram.reads"), Some(1));

        let mut an = AnalyticalMemory::new(&cfg, &HashMap::new());
        an.access(0, 1, &[read(0)], 0);
        let mut c2 = MetricsCollector::new();
        an.report(&mut c2);
        assert_eq!(c2.count("mem.accesses"), Some(1));
    }
}
