//! The typed stat catalog: every statistic a simulation exports, as an
//! enumerable, documented, stably-named identifier.
//!
//! Before this module, consumers (the CLI's `--json`, campaign JSONL rows,
//! serve results, benches) string-matched into [`MetricsCollector`] keys;
//! a renamed counter silently read as zero. The catalog closes that hole:
//!
//! * every exported stat is a [`StatId`] variant with a stable snake_case
//!   [`name`](StatId::name), a [`unit`](StatId::unit), and a doc string;
//! * [`SimulationResult::stats`] returns the enumerable `(StatId, f64)`
//!   view shared by every product surface, including the validation
//!   harness (`crates/validate`);
//! * [`StatId::from_name`] turns an unknown or renamed stat name into a
//!   **load-time error** instead of a silent zero — result documents with
//!   unrecognized stat names are rejected by
//!   [`SimulationResult::from_json`](crate::SimulationResult::from_json).
//!
//! Stat names are a compatibility surface: the golden snapshot test
//! (`tests/stat_catalog.rs`) pins the full catalog; regenerate with
//! `UPDATE_STATS=1 cargo test -p swiftsim-core --test stat_catalog` when a
//! change is intentional, and bump [`crate::RESULT_SCHEMA_VERSION`] when a
//! stat changes meaning.
//!
//! [`MetricsCollector`]: swiftsim_metrics::MetricsCollector

use crate::result::SimulationResult;
use swiftsim_metrics::Value;

/// The unit of one catalog stat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatUnit {
    /// Simulated cycles.
    Cycles,
    /// An event count.
    Count,
    /// A dimensionless ratio (rates in `[0, 1]`, IPC).
    Ratio,
}

impl StatUnit {
    /// Stable lowercase token (`"cycles"`, `"count"`, `"ratio"`).
    pub fn token(self) -> &'static str {
        match self {
            StatUnit::Cycles => "cycles",
            StatUnit::Count => "count",
            StatUnit::Ratio => "ratio",
        }
    }
}

macro_rules! stat_catalog {
    ($( $variant:ident => ($name:literal, $unit:ident, $key:expr, $doc:literal), )+) => {
        /// One statistic of the typed stat catalog.
        ///
        /// Variants are ordered as they appear in reports; the order is part
        /// of the golden snapshot.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum StatId {
            $(
                #[doc = $doc]
                $variant,
            )+
        }

        impl StatId {
            /// Every catalog stat, in report order.
            pub const ALL: &'static [StatId] = &[ $( StatId::$variant, )+ ];

            /// The stable snake_case name (the key used in the `stats`
            /// block of result documents).
            pub fn name(self) -> &'static str {
                match self { $( StatId::$variant => $name, )+ }
            }

            /// The stat's unit.
            pub fn unit(self) -> StatUnit {
                match self { $( StatId::$variant => StatUnit::$unit, )+ }
            }

            /// One-line description (the golden catalog pins it).
            pub fn doc(self) -> &'static str {
                match self { $( StatId::$variant => $doc, )+ }
            }

            /// The [`MetricsCollector`] key this stat is sourced from, or
            /// `None` for stats derived from the result itself.
            ///
            /// [`MetricsCollector`]: swiftsim_metrics::MetricsCollector
            pub fn metric_key(self) -> Option<&'static str> {
                match self { $( StatId::$variant => $key, )+ }
            }

            /// Resolve a stable name back to its [`StatId`] — the
            /// load-time guard against renamed or misspelled stat names.
            ///
            /// # Errors
            ///
            /// Returns the offending name when it is not in the catalog.
            pub fn from_name(name: &str) -> Result<StatId, UnknownStat> {
                match name {
                    $( $name => Ok(StatId::$variant), )+
                    _ => Err(UnknownStat { name: name.to_owned() }),
                }
            }
        }
    };
}

stat_catalog! {
    Cycles => ("cycles", Cycles, None,
        "Total predicted execution cycles (kernels serialize)."),
    Instructions => ("instructions", Count, None,
        "Dynamic instructions issued across all kernels."),
    Ipc => ("ipc", Ratio, None,
        "Whole-application instructions per cycle over the whole GPU."),
    SimThreads => ("sim_threads", Count, Some("sim.threads"),
        "Host worker threads the simulation ran with."),
    ActiveCycles => ("active_cycles", Cycles, Some("core.active_cycles"),
        "Cycles in which at least one SM made progress."),
    MemInsts => ("mem_insts", Count, Some("core.mem_insts"),
        "Dynamic global/local memory instructions issued."),
    StallScoreboardCycles => ("stall_scoreboard_cycles", Cycles, Some("core.stall.scoreboard"),
        "Warp-cycles stalled on scoreboard dependencies."),
    StallUnitBusyCycles => ("stall_unit_busy_cycles", Cycles, Some("core.stall.unit_busy"),
        "Warp-cycles stalled on a busy execution unit."),
    StallBarrierCycles => ("stall_barrier_cycles", Cycles, Some("core.stall.barrier"),
        "Warp-cycles stalled at block barriers."),
    StallEmptyCycles => ("stall_empty_cycles", Cycles, Some("core.stall.empty"),
        "Warp-cycles with no instruction available to issue."),
    SharedBankConflicts => ("shared_bank_conflicts", Count, Some("core.shared.bank_conflicts"),
        "Shared-memory bank conflicts observed at issue."),
    IcacheMisses => ("icache_misses", Count, Some("core.icache.misses"),
        "Instruction-cache misses (detailed frontend only)."),
    CcacheMisses => ("ccache_misses", Count, Some("core.ccache.misses"),
        "Constant-cache misses (detailed frontend only)."),
    L1Hits => ("l1_hits", Count, Some("mem.l1.hits"),
        "Global/local transactions served by an L1 data cache."),
    L1Misses => ("l1_misses", Count, Some("mem.l1.misses"),
        "Global/local transactions missing all L1 data caches."),
    L1MissRate => ("l1_miss_rate", Ratio, Some("mem.l1.miss_rate"),
        "L1 data-cache miss rate: misses / (hits + misses)."),
    L1BankConflicts => ("l1_bank_conflicts", Count, Some("mem.l1.bank_conflicts"),
        "L1 data-cache bank conflicts (cycle-accurate memory only)."),
    L1ReservationFailures => ("l1_reservation_failures", Count, Some("mem.l1.reservation_failures"),
        "L1 MSHR/line reservation failures (cycle-accurate memory only)."),
    L2MissRate => ("l2_miss_rate", Ratio, Some("mem.l2.miss_rate"),
        "L2 miss rate over L2 accesses (L1 misses reaching the L2)."),
    DramReads => ("dram_reads", Count, Some("mem.dram.reads"),
        "DRAM read transactions (line fills)."),
    DramWrites => ("dram_writes", Count, Some("mem.dram.writes"),
        "DRAM write transactions (dirty-line writebacks)."),
    NocFwdStallCycles => ("noc_fwd_stall_cycles", Cycles, Some("mem.noc.fwd_stall_cycles"),
        "Request-NoC port stall cycles (cycle-accurate memory only)."),
    NocRspStallCycles => ("noc_rsp_stall_cycles", Cycles, Some("mem.noc.rsp_stall_cycles"),
        "Response-NoC port stall cycles (cycle-accurate memory only)."),
    MemAccesses => ("mem_accesses", Count, Some("mem.accesses"),
        "Memory-system access requests (one per coalesced instruction)."),
    MemRetries => ("mem_retries", Count, Some("mem.retries"),
        "LD/ST retry cycles after a memory-system rejection."),
    MemEvents => ("mem_events", Count, Some("mem.events"),
        "Memory-system events processed (cycle-accurate memory only)."),
    MemStoreOnlyAccesses => ("mem_store_only_accesses", Count, Some("mem.store_only_accesses"),
        "Accesses consisting only of store transactions."),
    MemTxns => ("mem_txns", Count, Some("mem.txns"),
        "Coalesced memory transactions (analytical memory only)."),
    MemContentionCycles => ("mem_contention_cycles", Cycles, Some("mem.contention_cycles"),
        "Extra latency charged by the analytical contention adder."),
    MemModelPcs => ("mem_model_pcs", Count, Some("mem.model.pcs"),
        "Distinct PCs with profiled hit rates (analytical memory only)."),
}

/// Error of [`StatId::from_name`]: the name is not in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStat {
    /// The unrecognized stat name.
    pub name: String,
}

impl std::fmt::Display for UnknownStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown stat name {:?} (not in the typed stat catalog; renamed \
             stats require a schema bump, see swiftsim_core::StatId)",
            self.name
        )
    }
}

impl std::error::Error for UnknownStat {}

fn value_to_f64(v: Value) -> f64 {
    match v {
        Value::Count(n) | Value::Cycles(n) => n as f64,
        Value::Ratio(r) => r,
    }
}

impl SimulationResult {
    /// The typed, enumerable view of every stat this run produced, in
    /// catalog order.
    ///
    /// Stats a run's module choices do not generate (e.g. NoC stalls under
    /// the analytical memory model) are simply absent, so the same
    /// consumer code works across presets. This is the view behind the
    /// `stats` block of result documents and the validation harness's
    /// input.
    pub fn stats(&self) -> Vec<(StatId, f64)> {
        let mut out = Vec::with_capacity(StatId::ALL.len());
        for &id in StatId::ALL {
            let value = match id {
                StatId::Cycles => Some(self.cycles as f64),
                StatId::Instructions => Some(self.instructions() as f64),
                StatId::Ipc => Some(self.ipc()),
                _ => self
                    .metrics
                    .get(id.metric_key().expect("non-derived stats have a key"))
                    .map(value_to_f64),
            };
            if let Some(v) = value {
                out.push((id, v));
            }
        }
        out
    }

    /// Look up one catalog stat by id; `None` when this run did not
    /// produce it.
    pub fn stat(&self, id: StatId) -> Option<f64> {
        match id {
            StatId::Cycles => Some(self.cycles as f64),
            StatId::Instructions => Some(self.instructions() as f64),
            StatId::Ipc => Some(self.ipc()),
            _ => self
                .metrics
                .get(id.metric_key().expect("non-derived stats have a key"))
                .map(value_to_f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::FidelityConfig;
    use swiftsim_metrics::MetricsCollector;

    fn result_with(metrics: MetricsCollector) -> SimulationResult {
        SimulationResult {
            app: "a".into(),
            simulator: "s".into(),
            fidelity: FidelityConfig::default(),
            cycles: 200,
            kernels: vec![crate::result::KernelResult {
                name: "k".into(),
                cycles: 200,
                instructions: 500,
                blocks: 2,
            }],
            metrics,
            wall_time: std::time::Duration::ZERO,
            confidence: None,
            profile: None,
        }
    }

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for &id in StatId::ALL {
            assert!(seen.insert(id.name()), "duplicate stat name {}", id.name());
            assert!(
                id.name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{} is not snake_case",
                id.name()
            );
            assert!(!id.doc().is_empty());
        }
    }

    #[test]
    fn from_name_round_trips_and_rejects_unknown() {
        for &id in StatId::ALL {
            assert_eq!(StatId::from_name(id.name()), Ok(id));
        }
        let err = StatId::from_name("l1_missrate").unwrap_err();
        assert!(err.to_string().contains("l1_missrate"), "{err}");
    }

    #[test]
    fn stats_view_covers_derived_and_collected() {
        let mut metrics = MetricsCollector::new();
        metrics.set("mem.l1.miss_rate", Value::Ratio(0.25));
        metrics.set("core.mem_insts", Value::Count(42));
        let r = result_with(metrics);
        let stats = r.stats();
        let get = |id: StatId| stats.iter().find(|(s, _)| *s == id).map(|&(_, v)| v);
        assert_eq!(get(StatId::Cycles), Some(200.0));
        assert_eq!(get(StatId::Instructions), Some(500.0));
        assert_eq!(get(StatId::Ipc), Some(2.5));
        assert_eq!(get(StatId::L1MissRate), Some(0.25));
        assert_eq!(get(StatId::MemInsts), Some(42.0));
        // Stats the run did not produce are absent, not zero.
        assert_eq!(get(StatId::DramReads), None);
        assert_eq!(r.stat(StatId::L1MissRate), Some(0.25));
        assert_eq!(r.stat(StatId::DramReads), None);
        // Catalog order is preserved.
        let ids: Vec<StatId> = stats.iter().map(|&(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
}
