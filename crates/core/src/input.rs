//! The unified input type for [`GpuSimulator::run`].
//!
//! Historically the simulator had two entry points — `run(&ApplicationTrace)`
//! for in-memory traces and `run_source(&dyn TraceSource)` for streaming
//! ones — and every caller special-cased the split. [`TraceInput`] collapses
//! them: anything that implements [`TraceSource`] (including
//! `ApplicationTrace` itself and `&dyn TraceSource` trait objects) converts
//! into a `TraceInput` by reference, so `sim.run(&app)` and
//! `sim.run(source.as_ref())` both go through one generic
//! [`GpuSimulator::run`].
//!
//! [`GpuSimulator::run`]: crate::GpuSimulator::run

use swiftsim_trace::TraceSource;

/// A borrowed simulation input: any [`TraceSource`], by reference.
///
/// Constructed via `From`/`Into` — callers pass `&app` or `&source`
/// directly to [`GpuSimulator::run`](crate::GpuSimulator::run) and the
/// blanket conversion below does the rest.
#[derive(Clone, Copy)]
pub struct TraceInput<'a> {
    source: &'a dyn TraceSource,
}

impl<'a> TraceInput<'a> {
    /// The underlying trace source.
    pub fn source(&self) -> &'a dyn TraceSource {
        self.source
    }
}

impl<'a, S: TraceSource> From<&'a S> for TraceInput<'a> {
    fn from(source: &'a S) -> Self {
        TraceInput { source }
    }
}

impl<'a> From<&'a dyn TraceSource> for TraceInput<'a> {
    fn from(source: &'a dyn TraceSource) -> Self {
        TraceInput { source }
    }
}

impl std::fmt::Debug for TraceInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceInput")
            .field("app", &self.source.name())
            .field("kernels", &self.source.num_kernels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};

    fn tiny_app() -> ApplicationTrace {
        let mut kernel = KernelTrace::new("k", (1, 1, 1), (32, 1, 1));
        let blk = kernel.push_block();
        let w = blk.push_warp();
        w.push(InstBuilder::new(Opcode::Exit).pc(0));
        ApplicationTrace::new("tiny", vec![kernel])
    }

    #[test]
    fn converts_from_concrete_and_dyn_sources() {
        let app = tiny_app();
        let from_concrete: TraceInput = (&app).into();
        assert_eq!(from_concrete.source().name(), "tiny");

        let dyn_source: &dyn TraceSource = &app;
        let from_dyn: TraceInput = dyn_source.into();
        assert_eq!(from_dyn.source().num_kernels(), 1);

        let debug = format!("{from_dyn:?}");
        assert!(debug.contains("tiny"), "{debug}");
    }
}
