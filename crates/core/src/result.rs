//! Simulation results.

use crate::fidelity::FidelityConfig;
use crate::Cycle;
use swiftsim_metrics::{MetricsCollector, ProfileReport};

/// Outcome of simulating one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Cycles this kernel took (from launch to last block completion).
    pub cycles: Cycle,
    /// Dynamic instructions issued.
    pub instructions: u64,
    /// Thread blocks executed.
    pub blocks: u64,
}

impl KernelResult {
    /// Instructions per cycle over the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }
}

/// Error estimate attached to a sampled run ([`SamplingPolicy`] not Off).
///
/// Per-cluster bounds are the relative spread of the representatives'
/// measured cycle counts; a replayed kernel inherits its cluster's bound,
/// a detailed kernel's bound is zero. The whole-app bound is the
/// replayed-cycle-weighted mean of the per-kernel bounds — the fraction of
/// total predicted cycles that could move if every replayed launch behaved
/// like the farthest-out representative.
///
/// [`SamplingPolicy`]: crate::fidelity::SamplingPolicy
#[derive(Debug, Clone, PartialEq)]
pub struct Confidence {
    /// Distinct launch clusters observed.
    pub clusters: u64,
    /// Kernels simulated in detail (cluster representatives).
    pub sampled_kernels: u64,
    /// Kernels replayed analytically from a representative.
    pub replayed_kernels: u64,
    /// Cycles attributed to replayed kernels.
    pub replayed_cycles: Cycle,
    /// Per-kernel relative error bound, in launch order (parallel to
    /// [`SimulationResult::kernels`]; 0.0 for detailed kernels).
    pub kernel_error_bounds: Vec<f64>,
    /// Whole-application relative cycle error bound.
    pub app_error_bound: f64,
}

/// Outcome of simulating one application.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// Application name.
    pub app: String,
    /// Simulator preset/model description (for reports).
    pub simulator: String,
    /// The resolved per-module fidelity the run used.
    pub fidelity: FidelityConfig,
    /// Total predicted execution cycles (kernels serialize).
    pub cycles: Cycle,
    /// Per-kernel breakdown, in launch order.
    pub kernels: Vec<KernelResult>,
    /// All Metrics Gatherer counters.
    pub metrics: MetricsCollector,
    /// Host wall-clock time spent simulating.
    pub wall_time: std::time::Duration,
    /// Error estimate of a sampled run; `None` when sampling was off.
    pub confidence: Option<Confidence>,
    /// Self-profiling attribution, when the run was built with
    /// [`RunOptions::with_profile(true)`]. Not serialized to JSON result
    /// documents, so results loaded from the campaign cache carry `None`.
    ///
    /// [`RunOptions::with_profile(true)`]: crate::RunOptions::with_profile
    pub profile: Option<ProfileReport>,
}

impl SimulationResult {
    /// Total dynamic instructions across kernels.
    pub fn instructions(&self) -> u64 {
        self.kernels.iter().map(|k| k.instructions).sum()
    }

    /// Whole-application IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions() as f64 / self.cycles as f64
    }

    /// Simulated cycles per host second — the simulation-speed metric the
    /// paper's Fig. 4 scatter plot is built from.
    pub fn sim_rate(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.cycles as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_math() {
        let k = KernelResult {
            name: "k".into(),
            cycles: 100,
            instructions: 250,
            blocks: 2,
        };
        assert!((k.ipc() - 2.5).abs() < 1e-12);
        let zero = KernelResult {
            name: "z".into(),
            cycles: 0,
            instructions: 0,
            blocks: 0,
        };
        assert_eq!(zero.ipc(), 0.0);
    }

    #[test]
    fn result_aggregates() {
        let result = SimulationResult {
            app: "a".into(),
            simulator: "s".into(),
            fidelity: FidelityConfig::default(),
            cycles: 1000,
            kernels: vec![
                KernelResult {
                    name: "k0".into(),
                    cycles: 400,
                    instructions: 800,
                    blocks: 4,
                },
                KernelResult {
                    name: "k1".into(),
                    cycles: 600,
                    instructions: 1200,
                    blocks: 8,
                },
            ],
            metrics: MetricsCollector::new(),
            wall_time: std::time::Duration::from_millis(500),
            confidence: None,
            profile: None,
        };
        assert_eq!(result.instructions(), 2000);
        assert!((result.ipc() - 2.0).abs() < 1e-12);
        assert!((result.sim_rate() - 2000.0).abs() < 1e-9);
    }
}
