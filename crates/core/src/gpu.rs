//! The simulation engine: puts all the modules together (§III-D3).
//!
//! "In each cycle, the Warp Scheduler & Dispatch issues instructions to the
//! execution units and LD/ST units. Upon receiving the instructions, these
//! units calculate the instruction delay based on the \[chosen\] model and
//! return the instruction completion acknowledgment after X cycles. After
//! getting the acknowledgment, the Warp Scheduler & Dispatch then issues
//! the next instruction that depends on the completed instruction,
//! continuing this process until all instructions are executed."
//!
//! The engine runs a *shard*: a subset of SMs with its own memory system.
//! Single-threaded simulation is one shard covering the whole GPU; parallel
//! simulation runs several shards concurrently (see [`crate::parallel`]).
//!
//! # The event-driven cycle-skipping engine
//!
//! Under [`SkipPolicy::EventDriven`] the shard loop fast-forwards over
//! provably quiescent spans instead of ticking them one by one. Every
//! component reports its next-actionable cycle — SMs via
//! [`TickOutcome::next_wakeup`] (writeback heap head, port wakeups), the
//! memory system via [`MemorySystem::next_event`] — and after a fully quiet
//! iteration the loop *arms a jump* to the minimum `t` of those hints. The
//! next iteration runs one more cycle at full fidelity; if it is quiet too
//! (which the loop verifies rather than assumes), its per-SM stat delta is
//! the canonical quiescent-cycle delta, and the loop replays that delta
//! once per skipped cycle and sets the clock to `t`. Stats therefore come
//! out **bit-identical** to the dense loop — the skipped cycles are
//! accounted exactly as if they had been ticked — which the differential
//! suite (`tests/event_engine_equiv.rs`) enforces. Skipped cycles are also
//! attributed to [`ProfModule::CycleSkip`] so profiles show what the
//! engine jumped over.

use crate::alu::{AluModel, AnalyticalAlu, CycleAccurateAlu};
use crate::block_scheduler::{BlockScheduler, Occupancy};
use crate::error::SimError;
use crate::fidelity::{AluModelKind, FidelityConfig, FrontendModelKind, SkipPolicy};
use crate::mem_system::{MemCompletion, MemorySystem};
use crate::scheduler::make_policy;
use crate::sm::{SmCore, SmStats, WbTarget};
use crate::Cycle;
use std::collections::HashMap;
use swiftsim_config::GpuConfig;
use swiftsim_metrics::{ProfModule, Profiler};
use swiftsim_trace::KernelTrace;

#[cfg(doc)]
use crate::sm::TickOutcome;

/// Outcome of simulating one kernel on one shard.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardKernelOutcome {
    /// Cycle (absolute) at which the shard's last block finished.
    pub end_cycle: Cycle,
    /// Aggregated SM counters.
    pub stats: SmStats,
    /// Blocks executed by this shard.
    pub blocks: u64,
}

pub(crate) fn merge_into(total: &mut SmStats, s: SmStats) {
    total.add(&s);
}

pub(crate) fn make_alu(kind: AluModelKind, cfg: &GpuConfig) -> Box<dyn AluModel> {
    match kind {
        AluModelKind::CycleAccurate => Box::new(CycleAccurateAlu::new(&cfg.sm)),
        AluModelKind::Analytical => Box::new(AnalyticalAlu::new(&cfg.sm)),
    }
}

/// Per-shard kernel simulation.
///
/// `block_indices` are the kernel's block ids this shard executes; `sm_ids`
/// are the *global* SM ids the shard owns (their count sets the local SM
/// array size; memory-system calls use local indices, diagnostics use the
/// global ids). `shard` is the shard's index, used only for error
/// reporting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_kernel_shard(
    cfg: &GpuConfig,
    kernel: &KernelTrace,
    block_indices: &[usize],
    sm_ids: &[usize],
    mem: &mut dyn MemorySystem,
    fidelity: FidelityConfig,
    shard: usize,
    start: Cycle,
    prof: &mut Profiler,
) -> Result<ShardKernelOutcome, SimError> {
    let num_local_sms = sm_ids.len();
    if !kernel.is_consistent(cfg.sm.warp_size) {
        return Err(SimError::InconsistentTrace {
            kernel: kernel.name.clone(),
            message: format!(
                "trace has {} blocks for grid {} and warp counts must match block size",
                kernel.blocks().len(),
                kernel.grid_dim
            ),
        });
    }
    let occupancy = Occupancy::compute(&cfg.sm, kernel)?;
    let blocks = kernel.blocks();
    // Uniform per kernel: `is_consistent` checked every block against the
    // launch geometry above.
    let warps_per_block = blocks.first().map_or(0, |b| b.warps().len());
    let detailed_frontend = fidelity.frontend == FrontendModelKind::Detailed;
    let event_driven = fidelity.skip_policy == SkipPolicy::EventDriven;

    let mut sms: Vec<SmCore<'_>> = (0..num_local_sms)
        .map(|i| {
            SmCore::new(
                i,
                sm_ids[i],
                &cfg.sm,
                occupancy.blocks_per_sm as usize,
                warps_per_block,
                make_alu(fidelity.alu, cfg),
                detailed_frontend,
                event_driven,
                &|| make_policy(cfg.sm.scheduler),
            )
        })
        .collect();

    let mut bs = BlockScheduler::new(num_local_sms, block_indices.len(), occupancy.blocks_per_sm);
    let mut tokens: HashMap<u64, (usize, WbTarget)> = HashMap::new();
    let mut completions: Vec<MemCompletion> = Vec::new();
    let mut now = start;
    let mut idle_streak = 0u32;
    // An armed clock jump: `(target, per-SM stat snapshots)` captured at
    // the end of a quiet iteration. See the module docs.
    let mut plan: Option<(Cycle, Vec<SmStats>)> = None;

    loop {
        // 1. Dispatch pending blocks to SMs with free slots (Block
        //    Scheduler, cycle-accurate in every preset).
        let mut installed = false;
        if bs.remaining() > 0 {
            let t0 = prof.start();
            for (sm_idx, sm) in sms.iter_mut().enumerate().take(num_local_sms) {
                while sm.has_free_slot() {
                    match bs.dispatch(sm_idx) {
                        Some(local_idx) => {
                            let global = block_indices[local_idx];
                            sm.install_block(global, &blocks[global], now);
                            installed = true;
                        }
                        None => break,
                    }
                }
            }
            prof.record(ProfModule::BlockScheduler, t0);
        }

        // 2. Deliver memory completions due by now. The memory system
        //    attributes its own time per level (L1/NoC/L2/DRAM) internally;
        //    see MemorySystem::report_profile.
        completions.clear();
        mem.advance(now, &mut completions);
        let delivered = !completions.is_empty();
        for c in completions.drain(..) {
            if let Some((sm, target)) = tokens.remove(&c.token) {
                sms[sm].writeback_now(target);
            }
        }

        // 3. Tick every SM. Warp-scheduler, ALU, and LD/ST time is
        //    attributed inside SmCore::tick.
        let mut issued = 0u32;
        let mut wakeup: Option<Cycle> = None;
        let mut any_unit_busy = false;
        let mut any_completed = false;
        let mut any_tokens = false;
        for (sm_idx, sm) in sms.iter_mut().enumerate() {
            let outcome = sm.tick(now, mem, prof);
            issued += outcome.issued;
            any_unit_busy |= outcome.unit_busy_stall;
            for global in outcome.completed_blocks {
                let _ = global;
                any_completed = true;
                bs.complete(sm_idx);
            }
            for (token, target) in outcome.new_tokens {
                any_tokens = true;
                tokens.insert(token, (sm_idx, target));
            }
            wakeup = match (wakeup, outcome.next_wakeup) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }

        // 4. Termination: every block completed and the memory system is
        //    quiet.
        if bs.all_done() && tokens.is_empty() && mem.next_event().is_none() {
            let mut stats = SmStats::default();
            for sm in &sms {
                merge_into(&mut stats, sm.stats());
            }
            return Ok(ShardKernelOutcome {
                end_cycle: now,
                stats,
                blocks: block_indices.len() as u64,
            });
        }

        // 5. Advance time. A *quiet* iteration is one in which provably
        //    nothing observable happened: no instruction issued, no
        //    port-busy stall about to resolve, no memory completion or new
        //    request, no block installed or retired.
        let quiet = issued == 0
            && !any_unit_busy
            && !delivered
            && !any_completed
            && !any_tokens
            && !installed;

        if let Some((target, snaps)) = plan.take() {
            if quiet {
                // The tick above is the measured canonical quiescent tick;
                // every cycle in (now, target) would repeat it exactly
                // (no writeback, memory event, or unpark can occur before
                // `target` by construction). Replay its delta and jump.
                let extra = target - now - 1;
                for (sm, snap) in sms.iter_mut().zip(&snaps) {
                    sm.scale_quiescent_delta(snap, extra, prof);
                }
                if extra > 0 {
                    prof.add_cycles(ProfModule::CycleSkip, extra);
                }
                now = target;
                idle_streak = 0;
                continue;
            }
            // Something observable happened after all — the iteration
            // above already ran at full fidelity, so just fall through to
            // a normal advance. No state needs undoing.
        }

        if event_driven && quiet {
            let next_mem = mem.next_event();
            let candidate = match (wakeup, next_mem) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if let Some(t) = candidate {
                if t > now + 1 {
                    // Arm the jump; the next iteration measures the
                    // quiescent delta (by then operand collectors and
                    // frontend tag arrays have reached steady state).
                    plan = Some((t, sms.iter().map(|s| s.stats()).collect()));
                }
            }
            now += 1;
            idle_streak += 1;
        } else {
            now += 1;
            idle_streak = if issued > 0 { 0 } else { idle_streak + 1 };
        }
        // A memory event or token always reappears within the DRAM latency;
        // a much longer silent streak means the model deadlocked.
        if idle_streak > 1_000_000 {
            let warp = sms.iter().find_map(|sm| sm.oldest_stalled());
            let pending = mem.oldest_pending();
            let detail = match (warp, pending) {
                (Some(w), Some(m)) => format!("{w}; {m}"),
                (Some(w), None) => w,
                (None, Some(m)) => m,
                (None, None) => "no resident warp or pending memory request".to_owned(),
            };
            return Err(SimError::Deadlock {
                cycle: now,
                shard,
                detail,
            });
        }
    }
}

/// Round-robin split of a kernel's blocks across `shards`.
pub(crate) fn split_blocks(num_blocks: usize, shards: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); shards.max(1)];
    for b in 0..num_blocks {
        out[b % shards.max(1)].push(b);
    }
    out
}

/// Distribute `partitions` memory partitions over shards proportionally to
/// their SM counts, exactly and deterministically.
///
/// Largest-remainder apportionment: every shard gets the floor of its
/// proportional share, then the leftover partitions go one each to the
/// shards with the largest fractional remainders (ties broken by shard
/// index). Shards that still end up with zero take one partition from the
/// currently-richest shard (a shard cannot simulate with no memory
/// partition), so the counts sum to `partitions` whenever
/// `shards <= partitions` and to the shard count otherwise.
pub(crate) fn shard_partitions(partitions: u32, shard_sms: &[u32]) -> Vec<u32> {
    let total: u64 = shard_sms.iter().map(|&s| u64::from(s)).sum();
    if shard_sms.is_empty() || total == 0 {
        return vec![1; shard_sms.len()];
    }
    let mut share: Vec<u32> = shard_sms
        .iter()
        .map(|&s| (u64::from(partitions) * u64::from(s) / total) as u32)
        .collect();
    // Hand out the remainder by descending fractional part, index as the
    // deterministic tiebreak.
    let mut order: Vec<usize> = (0..shard_sms.len()).collect();
    order.sort_by_key(|&i| {
        let frac = u64::from(partitions) * u64::from(shard_sms[i]) % total;
        (std::cmp::Reverse(frac), i)
    });
    let assigned: u32 = share.iter().sum();
    for &i in order
        .iter()
        .take(partitions.saturating_sub(assigned) as usize)
    {
        share[i] += 1;
    }
    // Min-1 floor: fund empty shards from the richest ones while any shard
    // still holds at least 2; once every share is 0 or 1 (possible only
    // when shards > partitions), the remaining zeros are bumped outright.
    for i in 0..share.len() {
        if share[i] > 0 {
            continue;
        }
        let richest = (0..share.len()).max_by_key(|&j| (share[j], std::cmp::Reverse(j)));
        match richest {
            Some(j) if share[j] >= 2 => {
                share[j] -= 1;
                share[i] = 1;
            }
            _ => share[i] = 1,
        }
    }
    share
}

/// A scaled-down configuration for one shard of a parallel run: the shard
/// owns `local_sms` SMs and `partitions` memory partitions (computed for
/// the whole split by [`shard_partitions`], so sibling shards' slices sum
/// to the GPU's total and per-SM bandwidth stays unskewed).
pub(crate) fn shard_config(cfg: &GpuConfig, local_sms: u32, partitions: u32) -> GpuConfig {
    let mut shard = cfg.clone();
    shard.num_sms = local_sms;
    shard.memory.partitions = partitions.max(1);
    shard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_blocks_round_robin() {
        let s = split_blocks(7, 3);
        assert_eq!(s[0], vec![0, 3, 6]);
        assert_eq!(s[1], vec![1, 4]);
        assert_eq!(s[2], vec![2, 5]);
        assert_eq!(
            split_blocks(0, 3),
            vec![vec![], vec![], vec![]] as Vec<Vec<usize>>
        );
    }

    #[test]
    fn shard_config_scales_partitions() {
        let cfg = swiftsim_config::presets::rtx2080ti(); // 68 SMs, 22 parts
        let parts = shard_partitions(cfg.memory.partitions, &[17, 17, 17, 17]);
        assert_eq!(parts.iter().sum::<u32>(), 22);
        let shard = shard_config(&cfg, 17, parts[0]);
        assert_eq!(shard.num_sms, 17);
        assert_eq!(shard.memory.partitions, parts[0]);
        // Degenerate shard still has one partition.
        assert_eq!(shard_config(&cfg, 1, 0).memory.partitions, 1);
    }

    #[test]
    fn shard_partitions_sum_to_the_gpu_total() {
        // The old floor-division scaling lost partitions on uneven splits
        // (e.g. 22 partitions over 23/23/22 SMs gave 7+7+7 = 21), silently
        // skewing per-SM bandwidth between shards. The apportionment must
        // be exact for every shard count.
        let cfg = swiftsim_config::presets::rtx2080ti(); // 68 SMs, 22 parts
        let total_parts = cfg.memory.partitions;
        for shards in 1..=cfg.num_sms as usize {
            let sizes: Vec<u32> = crate::parallel::split_sms(cfg.num_sms as usize, shards)
                .iter()
                .map(|&n| n as u32)
                .collect();
            let parts = shard_partitions(total_parts, &sizes);
            let sum: u32 = parts.iter().sum();
            // Every shard needs >= 1 partition to simulate, so splits wider
            // than the partition count sum to the shard count instead.
            let expect = total_parts.max(shards as u32);
            assert_eq!(sum, expect, "{shards} shards, sizes {sizes:?}: {parts:?}");
            assert!(parts.iter().all(|&p| p >= 1), "{parts:?}");
            // Proportionality: a shard never gets more than its ceiling
            // share plus the min-1 bump.
            for (i, &p) in parts.iter().enumerate() {
                let ceil = (u64::from(total_parts) * u64::from(sizes[i]))
                    .div_ceil(u64::from(cfg.num_sms)) as u32;
                assert!(p <= ceil.max(1), "shard {i}: {p} > ceil {ceil}");
            }
        }
        // The motivating case from the issue: uneven 23/23/22 split.
        let parts = shard_partitions(22, &[23, 23, 22]);
        assert_eq!(parts.iter().sum::<u32>(), 22);
        assert_eq!(parts, vec![8, 7, 7]);
    }
}
