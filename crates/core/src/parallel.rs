//! Parallel simulation (§III-B2, evaluated in §IV-B2).
//!
//! "The modular approach provides us with the opportunity for parallel
//! simulation. We can leverage multithreading to simulate applications
//! concurrently, achieving noticeable speedup."
//!
//! The implementation shards the GPU: each worker thread owns a contiguous
//! group of SMs together with a proportional slice of the memory system
//! (L2 partitions and DRAM channels), so per-SM bandwidth and capacity
//! ratios are preserved. Blocks are distributed round-robin across shards —
//! the same policy the Block Scheduler uses across SMs — and a kernel ends
//! when its slowest shard finishes. Cross-shard L2 sharing is the one
//! interaction this approximates away; it is part of the "minor and
//! acceptable degradation in overall accuracy" the paper trades for speed.

use crate::builder::GpuSimulator;
use crate::error::SimError;
use crate::fidelity::MemoryModelKind;
use crate::gpu::{merge_into, run_kernel_shard, shard_config, shard_partitions, split_blocks};
use crate::mem_system::{
    AnalyticalMemoryBuilder, CycleAccurateMemory, MemorySystem, ReuseAnalyticalMemoryBuilder,
};
use crate::prefetch::Prefetcher;
use crate::result::{KernelResult, SimulationResult};
use crate::sm::SmStats;
use crate::Cycle;
use swiftsim_metrics::{MetricsCollector, ProfileReport, Profiler};
use swiftsim_trace::TraceSource;

/// The worker threads a simulation will use on this host when the run is
/// asked for automatic threading (`RunOptions::with_threads(0)`): the
/// machine's available parallelism. The final count is additionally capped
/// at the simulated GPU's SM count by
/// [`GpuSimulator::try_new`](crate::GpuSimulator::try_new) — a shard needs
/// at least one SM. (An earlier revision hard-capped this at the paper's
/// 50-thread experimental maximum; the cap is gone, the run option
/// decides.)
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `total` SMs into `shards` contiguous groups (sizes differ by at
/// most one).
pub(crate) fn split_sms(total: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1).min(total.max(1));
    let base = total / shards;
    let extra = total % shards;
    (0..shards).map(|i| base + usize::from(i < extra)).collect()
}

pub(crate) fn run_parallel(
    sim: &GpuSimulator,
    source: &dyn TraceSource,
) -> Result<SimulationResult, SimError> {
    let total_sms = sim.cfg.num_sms as usize;
    let group_sizes = split_sms(total_sms, sim.threads);
    let shards = group_sizes.len();

    // The global SM ids each shard owns: contiguous ranges in shard order,
    // so diagnostics (deadlock reports, profiles) name SMs a user can find.
    let sm_id_groups: Vec<Vec<usize>> = {
        let mut next = 0usize;
        group_sizes
            .iter()
            .map(|&n| {
                let ids = (next..next + n).collect();
                next += n;
                ids
            })
            .collect()
    };

    // Shard configurations and memory systems (persisting across kernels so
    // caches stay warm, as in the single-threaded path). Memory partitions
    // are apportioned exactly across the shards — their counts sum to the
    // GPU's total. The analytical pre-passes stream: each kernel is decoded
    // once and fed to every shard's accumulator, then dropped.
    let group_sizes_u32: Vec<u32> = group_sizes.iter().map(|&n| n as u32).collect();
    let partition_split = shard_partitions(sim.cfg.memory.partitions, &group_sizes_u32);
    let shard_cfgs: Vec<_> = group_sizes_u32
        .iter()
        .zip(&partition_split)
        .map(|(&n, &parts)| shard_config(&sim.cfg, n, parts))
        .collect();
    let mut mems: Vec<Box<dyn MemorySystem>> = match sim.fidelity.memory {
        MemoryModelKind::CycleAccurate => shard_cfgs
            .iter()
            .map(|cfg| Box::new(CycleAccurateMemory::new(cfg)) as Box<dyn MemorySystem>)
            .collect(),
        MemoryModelKind::Analytical => {
            let mut builders: Vec<_> = shard_cfgs
                .iter()
                .map(AnalyticalMemoryBuilder::new)
                .collect();
            for k in 0..source.num_kernels() {
                let kernel = source.decode_kernel(k)?;
                for b in &mut builders {
                    b.feed_kernel(&kernel);
                }
            }
            builders.into_iter().map(|b| b.finish()).collect()
        }
        MemoryModelKind::AnalyticalReuse => {
            let mut builders: Vec<_> = shard_cfgs
                .iter()
                .map(ReuseAnalyticalMemoryBuilder::new)
                .collect();
            for k in 0..source.num_kernels() {
                let kernel = source.decode_kernel(k)?;
                for b in &mut builders {
                    b.feed_kernel(&kernel);
                }
            }
            builders.into_iter().map(|b| b.finish()).collect()
        }
    };

    // Per-shard profilers share one epoch so merged frames line up on a
    // common timeline; each shard renders on its own trace track, with the
    // decode profiler on the track after the last shard. They persist
    // across kernels, like the memory systems.
    let epoch = std::time::Instant::now();
    let mut profs: Vec<Profiler> = (0..shards)
        .map(|i| {
            if sim.profile {
                Profiler::enabled_on_track(epoch, i)
            } else {
                Profiler::disabled()
            }
        })
        .collect();
    let decode_prof = if sim.profile {
        Profiler::enabled_on_track(epoch, shards)
    } else {
        Profiler::disabled()
    };
    for mem in &mut mems {
        mem.set_profiling(sim.profile);
    }

    std::thread::scope(|dscope| {
        let mut pf = Prefetcher::new(dscope, source, decode_prof, source.prefers_prefetch());
        let mut start: Cycle = 0;
        let mut kernels = Vec::new();
        let mut total_stats = SmStats::default();

        for kidx in 0..source.num_kernels() {
            let kernel = pf.get(kidx)?;
            let kernel = &*kernel;
            let block_split = split_blocks(kernel.blocks().len(), shards);

            let outcomes: Vec<Result<crate::gpu::ShardKernelOutcome, SimError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = mems
                        .iter_mut()
                        .zip(&mut profs)
                        .zip(&shard_cfgs)
                        .zip(&sm_id_groups)
                        .zip(&block_split)
                        .enumerate()
                        .map(|(shard, ((((mem, prof), cfg), sm_ids), blocks))| {
                            scope.spawn(move || {
                                prof.begin_frame(&format!("k{kidx}:{}", kernel.name));
                                let outcome = run_kernel_shard(
                                    cfg,
                                    kernel,
                                    blocks,
                                    sm_ids,
                                    mem.as_mut(),
                                    sim.fidelity,
                                    shard,
                                    start,
                                    prof,
                                );
                                mem.report_profile(prof);
                                prof.end_frame();
                                outcome
                            })
                        })
                        .collect();
                    // A panicking shard must not take down the process:
                    // capture the payload and surface it as a SimError for
                    // that shard.
                    handles
                        .into_iter()
                        .enumerate()
                        .map(|(i, h)| {
                            h.join().unwrap_or_else(|payload| {
                                Err(SimError::WorkerPanic {
                                    context: format!("shard {i} of kernel {:?}", kernel.name),
                                    message: crate::error::panic_message(payload.as_ref()),
                                })
                            })
                        })
                        .collect()
                });

            let mut end = start;
            let mut kernel_stats = SmStats::default();
            let mut blocks = 0;
            for outcome in outcomes {
                let o = outcome?;
                end = end.max(o.end_cycle);
                merge_into(&mut kernel_stats, o.stats);
                blocks += o.blocks;
            }
            kernels.push(KernelResult {
                name: kernel.name.clone(),
                cycles: end - start,
                instructions: kernel_stats.issued,
                blocks,
            });
            merge_into(&mut total_stats, kernel_stats);
            start = end;
        }

        let mut metrics = MetricsCollector::new();
        crate::builder::report_common(&mut metrics, start, &total_stats, sim);
        for (i, mem) in mems.iter().enumerate() {
            let mut shard_collector = MetricsCollector::new();
            mem.report(&mut shard_collector);
            metrics.absorb(&format!("shard{i}"), &shard_collector);
        }

        let profile = sim.profile.then(|| {
            ProfileReport::merge(
                profs
                    .into_iter()
                    .chain(std::iter::once(pf.finish()))
                    .map(Profiler::into_report)
                    .collect(),
            )
        });

        Ok(SimulationResult {
            app: source.name().to_owned(),
            simulator: format!("{}@{}threads", sim.description(), shards),
            fidelity: sim.fidelity,
            cycles: start,
            kernels,
            metrics,
            wall_time: std::time::Duration::ZERO, // filled by run()
            confidence: None,
            profile,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sms_balances() {
        assert_eq!(split_sms(68, 4), vec![17, 17, 17, 17]);
        assert_eq!(split_sms(7, 3), vec![3, 2, 2]);
        assert_eq!(split_sms(2, 8), vec![1, 1], "never more shards than SMs");
        assert_eq!(split_sms(5, 1), vec![5]);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
