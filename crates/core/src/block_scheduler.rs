//! Block Scheduler module (§III-B1).
//!
//! "When an application consisting of many thread blocks is executed on the
//! GPU, the Block Scheduler assigns the blocks to the SMs." The scheduler
//! enforces SM occupancy limits (threads, warps, blocks, registers, shared
//! memory) and hands out blocks round-robin as SMs free slots. It is also
//! where the Metrics Gatherer reads total simulation cycles "after all
//! blocks have completed execution" (§III-C).

use crate::error::SimError;
use swiftsim_config::SmConfig;
use swiftsim_trace::KernelTrace;

/// Per-SM occupancy for one kernel: how many of its blocks fit on an SM at
/// once, and which resource is the limiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Maximum concurrently resident blocks per SM.
    pub blocks_per_sm: u32,
    /// The resource that bounds it.
    pub limiter: &'static str,
}

impl Occupancy {
    /// Compute occupancy of `kernel` on `sm`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BlockTooLarge`] when even a single block exceeds
    /// an SM resource.
    pub fn compute(sm: &SmConfig, kernel: &KernelTrace) -> Result<Occupancy, SimError> {
        let threads = kernel.threads_per_block().max(1);
        let warps = kernel.warps_per_block(sm.warp_size).max(1);
        let err = |resource: &str| SimError::BlockTooLarge {
            kernel: kernel.name.clone(),
            resource: resource.to_owned(),
        };

        let mut limits: Vec<(u32, &'static str)> = vec![
            (sm.max_blocks, "block slots"),
            (sm.max_threads / threads, "threads"),
            (sm.max_warps / warps, "warps"),
        ];
        if let Some(by_shmem) = sm.shared_mem_bytes.checked_div(kernel.shared_mem_bytes) {
            limits.push((by_shmem, "shared memory"));
        }
        let regs_per_block = kernel.regs_per_thread.saturating_mul(threads);
        if let Some(by_regs) = sm.registers.checked_div(regs_per_block) {
            limits.push((by_regs, "registers"));
        }

        let (blocks, limiter) = limits
            .into_iter()
            .min_by_key(|&(n, _)| n)
            .expect("limits is never empty");
        if blocks == 0 {
            let resource = match limiter {
                "threads" => "thread capacity",
                "warps" => "warp slots",
                other => other,
            };
            return Err(err(resource));
        }
        Ok(Occupancy {
            blocks_per_sm: blocks,
            limiter,
        })
    }
}

/// Round-robin block-to-SM dispatcher for one kernel launch.
#[derive(Debug, Clone)]
pub struct BlockScheduler {
    total_blocks: usize,
    next_block: usize,
    completed: usize,
    running: Vec<u32>,
    blocks_per_sm: u32,
    dispatched: u64,
}

impl BlockScheduler {
    /// Create a scheduler for `total_blocks` blocks over `num_sms` SMs with
    /// at most `blocks_per_sm` resident blocks each.
    pub fn new(num_sms: usize, total_blocks: usize, blocks_per_sm: u32) -> Self {
        BlockScheduler {
            total_blocks,
            next_block: 0,
            completed: 0,
            running: vec![0; num_sms],
            blocks_per_sm,
            dispatched: 0,
        }
    }

    /// Try to dispatch the next block to SM `sm`. Returns the global block
    /// index, or `None` if the SM is full or all blocks are dispatched.
    pub fn dispatch(&mut self, sm: usize) -> Option<usize> {
        if self.next_block >= self.total_blocks || self.running[sm] >= self.blocks_per_sm {
            return None;
        }
        let block = self.next_block;
        self.next_block += 1;
        self.running[sm] += 1;
        self.dispatched += 1;
        Some(block)
    }

    /// Record completion of a block on SM `sm`, freeing one slot.
    ///
    /// # Panics
    ///
    /// Panics if the SM has no running blocks — a protocol bug.
    pub fn complete(&mut self, sm: usize) {
        assert!(
            self.running[sm] > 0,
            "SM {sm} completed a block it never ran"
        );
        self.running[sm] -= 1;
        self.completed += 1;
    }

    /// Whether every block has completed.
    pub fn all_done(&self) -> bool {
        self.completed == self.total_blocks
    }

    /// Blocks not yet dispatched.
    pub fn remaining(&self) -> usize {
        self.total_blocks - self.next_block
    }

    /// Blocks currently resident on SM `sm`.
    pub fn running_on(&self, sm: usize) -> u32 {
        self.running[sm]
    }

    /// Total dispatches so far (a Metrics Gatherer counter).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn kernel(threads: u32, shmem: u32, regs: u32) -> KernelTrace {
        let mut k = KernelTrace::new("k", (10, 1, 1), (threads, 1, 1));
        k.shared_mem_bytes = shmem;
        k.regs_per_thread = regs;
        k
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let sm = presets::rtx2080ti().sm; // 1024 threads, 16 blocks, 32 warps
        let occ = Occupancy::compute(&sm, &kernel(256, 0, 16)).unwrap();
        // 1024/256 = 4 blocks by threads; warps: 32/8 = 4; blocks: 16.
        assert_eq!(occ.blocks_per_sm, 4);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let sm = presets::rtx2080ti().sm; // 64 KiB shared
        let occ = Occupancy::compute(&sm, &kernel(64, 32 * 1024, 16)).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, "shared memory");
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let sm = presets::rtx2080ti().sm; // 65536 registers
                                          // 256 threads * 128 regs = 32768 per block -> 2 blocks.
        let occ = Occupancy::compute(&sm, &kernel(256, 0, 128)).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, "registers");
    }

    #[test]
    fn oversized_block_is_an_error() {
        let sm = presets::rtx2080ti().sm;
        let err = Occupancy::compute(&sm, &kernel(64, 128 * 1024, 16)).unwrap_err();
        assert!(matches!(err, SimError::BlockTooLarge { .. }));
    }

    #[test]
    fn tiny_kernel_limited_by_block_slots() {
        let sm = presets::rtx2080ti().sm;
        let occ = Occupancy::compute(&sm, &kernel(32, 0, 8)).unwrap();
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.limiter, "block slots");
    }

    #[test]
    fn dispatch_respects_per_sm_limit() {
        let mut bs = BlockScheduler::new(2, 5, 2);
        assert_eq!(bs.dispatch(0), Some(0));
        assert_eq!(bs.dispatch(0), Some(1));
        assert_eq!(bs.dispatch(0), None, "SM 0 is full");
        assert_eq!(bs.dispatch(1), Some(2));
        assert_eq!(bs.running_on(0), 2);
        bs.complete(0);
        assert_eq!(bs.dispatch(0), Some(3));
        assert_eq!(bs.dispatch(1), Some(4));
        assert_eq!(bs.dispatch(1), None, "no blocks left");
        assert_eq!(bs.remaining(), 0);
        assert!(!bs.all_done());
        for sm in [0, 0, 1, 1] {
            bs.complete(sm);
        }
        assert!(bs.all_done());
        assert_eq!(bs.dispatched(), 5);
    }

    #[test]
    #[should_panic(expected = "never ran")]
    fn completing_unknown_block_panics() {
        let mut bs = BlockScheduler::new(1, 1, 1);
        bs.complete(0);
    }

    #[test]
    fn zero_blocks_is_immediately_done() {
        let bs = BlockScheduler::new(4, 0, 8);
        assert!(bs.all_done());
        assert_eq!(bs.remaining(), 0);
    }
}
