//! The two-phase deterministic parallel engine.
//!
//! The legacy parallel path ([`crate::parallel`]) decouples shards
//! completely: each worker owns a private slice of the memory hierarchy and
//! the shards never exchange traffic. That is fast but approximate — and
//! its results depend on the shard count. This engine removes both
//! caveats: there is **one** shared memory system, and simulated time
//! advances in *synchronization quanta* ([`SyncQuantum`]):
//!
//! 1. **Compute phase** — every shard worker ticks its SMs through the
//!    quantum independently. Memory-visible events (global/local accesses)
//!    are not applied; they are buffered into a per-shard SPSC queue
//!    ([`crate::spsc`]) behind a [`DeferredPort`], in deterministic buffer
//!    order (cycle-major, then SM, then issue order within the tick).
//! 2. **Commit phase** — the coordinator drains the queues *in shard
//!    order* and applies every buffered access to the shared memory
//!    system. Shard-major order over contiguous SM ranges is exactly the
//!    sequential engine's SM-tick order, so the memory system observes the
//!    same calls in the same order with the same arguments as a
//!    single-threaded run.
//!
//! Under [`SyncQuantum::PerCycle`] the quantum is one cycle and the replay
//! is *exact*: block dispatch, completion delivery, `can_accept`
//! back-pressure snapshots, and deferred `Done` writebacks all line up
//! with the sequential loop's intra-cycle step order (dispatch →
//! deliver → tick), making the results **bit-identical** to
//! `run_single` for any thread count — enforced by
//! `tests/event_engine_equiv.rs`. The event-driven cycle skip is folded
//! in: the coordinator arms jumps from the same quiet/candidate rules as
//! the sequential engine and the workers replay their quiescent stat
//! deltas, so quiescent shards cost no per-cycle work.
//!
//! [`SyncQuantum::Cycles`]`(q)` relaxes the hand-off: workers tick `q`
//! cycles per phase against snapshots taken at the quantum boundary.
//! Deterministic and reproducible for a fixed configuration, but memory
//! contention is observed at quantum granularity, so statistics may
//! diverge from the sequential engine (measured, not silent — see the
//! `parallel_speedup` bench). Clock jumps are disabled in this mode; the
//! per-SM quiescence cache keeps idle ticks cheap instead.

use crate::block_scheduler::{BlockScheduler, Occupancy};
use crate::builder::{GpuSimulator, RunDriver};
use crate::error::SimError;
use crate::fidelity::{
    FidelityConfig, FrontendModelKind, MemoryModelKind, SkipPolicy, SyncQuantum,
};
use crate::gpu::{make_alu, merge_into};
use crate::mem_system::{
    build_analytical_memory_for, build_analytical_memory_reuse_for, CycleAccurateMemory,
    MemCompletion, MemReply, MemorySystem,
};
use crate::parallel::split_sms;
use crate::prefetch::Prefetcher;
use crate::result::{KernelResult, SimulationResult};
use crate::sampling::RepMeasure;
use crate::scheduler::make_policy;
use crate::sm::{SmCore, SmStats, WbTarget};
use crate::spsc;
use crate::Cycle;
use std::collections::HashMap;
use std::sync::mpsc;
use swiftsim_config::GpuConfig;
use swiftsim_mem::MemTxn;
use swiftsim_metrics::{MetricsCollector, ProfModule, ProfileReport, Profiler};
use swiftsim_trace::{KernelTrace, TraceSource};

/// One buffered memory access: everything the sequential engine would have
/// passed to [`MemorySystem::access`], plus the writeback target filled in
/// from the issuing SM's [`TickOutcome::new_tokens`](crate::sm::TickOutcome).
struct AccessRecord {
    local_sm: usize,
    pc: u32,
    txns: Vec<MemTxn>,
    /// The `now` argument the SM passed (AGU/port availability), which the
    /// sequential engine hands to the memory system verbatim.
    agu_done: Cycle,
    /// The cycle the instruction issued in, for LD/ST latency attribution.
    issue_now: Cycle,
    target: WbTarget,
}

/// A `MemReply::Done` resolved during commit, to be applied by the owning
/// worker just before its next compute phase.
struct DeferredDone {
    local_sm: usize,
    target: WbTarget,
    at: Cycle,
    issue_now: Cycle,
}

/// One synchronization quantum's worth of coordinator → worker state.
struct QuantumCmd {
    base: Cycle,
    len: Cycle,
    /// Blocks dispatched this quantum: `(local SM, global block id)`.
    installs: Vec<(usize, usize)>,
    /// Memory completions due now: writeback targets per local SM.
    writebacks: Vec<(usize, WbTarget)>,
    /// `Done` replies committed last quantum.
    dones: Vec<DeferredDone>,
    /// Per-local-SM memory back-pressure snapshot.
    can_accept: Vec<bool>,
    /// Snapshot per-SM stats *before* processing this command (the
    /// coordinator just observed a quiet cycle and armed a clock jump).
    arm: bool,
}

enum Cmd {
    Quantum(QuantumCmd),
    /// Replay the armed quiescent delta `extra` times (event-driven jump).
    Jump {
        extra: Cycle,
    },
    /// Kernel over (or aborting): apply leftover dones, report and exit.
    Finish {
        dones: Vec<DeferredDone>,
    },
}

/// Worker → coordinator phase summary. Sent *after* the quantum's access
/// records are pushed to the SPSC queue, so receiving it guarantees
/// `records` entries are poppable.
#[derive(Default)]
struct Summary {
    issued: u32,
    unit_busy: bool,
    /// Local SM index per completed block, in tick order.
    completed: Vec<usize>,
    /// Minimum next-wakeup hint across SMs for the quantum's last cycle.
    wakeup: Option<Cycle>,
    /// Access records pushed this quantum.
    records: usize,
}

/// What a worker thread returns on join.
struct WorkerExit {
    stats: SmStats,
    stalled: Option<String>,
}

/// How the coordinator loop ended.
enum CoordEnd {
    Finished {
        end: Cycle,
    },
    Deadlock {
        cycle: Cycle,
    },
    /// A worker's channel closed unexpectedly (it panicked).
    Dead {
        shard: usize,
    },
}

fn min_opt(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

/// The worker-side stand-in for the shared memory system: buffers accesses
/// instead of applying them, and answers `can_accept` from the
/// coordinator's per-quantum snapshot. Every access "replies"
/// `Pending(record index)`, which routes the writeback target back here
/// through the SM's normal token path.
struct DeferredPort {
    can_accept: Vec<bool>,
    now: Cycle,
    records: Vec<AccessRecord>,
}

impl MemorySystem for DeferredPort {
    fn can_accept(&self, sm: usize) -> bool {
        self.can_accept[sm]
    }

    fn access(&mut self, sm: usize, pc: u32, txns: &[MemTxn], now: Cycle) -> MemReply {
        self.records.push(AccessRecord {
            local_sm: sm,
            pc,
            txns: txns.to_vec(),
            agu_done: now,
            issue_now: self.now,
            target: WbTarget {
                slot: 0,
                warp: 0,
                reg: swiftsim_trace::Reg(u16::MAX),
            },
        });
        MemReply::Pending(self.records.len() as u64 - 1)
    }

    fn advance(&mut self, _now: Cycle, _completions: &mut Vec<MemCompletion>) {}

    fn next_event(&self) -> Option<Cycle> {
        None
    }

    fn report(&self, _collector: &mut MetricsCollector) {}

    fn name(&self) -> &'static str {
        "deferred-port"
    }
}

pub(crate) fn run_two_phase(
    sim: &GpuSimulator,
    source: &dyn TraceSource,
) -> Result<SimulationResult, SimError> {
    let total_sms = sim.cfg.num_sms as usize;
    let group_sizes = split_sms(total_sms, sim.threads);
    let shards = group_sizes.len();
    let sm_id_groups: Vec<Vec<usize>> = {
        let mut next = 0usize;
        group_sizes
            .iter()
            .map(|&n| {
                let ids = (next..next + n).collect();
                next += n;
                ids
            })
            .collect()
    };
    let quantum: Cycle = match sim.fidelity.sync_quantum {
        SyncQuantum::PerCycle => 1,
        SyncQuantum::Cycles(n) => Cycle::from(n),
        SyncQuantum::Unsynchronized => {
            unreachable!("builder dispatches Unsynchronized to run_parallel")
        }
    };

    let total = source.num_kernels();
    let mut driver = RunDriver::new(sim, source)?;

    // One shared memory system, built exactly as the single-threaded path
    // builds its — the whole point of the engine.
    let mut mem: Box<dyn MemorySystem> = match sim.fidelity.memory {
        MemoryModelKind::CycleAccurate => Box::new(CycleAccurateMemory::new(&sim.cfg)),
        MemoryModelKind::Analytical => {
            build_analytical_memory_for(&sim.cfg, source, &driver.prepass_indices(total))?
        }
        MemoryModelKind::AnalyticalReuse => {
            build_analytical_memory_reuse_for(&sim.cfg, source, &driver.prepass_indices(total))?
        }
    };
    driver.restore_memory(mem.as_mut())?;

    // Shard workers render on tracks 0..shards, the coordinator (phase
    // sync, block scheduler, memory) on the next track, decode on the one
    // after; one epoch lines the frames up.
    let epoch = std::time::Instant::now();
    let mut worker_profs: Vec<Profiler> = (0..shards)
        .map(|i| {
            if sim.profile {
                Profiler::enabled_on_track(epoch, i)
            } else {
                Profiler::disabled()
            }
        })
        .collect();
    let mut prof = if sim.profile {
        Profiler::enabled_on_track(epoch, shards)
    } else {
        Profiler::disabled()
    };
    let decode_prof = if sim.profile {
        Profiler::enabled_on_track(epoch, shards + 1)
    } else {
        Profiler::disabled()
    };
    mem.set_profiling(sim.profile);

    std::thread::scope(|dscope| {
        let mut pf = Prefetcher::with_schedule(
            dscope,
            source,
            decode_prof,
            source.prefers_prefetch(),
            driver.decode_schedule(total),
        );
        let (mut start, mut total_stats, mut kernels) = driver.initial();

        for kidx in driver.start_kernel()..total {
            if driver.is_detailed(kidx) {
                let kernel = pf.get(kidx)?;
                let kernel = &*kernel;
                let outcome = run_kernel_two_phase(
                    &sim.cfg,
                    kernel,
                    kidx,
                    &sm_id_groups,
                    quantum,
                    sim.fidelity,
                    mem.as_mut(),
                    &mut worker_profs,
                    &mut prof,
                    start,
                )?;
                let measure = RepMeasure {
                    cycles: outcome.end_cycle - start,
                    stats: outcome.stats,
                    instructions: outcome.stats.issued,
                    blocks: kernel.blocks().len() as u64,
                };
                driver.record(kidx, measure);
                kernels.push(KernelResult {
                    name: kernel.name.clone(),
                    cycles: measure.cycles,
                    instructions: measure.instructions,
                    blocks: measure.blocks,
                });
                merge_into(&mut total_stats, outcome.stats);
                start = outcome.end_cycle;
            } else {
                // Replayed launch: synthesized from its cluster's
                // representatives, trace body never decoded.
                let replayed = driver.replay(kidx);
                kernels.push(KernelResult {
                    name: source.kernel_meta(kidx).name,
                    cycles: replayed.cycles,
                    instructions: replayed.instructions,
                    blocks: replayed.blocks,
                });
                total_stats.add(&replayed.stats);
                start += replayed.cycles;
            }
            if !driver.boundary(kidx, start, &total_stats, &kernels, mem.as_ref())? {
                break;
            }
        }

        let mut metrics = MetricsCollector::new();
        crate::builder::report_common(&mut metrics, start, &total_stats, sim);
        // One memory system, so its metrics land unscoped, exactly like a
        // single-threaded run — no `shard*` prefixes to reconcile.
        mem.report(&mut metrics);

        let profile = sim.profile.then(|| {
            ProfileReport::merge(
                worker_profs
                    .into_iter()
                    .chain([prof, pf.finish()])
                    .map(Profiler::into_report)
                    .collect(),
            )
        });
        let confidence = driver.confidence(&kernels);

        Ok(SimulationResult {
            app: source.name().to_owned(),
            simulator: format!("{}@{}threads", sim.description(), shards),
            fidelity: sim.fidelity,
            cycles: start,
            kernels,
            metrics,
            wall_time: std::time::Duration::ZERO, // filled by run()
            confidence,
            profile,
        })
    })
}

struct KernelOutcome {
    end_cycle: Cycle,
    stats: SmStats,
}

#[allow(clippy::too_many_arguments)]
fn run_kernel_two_phase(
    cfg: &GpuConfig,
    kernel: &KernelTrace,
    kidx: usize,
    sm_id_groups: &[Vec<usize>],
    quantum: Cycle,
    fidelity: FidelityConfig,
    mem: &mut dyn MemorySystem,
    worker_profs: &mut [Profiler],
    prof: &mut Profiler,
    start: Cycle,
) -> Result<KernelOutcome, SimError> {
    if !kernel.is_consistent(cfg.sm.warp_size) {
        return Err(SimError::InconsistentTrace {
            kernel: kernel.name.clone(),
            message: format!(
                "trace has {} blocks for grid {} and warp counts must match block size",
                kernel.blocks().len(),
                kernel.grid_dim
            ),
        });
    }
    let occupancy = Occupancy::compute(&cfg.sm, kernel)?;
    let warps_per_block = kernel.blocks().first().map_or(0, |b| b.warps().len());
    let shards = sm_id_groups.len();
    let total_sms: usize = sm_id_groups.iter().map(Vec::len).sum();

    let mut cmd_txs = Vec::with_capacity(shards);
    let mut rec_rxs = Vec::with_capacity(shards);
    let mut sum_rxs = Vec::with_capacity(shards);
    let mut worker_ends = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
        let (rec_tx, rec_rx) = spsc::channel::<AccessRecord>();
        let (sum_tx, sum_rx) = mpsc::channel::<Summary>();
        cmd_txs.push(cmd_tx);
        rec_rxs.push(rec_rx);
        sum_rxs.push(sum_rx);
        worker_ends.push((cmd_rx, rec_tx, sum_tx));
    }

    let mut bs = BlockScheduler::new(total_sms, kernel.blocks().len(), occupancy.blocks_per_sm);
    let mut pending_dones: Vec<Vec<DeferredDone>> = (0..shards).map(|_| Vec::new()).collect();

    prof.begin_frame(&format!("k{kidx}:{}", kernel.name));
    let (end, exits) = std::thread::scope(|scope| {
        let handles: Vec<_> = worker_profs
            .iter_mut()
            .zip(sm_id_groups)
            .zip(worker_ends.drain(..))
            .map(|((wprof, sm_ids), (cmd_rx, rec_tx, sum_tx))| {
                scope.spawn(move || {
                    worker_loop(
                        cfg,
                        kernel,
                        kidx,
                        occupancy.blocks_per_sm as usize,
                        warps_per_block,
                        fidelity,
                        sm_ids,
                        cmd_rx,
                        rec_tx,
                        sum_tx,
                        wprof,
                    )
                })
            })
            .collect();

        let end = coordinate(
            mem,
            &mut bs,
            sm_id_groups,
            quantum,
            fidelity.skip_policy == SkipPolicy::EventDriven && quantum == 1,
            start,
            &cmd_txs,
            &rec_rxs,
            &sum_rxs,
            &mut pending_dones,
            prof,
        );

        // Wind down every worker (alive or not), shipping leftover dones
        // so their LD/ST attribution is complete, then collect exits.
        for (shard, tx) in cmd_txs.iter().enumerate() {
            let _ = tx.send(Cmd::Finish {
                dones: std::mem::take(&mut pending_dones[shard]),
            });
        }
        drop(cmd_txs);
        let exits: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        (end, exits)
    });
    mem.report_profile(prof);
    prof.end_frame();

    // Surface a worker panic over any other outcome — it is the root cause.
    if let Some((shard, payload)) = exits
        .iter()
        .enumerate()
        .find_map(|(i, e)| e.as_ref().err().map(|p| (i, p)))
    {
        return Err(SimError::WorkerPanic {
            context: format!("shard {shard} of kernel {:?}", kernel.name),
            message: crate::error::panic_message(payload.as_ref()),
        });
    }
    let exits: Vec<WorkerExit> = exits.into_iter().filter_map(Result::ok).collect();

    match end {
        CoordEnd::Finished { end } => {
            let mut stats = SmStats::default();
            for e in &exits {
                merge_into(&mut stats, e.stats);
            }
            Ok(KernelOutcome {
                end_cycle: end,
                stats,
            })
        }
        CoordEnd::Deadlock { cycle } => {
            let stalled = exits
                .iter()
                .enumerate()
                .find_map(|(i, e)| e.stalled.as_ref().map(|s| (i, s.clone())));
            let shard = stalled.as_ref().map_or(0, |(i, _)| *i);
            let warp = stalled.map(|(_, s)| s);
            let detail = match (warp, mem.oldest_pending()) {
                (Some(w), Some(m)) => format!("{w}; {m}"),
                (Some(w), None) => w,
                (None, Some(m)) => m,
                (None, None) => "no resident warp or pending memory request".to_owned(),
            };
            Err(SimError::Deadlock {
                cycle,
                shard,
                detail,
            })
        }
        CoordEnd::Dead { shard } => Err(SimError::WorkerPanic {
            context: format!("shard {shard} of kernel {:?}", kernel.name),
            message: "worker channel closed without a panic payload".to_owned(),
        }),
    }
}

/// The coordinator: runs the quantum loop against the shared memory
/// system. Mirrors the sequential engine's per-cycle step order exactly —
/// dispatch, advance/deliver, (workers tick), commit, terminate/advance —
/// including the event-driven arm/confirm/jump protocol.
#[allow(clippy::too_many_arguments)]
fn coordinate(
    mem: &mut dyn MemorySystem,
    bs: &mut BlockScheduler,
    sm_id_groups: &[Vec<usize>],
    quantum: Cycle,
    event_driven: bool,
    start: Cycle,
    cmd_txs: &[mpsc::Sender<Cmd>],
    rec_rxs: &[spsc::Receiver<AccessRecord>],
    sum_rxs: &[mpsc::Receiver<Summary>],
    pending_dones: &mut [Vec<DeferredDone>],
    prof: &mut Profiler,
) -> CoordEnd {
    let shards = sm_id_groups.len();
    let mut tokens: HashMap<u64, (usize, usize, WbTarget)> = HashMap::new();
    let mut completions: Vec<MemCompletion> = Vec::new();
    let mut record_buf: Vec<AccessRecord> = Vec::new();
    let mut now = start;
    let mut idle_streak: u64 = 0;
    let mut plan: Option<Cycle> = None;
    let mut arm_next = false;

    loop {
        // 1. Dispatch pending blocks (global Block Scheduler over global SM
        //    ids — identical pick order to the sequential engine).
        let mut installs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
        let mut installed = false;
        if bs.remaining() > 0 {
            let t0 = prof.start();
            for (shard, ids) in sm_id_groups.iter().enumerate() {
                for (local, &global_sm) in ids.iter().enumerate() {
                    while let Some(block) = bs.dispatch(global_sm) {
                        installs[shard].push((local, block));
                        installed = true;
                    }
                }
            }
            prof.record(ProfModule::BlockScheduler, t0);
        }

        // 2. Deliver memory completions due by now, routed to the owning
        //    shard in completion order.
        completions.clear();
        mem.advance(now, &mut completions);
        let delivered = !completions.is_empty();
        let mut writebacks: Vec<Vec<(usize, WbTarget)>> = vec![Vec::new(); shards];
        for c in completions.drain(..) {
            if let Some((shard, local, target)) = tokens.remove(&c.token) {
                writebacks[shard].push((local, target));
            }
        }

        // 3. Compute phase: hand each shard its quantum. `can_accept` is
        //    snapshotted post-advance; it only depends on the SM's own
        //    queue, which cannot change before that SM's tick, so the
        //    snapshot equals what the sequential engine would read.
        let arm = std::mem::take(&mut arm_next);
        for (shard, ids) in sm_id_groups.iter().enumerate() {
            let cmd = Cmd::Quantum(QuantumCmd {
                base: now,
                len: quantum,
                installs: std::mem::take(&mut installs[shard]),
                writebacks: std::mem::take(&mut writebacks[shard]),
                dones: std::mem::take(&mut pending_dones[shard]),
                can_accept: ids.iter().map(|&g| mem.can_accept(g)).collect(),
                arm,
            });
            if cmd_txs[shard].send(cmd).is_err() {
                return CoordEnd::Dead { shard };
            }
        }
        let t0 = prof.start();
        let mut sums: Vec<Summary> = Vec::with_capacity(shards);
        for (shard, rx) in sum_rxs.iter().enumerate() {
            match rx.recv() {
                Ok(s) => sums.push(s),
                Err(_) => return CoordEnd::Dead { shard },
            }
        }
        prof.record(ProfModule::PhaseSync, t0);

        // 4. Commit phase: apply buffered accesses in shard-major order —
        //    for contiguous shards this is global SM order, i.e. the exact
        //    sequential call order.
        let t1 = prof.start();
        let mut issued = 0u32;
        let mut any_unit_busy = false;
        let mut any_completed = false;
        let mut any_tokens = false;
        let mut wakeup: Option<Cycle> = None;
        for (shard, sum) in sums.iter().enumerate() {
            record_buf.clear();
            rec_rxs[shard].pop_n(sum.records, &mut record_buf);
            for r in record_buf.drain(..) {
                let global_sm = sm_id_groups[shard][r.local_sm];
                match mem.access(global_sm, r.pc, &r.txns, r.agu_done) {
                    MemReply::Done(at) => pending_dones[shard].push(DeferredDone {
                        local_sm: r.local_sm,
                        target: r.target,
                        at,
                        issue_now: r.issue_now,
                    }),
                    MemReply::Pending(token) => {
                        any_tokens = true;
                        tokens.insert(token, (shard, r.local_sm, r.target));
                    }
                }
            }
            issued += sum.issued;
            any_unit_busy |= sum.unit_busy;
            for &local in &sum.completed {
                any_completed = true;
                bs.complete(sm_id_groups[shard][local]);
            }
            wakeup = min_opt(wakeup, sum.wakeup);
        }
        // Workers cannot see `Done` replies until next quantum, so fold
        // the committed completion times into the wakeup hint here.
        for dones in pending_dones.iter() {
            for d in dones {
                wakeup = min_opt(wakeup, Some(d.at));
            }
        }
        prof.record(ProfModule::PhaseSync, t1);

        let quantum_end = now + quantum - 1;

        // 5. Termination: every block completed and the memory is quiet.
        if bs.all_done() && tokens.is_empty() && mem.next_event().is_none() {
            return CoordEnd::Finished { end: quantum_end };
        }

        // 6. Advance time — the sequential engine's quiet/arm/jump rules,
        //    evaluated on the committed global state.
        let quiet = issued == 0
            && !any_unit_busy
            && !delivered
            && !any_completed
            && !any_tokens
            && !installed;

        if let Some(target) = plan.take() {
            if quiet {
                let extra = target - quantum_end - 1;
                for (shard, tx) in cmd_txs.iter().enumerate() {
                    if tx.send(Cmd::Jump { extra }).is_err() {
                        return CoordEnd::Dead { shard };
                    }
                }
                now = target;
                idle_streak = 0;
                continue;
            }
        }

        if event_driven && quiet {
            match min_opt(wakeup, mem.next_event()) {
                Some(t) => {
                    if t > quantum_end + 1 {
                        plan = Some(t);
                        arm_next = true;
                    }
                }
                // Nothing pending anywhere and nothing happened: the model
                // can provably never make progress again. The sequential
                // engine discovers this after a million idle (cheap) ticks;
                // here every idle cycle is a cross-thread round-trip, so
                // report immediately.
                None => return CoordEnd::Deadlock { cycle: quantum_end },
            }
            now = quantum_end + 1;
            idle_streak += 1;
        } else {
            if quiet && min_opt(wakeup, mem.next_event()).is_none() {
                return CoordEnd::Deadlock { cycle: quantum_end };
            }
            now = quantum_end + 1;
            idle_streak = if issued > 0 { 0 } else { idle_streak + quantum };
        }
        if idle_streak > 1_000_000 {
            return CoordEnd::Deadlock { cycle: now };
        }
    }
}

/// One shard worker: owns its SMs for the kernel's duration and replays
/// whatever the coordinator committed.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    cfg: &GpuConfig,
    kernel: &KernelTrace,
    kidx: usize,
    slots: usize,
    warps_per_block: usize,
    fidelity: FidelityConfig,
    sm_ids: &[usize],
    cmds: mpsc::Receiver<Cmd>,
    recs: spsc::Sender<AccessRecord>,
    sums: mpsc::Sender<Summary>,
    prof: &mut Profiler,
) -> WorkerExit {
    let blocks = kernel.blocks();
    let detailed_frontend = fidelity.frontend == FrontendModelKind::Detailed;
    let event_driven = fidelity.skip_policy == SkipPolicy::EventDriven;
    let mut sms: Vec<SmCore<'_>> = sm_ids
        .iter()
        .enumerate()
        .map(|(i, &global)| {
            SmCore::new(
                i,
                global,
                &cfg.sm,
                slots,
                warps_per_block,
                make_alu(fidelity.alu, cfg),
                detailed_frontend,
                event_driven,
                &|| make_policy(cfg.sm.scheduler),
            )
        })
        .collect();
    let mut port = DeferredPort {
        can_accept: vec![true; sm_ids.len()],
        now: 0,
        records: Vec::new(),
    };
    let mut snaps: Vec<SmStats> = Vec::new();
    prof.begin_frame(&format!("k{kidx}:{}", kernel.name));

    'run: while let Ok(cmd) = cmds.recv() {
        match cmd {
            Cmd::Finish { dones } => {
                for d in dones {
                    sms[d.local_sm].apply_deferred_done(d.target, d.at, d.issue_now, prof);
                }
                break;
            }
            Cmd::Jump { extra } => {
                for (sm, snap) in sms.iter_mut().zip(&snaps) {
                    sm.scale_quiescent_delta(snap, extra, prof);
                }
                if extra > 0 {
                    prof.add_cycles(ProfModule::CycleSkip, extra);
                }
            }
            Cmd::Quantum(q) => {
                // The arm snapshot is "state at the end of the previous
                // cycle" — i.e. before this command's events are applied.
                if q.arm {
                    snaps = sms.iter().map(SmCore::stats).collect();
                }
                for d in q.dones {
                    sms[d.local_sm].apply_deferred_done(d.target, d.at, d.issue_now, prof);
                }
                // Installs before writeback deliveries: the sequential
                // loop dispatches (step 1) before delivering completions
                // (step 2), so a completion racing a slot refill must see
                // the new block, exactly as it would there.
                for (local, block) in q.installs {
                    sms[local].install_block(block, &blocks[block], q.base);
                }
                for (local, target) in q.writebacks {
                    sms[local].writeback_now(target);
                }
                port.can_accept.clear();
                port.can_accept.extend_from_slice(&q.can_accept);

                let mut sum = Summary::default();
                for c in q.base..q.base + q.len {
                    port.now = c;
                    let mut wakeup: Option<Cycle> = None;
                    for (i, sm) in sms.iter_mut().enumerate() {
                        let outcome = sm.tick(c, &mut port, prof);
                        sum.issued += outcome.issued;
                        sum.unit_busy |= outcome.unit_busy_stall;
                        for _ in outcome.completed_blocks {
                            sum.completed.push(i);
                        }
                        for (token, target) in outcome.new_tokens {
                            port.records[token as usize].target = target;
                        }
                        wakeup = min_opt(wakeup, outcome.next_wakeup);
                    }
                    sum.wakeup = wakeup;
                }
                sum.records = port.records.len();
                for r in port.records.drain(..) {
                    if !recs.push(r) {
                        break 'run;
                    }
                }
                if sums.send(sum).is_err() {
                    break;
                }
            }
        }
    }

    prof.end_frame();
    let mut stats = SmStats::default();
    for sm in &sms {
        stats.add(&sm.stats());
    }
    WorkerExit {
        stats,
        stalled: sms.iter().find_map(SmCore::oldest_stalled),
    }
}
