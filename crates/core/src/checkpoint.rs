//! Resumable simulation snapshots (the `SSTBCKPT v1` format).
//!
//! A snapshot captures everything a simulation carries **across** a kernel
//! boundary: the clock, accumulated statistics, per-kernel results,
//! sampling measurements, and the persistent memory-hierarchy state (cache
//! tags, DRAM channel timing, lifetime counters). Kernel boundaries are
//! quiescent points — the event heap is drained, no requests are in flight,
//! every warp has retired — so transient engine state never needs
//! serializing; [`MemorySystem::save_state`] enforces that invariant and
//! refuses to snapshot a non-quiescent hierarchy.
//!
//! # File format
//!
//! Three lines of UTF-8 text:
//!
//! ```text
//! SSTBCKPT v1
//! <16 hex digits: fnv1a64 of the payload line>
//! <single-line JSON payload>
//! ```
//!
//! The payload carries an `identity` block (application name, trace content
//! hash, GPU config hash, fidelity description, thread count) that must
//! match the resuming run exactly, four state sections (`stats`, `kernels`,
//! `sampling`, `memory`), and a `section_hashes` block with the fnv1a64 of
//! each section's serialized form. The whole-payload hash detects
//! truncation and bit flips; the per-section hashes localize a mismatch and
//! are folded into campaign job keys so a resumed job caches under a key
//! that names the exact state it started from.
//!
//! All 64-bit state (cache tags, RNG words, cycle counts, `f64` bit
//! patterns) is encoded as **hex word streams** — space-separated lowercase
//! hex words inside JSON strings — because the JSON number representation
//! is an `f64` and only exact below 2^53. [`WordWriter`]/[`WordReader`] are
//! the crate-internal helpers every component serializer uses.
//!
//! Snapshots are written atomically (write to a `.tmp` sibling, then
//! rename), so a crash mid-write never leaves a half-snapshot at the
//! target path.
//!
//! [`MemorySystem::save_state`]: crate::mem_system::MemorySystem::save_state

use crate::error::SimError;
use crate::result::KernelResult;
use crate::sm::SmStats;
use crate::Cycle;
use std::path::Path;
use swiftsim_config::fnv1a64;
use swiftsim_metrics::Json;

/// Format-version tag on the first line of every snapshot file.
const MAGIC: &str = "SSTBCKPT v1";

/// Serialize `u64` words as a space-separated lowercase-hex stream.
///
/// JSON numbers are `f64` and lose precision above 2^53; cache tags, RNG
/// state, and `f64::to_bits` patterns need all 64 bits, so component state
/// travels through JSON as strings of hex words instead.
#[derive(Debug, Default)]
pub(crate) struct WordWriter {
    out: String,
}

impl WordWriter {
    pub(crate) fn new() -> Self {
        WordWriter::default()
    }

    /// Append one word.
    pub(crate) fn push(&mut self, word: u64) {
        use std::fmt::Write as _;
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        let _ = write!(self.out, "{word:x}");
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub(crate) fn push_f64(&mut self, value: f64) {
        self.push(value.to_bits());
    }

    /// Append a length-prefixed run of words.
    pub(crate) fn push_slice(&mut self, words: &[u64]) {
        self.push(words.len() as u64);
        for &w in words {
            self.push(w);
        }
    }

    /// The finished stream.
    pub(crate) fn finish(self) -> String {
        self.out
    }
}

/// Parse a [`WordWriter`] stream back into words, with exhaustion checks.
#[derive(Debug)]
pub(crate) struct WordReader<'a> {
    words: std::str::SplitAsciiWhitespace<'a>,
    what: &'a str,
}

impl<'a> WordReader<'a> {
    /// Read from `text`; `what` names the stream in error messages.
    pub(crate) fn new(text: &'a str, what: &'a str) -> Self {
        WordReader {
            words: text.split_ascii_whitespace(),
            what,
        }
    }

    /// The next word.
    pub(crate) fn next(&mut self) -> Result<u64, String> {
        let token = self
            .words
            .next()
            .ok_or_else(|| format!("{}: word stream truncated", self.what))?;
        u64::from_str_radix(token, 16).map_err(|_| format!("{}: bad hex word {token:?}", self.what))
    }

    /// The next word as an `f64` bit pattern.
    pub(crate) fn next_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.next()?))
    }

    /// The next word as a `usize`.
    pub(crate) fn next_usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.next()?).map_err(|_| format!("{}: word exceeds usize", self.what))
    }

    /// A length-prefixed run of words written by [`WordWriter::push_slice`].
    pub(crate) fn next_slice(&mut self) -> Result<Vec<u64>, String> {
        let len = self.next_usize()?;
        // Cap the preallocation: a corrupt length must not OOM the reader.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(self.next()?);
        }
        Ok(out)
    }

    /// Assert the stream is fully consumed.
    pub(crate) fn finish(mut self) -> Result<(), String> {
        if self.words.next().is_some() {
            return Err(format!("{}: trailing words in stream", self.what));
        }
        Ok(())
    }
}

fn checkpoint_err(message: impl Into<String>) -> SimError {
    SimError::Checkpoint {
        message: message.into(),
    }
}

/// Everything a simulation carries across a kernel boundary, in a form
/// that can be written to disk and resumed bit-identically.
///
/// Produced by `swiftsim run --checkpoint-out` (one snapshot per kernel
/// boundary, atomically replacing the previous one) and consumed by
/// `--resume`. The serve daemon uses the same snapshots to migrate
/// in-flight jobs off a draining coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Application name (identity).
    pub(crate) app: String,
    /// Trace content hash (identity).
    pub(crate) content_hash: u64,
    /// [`GpuConfig::stable_hash`](swiftsim_config::GpuConfig::stable_hash)
    /// of the run's configuration (identity).
    pub(crate) config_hash: u64,
    /// [`FidelityConfig::describe`](crate::FidelityConfig::describe) of the
    /// run's fidelity (identity).
    pub(crate) fidelity: String,
    /// Worker threads the run used (identity: the two-phase engine's
    /// shard grouping depends on it).
    pub(crate) threads: usize,
    /// Index of the first kernel the resumed run must simulate.
    pub(crate) next_kernel: usize,
    /// Simulated cycle at the boundary.
    pub(crate) cycle: Cycle,
    /// Whole-run statistics accumulated so far.
    pub(crate) total_stats: SmStats,
    /// Per-kernel results of the kernels already simulated.
    pub(crate) kernels: Vec<KernelResult>,
    /// Sampling measurements (`None` when sampling is off).
    pub(crate) sampling: Option<Vec<u64>>,
    /// Persistent memory-hierarchy state, as serialized by the run's
    /// [`MemorySystem::save_state`](crate::mem_system::MemorySystem::save_state).
    pub(crate) memory: Json,
}

/// Names of the four state sections, in serialization order.
const SECTION_NAMES: [&str; 4] = ["stats", "kernels", "sampling", "memory"];

impl Snapshot {
    /// Application name recorded in the snapshot.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Index of the first kernel a resumed run will simulate; equivalently,
    /// the number of kernels already completed.
    pub fn next_kernel(&self) -> usize {
        self.next_kernel
    }

    /// Simulated cycle at the snapshot's kernel boundary.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Fidelity description the snapshot was taken under.
    pub fn fidelity(&self) -> &str {
        &self.fidelity
    }

    /// Worker-thread count the snapshot was taken under.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// fnv1a64 of each state section's serialized form, in a stable order.
    ///
    /// Campaign job keys fold these in on resume so a resumed job caches
    /// under a key naming the exact state it started from.
    pub fn section_hashes(&self) -> Vec<(&'static str, u64)> {
        SECTION_NAMES
            .iter()
            .zip(self.sections())
            .map(|(&name, json)| (name, fnv1a64(json.dump().as_bytes())))
            .collect()
    }

    /// A single stable digest folding every section hash — the value
    /// campaign job keys mix in when a job resumes from this snapshot.
    pub fn digest(&self) -> u64 {
        let mut text = String::new();
        for (name, hash) in self.section_hashes() {
            text.push_str(name);
            text.push(':');
            text.push_str(&format!("{hash:016x}"));
            text.push(' ');
        }
        fnv1a64(text.as_bytes())
    }

    fn sections(&self) -> [Json; 4] {
        let mut stats = WordWriter::new();
        stats.push(self.cycle);
        push_stats(&mut stats, &self.total_stats);
        let kernels = Json::Arr(
            self.kernels
                .iter()
                .map(|k| {
                    let mut w = WordWriter::new();
                    w.push(k.cycles);
                    w.push(k.instructions);
                    w.push(k.blocks);
                    Json::obj(vec![
                        ("name", Json::str(k.name.clone())),
                        ("v", Json::str(w.finish())),
                    ])
                })
                .collect(),
        );
        let sampling = match &self.sampling {
            None => Json::Null,
            Some(words) => {
                let mut w = WordWriter::new();
                for &word in words {
                    w.push(word);
                }
                Json::str(w.finish())
            }
        };
        [
            Json::str(stats.finish()),
            kernels,
            sampling,
            self.memory.clone(),
        ]
    }

    fn payload(&self) -> Json {
        let sections = self.sections();
        let section_hashes = Json::obj(
            SECTION_NAMES
                .iter()
                .zip(&sections)
                .map(|(&name, json)| {
                    (
                        name,
                        Json::str(format!("{:016x}", fnv1a64(json.dump().as_bytes()))),
                    )
                })
                .collect(),
        );
        let [stats, kernels, sampling, memory] = sections;
        Json::obj(vec![
            ("version", Json::int(1)),
            (
                "result_schema",
                Json::int(crate::json::RESULT_SCHEMA_VERSION),
            ),
            (
                "identity",
                Json::obj(vec![
                    ("app", Json::str(self.app.clone())),
                    (
                        "content_hash",
                        Json::str(format!("{:016x}", self.content_hash)),
                    ),
                    (
                        "config_hash",
                        Json::str(format!("{:016x}", self.config_hash)),
                    ),
                    ("fidelity", Json::str(self.fidelity.clone())),
                    ("threads", Json::int(self.threads as u64)),
                ]),
            ),
            ("next_kernel", Json::int(self.next_kernel as u64)),
            ("stats", stats),
            ("kernels", kernels),
            ("sampling", sampling),
            ("memory", memory),
            ("section_hashes", section_hashes),
        ])
    }

    /// Render the snapshot as `SSTBCKPT v1` file text.
    pub fn to_text(&self) -> String {
        let payload = self.payload().dump();
        format!("{MAGIC}\n{:016x}\n{payload}\n", fnv1a64(payload.as_bytes()))
    }

    /// Write the snapshot to `path` atomically (temp sibling + rename), so
    /// a crash mid-write never leaves a torn snapshot where a resume (or
    /// the serve daemon's drain path) would read it.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on any I/O failure.
    pub fn write_to(&self, path: &Path) -> Result<(), SimError> {
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, self.to_text())
            .map_err(|e| checkpoint_err(format!("writing checkpoint {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            checkpoint_err(format!("publishing checkpoint {}: {e}", path.display()))
        })
    }

    /// Parse snapshot file text (see [`Snapshot::read_from`]).
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on a bad magic line, a payload-hash
    /// mismatch (truncation or bit flip), a section-hash mismatch, or any
    /// malformed section.
    pub fn from_text(text: &str) -> Result<Snapshot, SimError> {
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or("");
        if magic != MAGIC {
            return Err(checkpoint_err(format!(
                "not a checkpoint file (expected {MAGIC:?} header, found {magic:?})"
            )));
        }
        let stored_hash = lines
            .next()
            .ok_or_else(|| checkpoint_err("checkpoint truncated before payload hash"))?;
        let payload_line = lines
            .next()
            .ok_or_else(|| checkpoint_err("checkpoint truncated before payload"))?;
        let actual = format!("{:016x}", fnv1a64(payload_line.as_bytes()));
        if stored_hash != actual {
            return Err(checkpoint_err(format!(
                "checkpoint corrupt: payload hash {actual} does not match stored {stored_hash} \
                 (file truncated or bits flipped)"
            )));
        }
        let payload = Json::parse(payload_line)
            .map_err(|e| checkpoint_err(format!("checkpoint payload: {e}")))?;
        Snapshot::from_payload(&payload)
    }

    /// Read and validate a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on I/O failure or any corruption detected
    /// by [`Snapshot::from_text`].
    pub fn read_from(path: &Path) -> Result<Snapshot, SimError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| checkpoint_err(format!("reading checkpoint {}: {e}", path.display())))?;
        Snapshot::from_text(&text).map_err(|e| match e {
            SimError::Checkpoint { message } => {
                checkpoint_err(format!("{}: {message}", path.display()))
            }
            other => other,
        })
    }

    fn from_payload(payload: &Json) -> Result<Snapshot, SimError> {
        let version = payload
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| checkpoint_err("checkpoint payload missing version"))?;
        if version != 1 {
            return Err(checkpoint_err(format!(
                "unsupported checkpoint version {version} (this build reads version 1)"
            )));
        }
        let identity = payload
            .get("identity")
            .ok_or_else(|| checkpoint_err("checkpoint payload missing identity"))?;
        let ident_str = |key: &str| -> Result<String, SimError> {
            identity
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| checkpoint_err(format!("checkpoint identity missing {key}")))
        };
        let ident_hash = |key: &str| -> Result<u64, SimError> {
            let text = ident_str(key)?;
            u64::from_str_radix(&text, 16)
                .map_err(|_| checkpoint_err(format!("checkpoint identity {key} is not hex")))
        };
        let threads = identity
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or_else(|| checkpoint_err("checkpoint identity missing threads"))?
            as usize;
        let next_kernel = payload
            .get("next_kernel")
            .and_then(Json::as_u64)
            .ok_or_else(|| checkpoint_err("checkpoint payload missing next_kernel"))?
            as usize;

        // Verify each section against its stored hash before decoding, so a
        // flipped bit is reported as corruption in a named section rather
        // than as a confusing parse error.
        let hashes = payload
            .get("section_hashes")
            .ok_or_else(|| checkpoint_err("checkpoint payload missing section_hashes"))?;
        let section = |name: &str| -> Result<&Json, SimError> {
            let json = payload.get(name).ok_or_else(|| {
                checkpoint_err(format!("checkpoint payload missing section {name}"))
            })?;
            let stored = hashes.get(name).and_then(Json::as_str).ok_or_else(|| {
                checkpoint_err(format!("checkpoint missing hash for section {name}"))
            })?;
            let actual = format!("{:016x}", fnv1a64(json.dump().as_bytes()));
            if stored != actual {
                return Err(checkpoint_err(format!(
                    "checkpoint section {name} corrupt: hash {actual} does not match stored {stored}"
                )));
            }
            Ok(json)
        };

        let stats_text = section("stats")?
            .as_str()
            .ok_or_else(|| checkpoint_err("checkpoint stats section is not a string"))?;
        let mut r = WordReader::new(stats_text, "stats section");
        let (cycle, total_stats) = (|| -> Result<(Cycle, SmStats), String> {
            let cycle = r.next()?;
            let stats = read_stats(&mut r)?;
            r.finish()?;
            Ok((cycle, stats))
        })()
        .map_err(checkpoint_err)?;

        let kernels_json = section("kernels")?
            .as_arr()
            .ok_or_else(|| checkpoint_err("checkpoint kernels section is not an array"))?
            .to_vec();
        let mut kernels = Vec::with_capacity(kernels_json.len());
        for entry in &kernels_json {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| checkpoint_err("checkpoint kernel entry missing name"))?
                .to_owned();
            let words = entry
                .get("v")
                .and_then(Json::as_str)
                .ok_or_else(|| checkpoint_err("checkpoint kernel entry missing words"))?;
            let mut r = WordReader::new(words, "kernel entry");
            let parsed = (|| -> Result<KernelResult, String> {
                let k = KernelResult {
                    name,
                    cycles: r.next()?,
                    instructions: r.next()?,
                    blocks: r.next()?,
                };
                r.finish()?;
                Ok(k)
            })()
            .map_err(checkpoint_err)?;
            kernels.push(parsed);
        }

        let sampling = match section("sampling")? {
            Json::Null => None,
            json => {
                let text = json
                    .as_str()
                    .ok_or_else(|| checkpoint_err("checkpoint sampling section is not a string"))?;
                let mut r = WordReader::new(text, "sampling section");
                let mut words = Vec::new();
                while let Ok(w) = r.next() {
                    words.push(w);
                }
                Some(words)
            }
        };

        Ok(Snapshot {
            app: ident_str("app")?,
            content_hash: ident_hash("content_hash")?,
            config_hash: ident_hash("config_hash")?,
            fidelity: ident_str("fidelity")?,
            threads,
            next_kernel,
            cycle,
            total_stats,
            kernels,
            sampling,
            memory: section("memory")?.clone(),
        })
    }

    /// Check that this snapshot was taken by a run identical to the one
    /// resuming from it. Resumption is only bit-identical when the trace,
    /// configuration, fidelity, and thread count all match.
    pub(crate) fn validate_identity(
        &self,
        app: &str,
        content_hash: u64,
        config_hash: u64,
        fidelity: &str,
        threads: usize,
    ) -> Result<(), SimError> {
        let mismatch = |what: &str, snap: &str, run: &str| {
            checkpoint_err(format!(
                "checkpoint {what} mismatch: snapshot was taken with {snap:?}, this run has {run:?}"
            ))
        };
        if self.app != app {
            return Err(mismatch("application", &self.app, app));
        }
        if self.content_hash != content_hash {
            return Err(mismatch(
                "trace content",
                &format!("{:016x}", self.content_hash),
                &format!("{content_hash:016x}"),
            ));
        }
        if self.config_hash != config_hash {
            return Err(mismatch(
                "GPU config",
                &format!("{:016x}", self.config_hash),
                &format!("{config_hash:016x}"),
            ));
        }
        if self.fidelity != fidelity {
            return Err(mismatch("fidelity", &self.fidelity, fidelity));
        }
        if self.threads != threads {
            return Err(mismatch(
                "thread count",
                &self.threads.to_string(),
                &threads.to_string(),
            ));
        }
        Ok(())
    }
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The 10 [`SmStats`] counters as a fixed word array (field order).
pub(crate) fn stats_words(s: &SmStats) -> [u64; 10] {
    [
        s.issued,
        s.mem_insts,
        s.stall_scoreboard,
        s.stall_unit_busy,
        s.stall_barrier,
        s.stall_empty,
        s.shared_bank_conflicts,
        s.icache_misses,
        s.ccache_misses,
        s.active_cycles,
    ]
}

/// Rebuild [`SmStats`] from the word array written by [`stats_words`].
pub(crate) fn stats_from_words(w: &[u64; 10]) -> SmStats {
    SmStats {
        issued: w[0],
        mem_insts: w[1],
        stall_scoreboard: w[2],
        stall_unit_busy: w[3],
        stall_barrier: w[4],
        stall_empty: w[5],
        shared_bank_conflicts: w[6],
        icache_misses: w[7],
        ccache_misses: w[8],
        active_cycles: w[9],
    }
}

fn push_stats(w: &mut WordWriter, s: &SmStats) {
    w.push(s.issued);
    w.push(s.mem_insts);
    w.push(s.stall_scoreboard);
    w.push(s.stall_unit_busy);
    w.push(s.stall_barrier);
    w.push(s.stall_empty);
    w.push(s.shared_bank_conflicts);
    w.push(s.icache_misses);
    w.push(s.ccache_misses);
    w.push(s.active_cycles);
}

fn read_stats(r: &mut WordReader<'_>) -> Result<SmStats, String> {
    Ok(SmStats {
        issued: r.next()?,
        mem_insts: r.next()?,
        stall_scoreboard: r.next()?,
        stall_unit_busy: r.next()?,
        stall_barrier: r.next()?,
        stall_empty: r.next()?,
        shared_bank_conflicts: r.next()?,
        icache_misses: r.next()?,
        ccache_misses: r.next()?,
        active_cycles: r.next()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            app: "vecadd".to_owned(),
            content_hash: 0xdead_beef_0123_4567,
            config_hash: 0x8899_aabb_ccdd_eeff,
            fidelity: "cycle_accurate_alu+cycle_accurate_memory+detailed_frontend+event_driven"
                .to_owned(),
            threads: 2,
            next_kernel: 3,
            cycle: 123_456_789,
            total_stats: SmStats {
                issued: u64::MAX - 7, // exercise > 2^53 round trip
                mem_insts: 42,
                ..SmStats::default()
            },
            kernels: vec![
                KernelResult {
                    name: "k0".to_owned(),
                    cycles: 1000,
                    instructions: 5000,
                    blocks: 16,
                },
                KernelResult {
                    name: "k1".to_owned(),
                    cycles: u64::MAX / 3,
                    instructions: 2,
                    blocks: 1,
                },
            ],
            sampling: Some(vec![1, 2, u64::MAX]),
            memory: Json::obj(vec![
                ("kind", Json::str("analytical")),
                ("v", Json::str("ff 0 1")),
            ]),
        }
    }

    #[test]
    fn word_stream_round_trips_full_u64_range() {
        let mut w = WordWriter::new();
        for &v in &[0u64, 1, u64::MAX, 1 << 53, (1 << 53) + 1] {
            w.push(v);
        }
        w.push_f64(core::f64::consts::PI);
        w.push_slice(&[7, 8, 9]);
        let text = w.finish();
        let mut r = WordReader::new(&text, "test");
        for &v in &[0u64, 1, u64::MAX, 1 << 53, (1 << 53) + 1] {
            assert_eq!(r.next().unwrap(), v);
        }
        assert_eq!(r.next_f64().unwrap(), core::f64::consts::PI);
        assert_eq!(r.next_slice().unwrap(), vec![7, 8, 9]);
        r.finish().unwrap();
    }

    #[test]
    fn word_reader_rejects_truncation_and_garbage() {
        let mut r = WordReader::new("ff", "t");
        r.next().unwrap();
        assert!(r.next().unwrap_err().contains("truncated"));
        let mut r = WordReader::new("xyzzy", "t");
        assert!(r.next().unwrap_err().contains("bad hex"));
        let r = WordReader::new("1 2", "t");
        let mut r2 = r;
        r2.next().unwrap();
        assert!(r2.finish().unwrap_err().contains("trailing"));
    }

    #[test]
    fn snapshot_text_round_trips() {
        let snap = sample_snapshot();
        let parsed = Snapshot::from_text(&snap.to_text()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn snapshot_file_round_trips_atomically() {
        let dir = std::env::temp_dir().join("sstb_ckpt_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.sstbckpt");
        let snap = sample_snapshot();
        snap.write_to(&path).unwrap();
        // No temp sibling left behind.
        assert!(!tmp_sibling(&path).exists());
        assert_eq!(Snapshot::read_from(&path).unwrap(), snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let text = sample_snapshot().to_text();
        // Cut the payload line short: the whole-payload hash must catch it.
        let cut = &text[..text.len() - 30];
        let err = Snapshot::from_text(cut).unwrap_err().to_string();
        assert!(
            err.contains("corrupt") || err.contains("truncated"),
            "{err}"
        );
    }

    #[test]
    fn bit_flipped_snapshot_is_rejected() {
        let text = sample_snapshot().to_text();
        // Flip one hex digit inside the payload (third line).
        let payload_start = text.match_indices('\n').nth(1).unwrap().0 + 1;
        let flip_at = payload_start + text[payload_start..].find("deadbeef").unwrap();
        let mut bytes = text.into_bytes();
        bytes[flip_at] = b'f';
        let flipped = String::from_utf8(bytes).unwrap();
        let err = Snapshot::from_text(&flipped).unwrap_err().to_string();
        assert!(err.contains("corrupt"), "{err}");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let err = Snapshot::from_text("SSTB v0\nabc\n{}")
            .unwrap_err()
            .to_string();
        assert!(err.contains("not a checkpoint file"), "{err}");
    }

    #[test]
    fn identity_mismatches_are_named() {
        let snap = sample_snapshot();
        let fid = snap.fidelity.clone();
        assert!(snap
            .validate_identity("vecadd", snap.content_hash, snap.config_hash, &fid, 2)
            .is_ok());
        let err = snap
            .validate_identity("other", snap.content_hash, snap.config_hash, &fid, 2)
            .unwrap_err()
            .to_string();
        assert!(err.contains("application"), "{err}");
        let err = snap
            .validate_identity("vecadd", 1, snap.config_hash, &fid, 2)
            .unwrap_err()
            .to_string();
        assert!(err.contains("trace content"), "{err}");
        let err = snap
            .validate_identity("vecadd", snap.content_hash, snap.config_hash, &fid, 4)
            .unwrap_err()
            .to_string();
        assert!(err.contains("thread count"), "{err}");
    }

    #[test]
    fn section_hashes_and_digest_are_stable_and_state_sensitive() {
        let snap = sample_snapshot();
        let hashes = snap.section_hashes();
        assert_eq!(
            hashes.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec!["stats", "kernels", "sampling", "memory"]
        );
        assert_eq!(snap.digest(), sample_snapshot().digest());
        let mut later = sample_snapshot();
        later.cycle += 1;
        assert_ne!(snap.digest(), later.digest(), "digest must track state");
    }
}
