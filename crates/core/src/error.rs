//! Error type for simulation runs.

use std::fmt;

/// The stable prefix of every rendered [`SimError::Deadlock`] message.
///
/// Services that only see stringified errors (the serve daemon's flight
/// recorder, remote workers shipping failures as text) match on this marker
/// to classify a failure as a modeling deadlock — keep it in sync with the
/// `Display` impl below, which is built from it.
pub const DEADLOCK_MARKER: &str = "simulation made no progress";

/// Error produced while running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulator configuration is invalid (rejected by
    /// [`GpuSimulator::try_new`](crate::GpuSimulator::try_new) before any
    /// simulation starts).
    InvalidConfig {
        /// Explanation of the problem.
        message: String,
    },
    /// A kernel could not be decoded from its trace source while the
    /// simulation was consuming it (I/O failure, corrupt section, parse
    /// error in a lazily-decoded kernel).
    Trace {
        /// The rendered [`swiftsim_trace::TraceError`].
        message: String,
        /// When the underlying failure was file I/O
        /// ([`swiftsim_trace::TraceError::Io`]), its
        /// [`std::io::ErrorKind`] — preserved so a service log can
        /// distinguish `NotFound` (bad request) from `PermissionDenied`
        /// (deployment problem) without string matching. `None` for
        /// parse/corruption failures.
        io_kind: Option<std::io::ErrorKind>,
    },
    /// The trace is inconsistent with its declared launch geometry.
    InconsistentTrace {
        /// The offending kernel's name.
        kernel: String,
        /// Explanation.
        message: String,
    },
    /// A kernel needs more per-block resources than one SM provides.
    BlockTooLarge {
        /// The offending kernel's name.
        kernel: String,
        /// Which resource is exceeded.
        resource: String,
    },
    /// The simulation exceeded its cycle safety limit, which indicates a
    /// modeling deadlock (e.g. a warp waiting on a completion that was
    /// never scheduled).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// The stalled SM shard (shard 0 is the whole GPU when
        /// single-threaded).
        shard: usize,
        /// The oldest waiting warp and/or in-flight memory request, so the
        /// hang is debuggable from the error alone.
        detail: String,
    },
    /// A worker thread panicked. The panic is captured and surfaced as an
    /// error so one bad shard (or one bad job in a campaign) cannot abort
    /// the whole process.
    WorkerPanic {
        /// What the worker was doing (e.g. `"shard 3"`).
        context: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A checkpoint snapshot could not be written, read, or applied:
    /// I/O failure, detected corruption (payload or section hash
    /// mismatch), or an identity mismatch between the snapshot and the
    /// resuming run.
    Checkpoint {
        /// Explanation of the problem.
        message: String,
    },
}

/// Render a `catch_unwind`/`join` panic payload as text.
///
/// Panic payloads are `Box<dyn Any>`; in practice they are almost always
/// `&str` (from `panic!("...")`) or `String` (from `panic!("{x}")`).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { message } => {
                write!(f, "invalid simulator configuration: {message}")
            }
            SimError::Trace { message, .. } => {
                write!(f, "trace ingestion failed: {message}")
            }
            SimError::InconsistentTrace { kernel, message } => {
                write!(f, "kernel {kernel}: inconsistent trace: {message}")
            }
            SimError::BlockTooLarge { kernel, resource } => {
                write!(f, "kernel {kernel}: block exceeds SM {resource}")
            }
            SimError::Deadlock {
                cycle,
                shard,
                detail,
            } => {
                write!(
                    f,
                    "{DEADLOCK_MARKER} at cycle {cycle} (shard {shard}): {detail}"
                )
            }
            SimError::WorkerPanic { context, message } => {
                write!(f, "worker panicked in {context}: {message}")
            }
            SimError::Checkpoint { message } => {
                write!(f, "checkpoint error: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// The [`std::io::ErrorKind`] behind this error, when it wraps a trace
    /// I/O failure.
    pub fn io_kind(&self) -> Option<std::io::ErrorKind> {
        match self {
            SimError::Trace { io_kind, .. } => *io_kind,
            _ => None,
        }
    }
}

impl From<swiftsim_trace::TraceError> for SimError {
    fn from(e: swiftsim_trace::TraceError) -> Self {
        SimError::Trace {
            io_kind: e.io_kind(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::BlockTooLarge {
            kernel: "k".to_owned(),
            resource: "shared memory".to_owned(),
        };
        assert_eq!(e.to_string(), "kernel k: block exceeds SM shared memory");
    }

    #[test]
    fn deadlock_display_names_shard_and_detail() {
        let e = SimError::Deadlock {
            cycle: 42,
            shard: 3,
            detail: "SM 1 block 7 warp 0 at barrier".to_owned(),
        };
        let s = e.to_string();
        assert!(s.starts_with(DEADLOCK_MARKER), "{s}");
        assert!(s.contains("cycle 42"), "{s}");
        assert!(s.contains("shard 3"), "{s}");
        assert!(s.contains("warp 0 at barrier"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn trace_io_kind_survives_conversion_and_display() {
        use std::io::ErrorKind;
        let make = |kind: ErrorKind| {
            let io = std::io::Error::new(kind, "os says no");
            SimError::from(swiftsim_trace::TraceError::io("/traces/app.sstraceb", &io))
        };

        // NotFound and PermissionDenied stay distinguishable both
        // structurally (io_kind) and in the rendered message.
        let not_found = make(ErrorKind::NotFound);
        let denied = make(ErrorKind::PermissionDenied);
        assert_eq!(not_found.io_kind(), Some(ErrorKind::NotFound));
        assert_eq!(denied.io_kind(), Some(ErrorKind::PermissionDenied));
        assert!(not_found.to_string().contains("NotFound"), "{not_found}");
        assert!(denied.to_string().contains("PermissionDenied"), "{denied}");
        assert!(not_found.to_string().contains("/traces/app.sstraceb"));

        // Non-I/O trace failures carry no kind.
        let parse: SimError = swiftsim_trace::TraceError::Parse {
            line: 1,
            message: "bad".to_owned(),
        }
        .into();
        assert_eq!(parse.io_kind(), None);
        let cfg = SimError::InvalidConfig {
            message: "m".to_owned(),
        };
        assert_eq!(cfg.io_kind(), None);
    }
}
