//! JSON serialization of simulation results.
//!
//! One schema is shared by every product surface that emits results: the
//! `swiftsim --json` flag, the campaign engine's JSON-lines output, and the
//! campaign result cache (which also reads it back). The schema is
//! versioned by `RESULT_SCHEMA_VERSION`; bump it when a field changes
//! meaning so stale cache entries are not misread.

use crate::fidelity::FidelityConfig;
use crate::result::{KernelResult, SimulationResult};
use swiftsim_metrics::{Json, MetricsCollector};

/// Version tag embedded in every serialized result.
///
/// v2: added the resolved `fidelity` object; swift presets now accrue
/// stall/active-cycle statistics during formerly skipped idle cycles (the
/// event-driven engine accounts them exactly), so v1 counters are not
/// comparable.
///
/// v3: the fidelity object gained `sync_quantum` (shard-synchronization
/// quantum of the two-phase parallel engine). Multi-threaded runs now use
/// the shared-memory two-phase engine by default instead of decoupled
/// per-shard memory slices, so v2 multi-threaded counters are not
/// comparable.
///
/// v4: the fidelity object gained `sampling` (kernel-launch sampling
/// policy) and results gained an optional `confidence` block carrying the
/// per-kernel and whole-app error bounds of a sampled run. Pre-v4 cache
/// entries have no way to state whether they were sampled, so they are
/// re-run rather than misread.
///
/// v5: results gained a `stats` block — the typed stat-catalog view
/// ([`crate::StatId`], [`SimulationResult::stats`]) with stable snake_case
/// names; unknown stat names are now load-time errors instead of silent
/// zeros. The analytical memory model also started reporting estimated
/// `mem.l1.*` / `mem.l2.*` / `mem.dram.*` statistics, so v4 swift-memory
/// metric sets are incomplete by comparison.
pub const RESULT_SCHEMA_VERSION: u64 = 5;

impl KernelResult {
    /// Serialize to the shared JSON schema.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("cycles", Json::int(self.cycles)),
            ("instructions", Json::int(self.instructions)),
            ("blocks", Json::int(self.blocks)),
            ("ipc", Json::Num(self.ipc())),
        ])
    }

    fn from_json(json: &Json) -> Result<KernelResult, String> {
        Ok(KernelResult {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or("kernel: missing name")?
                .to_owned(),
            cycles: json
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or("kernel: missing cycles")?,
            instructions: json
                .get("instructions")
                .and_then(Json::as_u64)
                .ok_or("kernel: missing instructions")?,
            blocks: json
                .get("blocks")
                .and_then(Json::as_u64)
                .ok_or("kernel: missing blocks")?,
        })
    }
}

impl FidelityConfig {
    /// Serialize the resolved fidelity (stable tokens, see the `token`
    /// methods of each kind).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("alu", Json::str(self.alu.token())),
            ("memory", Json::str(self.memory.token())),
            ("frontend", Json::str(self.frontend.token())),
            ("skip_policy", Json::str(self.skip_policy.token())),
            ("sync_quantum", Json::str(self.sync_quantum.token())),
            ("sampling", Json::str(self.sampling.token())),
        ])
    }

    fn from_json(json: &Json) -> Result<FidelityConfig, String> {
        fn field<T: std::str::FromStr<Err = crate::error::SimError>>(
            json: &Json,
            key: &str,
        ) -> Result<T, String> {
            json.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("fidelity: missing {key}"))?
                .parse()
                .map_err(|e: crate::error::SimError| e.to_string())
        }
        Ok(FidelityConfig {
            alu: field(json, "alu")?,
            memory: field(json, "memory")?,
            frontend: field(json, "frontend")?,
            skip_policy: field(json, "skip_policy")?,
            // Absent in pre-v3 documents; the default quantum is the only
            // value such documents could have run with.
            sync_quantum: match json.get("sync_quantum").and_then(Json::as_str) {
                Some(tok) => tok
                    .parse()
                    .map_err(|e: crate::error::SimError| e.to_string())?,
                None => crate::fidelity::SyncQuantum::PerCycle,
            },
            // Absent in pre-v4 documents; such documents could only have run
            // unsampled.
            sampling: match json.get("sampling").and_then(Json::as_str) {
                Some(tok) => tok
                    .parse()
                    .map_err(|e: crate::error::SimError| e.to_string())?,
                None => crate::fidelity::SamplingPolicy::Off,
            },
        })
    }
}

impl crate::result::Confidence {
    /// Serialize to the shared JSON schema.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clusters", Json::int(self.clusters)),
            ("sampled_kernels", Json::int(self.sampled_kernels)),
            ("replayed_kernels", Json::int(self.replayed_kernels)),
            ("replayed_cycles", Json::int(self.replayed_cycles)),
            (
                "kernel_error_bounds",
                Json::Arr(
                    self.kernel_error_bounds
                        .iter()
                        .map(|&b| Json::Num(b))
                        .collect(),
                ),
            ),
            ("app_error_bound", Json::Num(self.app_error_bound)),
        ])
    }

    fn from_json(json: &Json) -> Result<crate::result::Confidence, String> {
        Ok(crate::result::Confidence {
            clusters: json
                .get("clusters")
                .and_then(Json::as_u64)
                .ok_or("confidence: missing clusters")?,
            sampled_kernels: json
                .get("sampled_kernels")
                .and_then(Json::as_u64)
                .ok_or("confidence: missing sampled_kernels")?,
            replayed_kernels: json
                .get("replayed_kernels")
                .and_then(Json::as_u64)
                .ok_or("confidence: missing replayed_kernels")?,
            replayed_cycles: json
                .get("replayed_cycles")
                .and_then(Json::as_u64)
                .ok_or("confidence: missing replayed_cycles")?,
            kernel_error_bounds: json
                .get("kernel_error_bounds")
                .and_then(Json::as_arr)
                .ok_or("confidence: missing kernel_error_bounds")?
                .iter()
                .map(|b| Json::as_f64(b).ok_or("confidence: non-numeric bound".to_owned()))
                .collect::<Result<Vec<_>, _>>()?,
            app_error_bound: json
                .get("app_error_bound")
                .and_then(Json::as_f64)
                .ok_or("confidence: missing app_error_bound")?,
        })
    }
}

impl SimulationResult {
    /// Serialize to the shared JSON schema (single-line, deterministic
    /// field order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::int(RESULT_SCHEMA_VERSION)),
            ("app", Json::str(&self.app)),
            ("simulator", Json::str(&self.simulator)),
            ("fidelity", self.fidelity.to_json()),
            ("cycles", Json::int(self.cycles)),
            ("instructions", Json::int(self.instructions())),
            ("ipc", Json::Num(self.ipc())),
            ("wall_time_us", Json::int(self.wall_time.as_micros() as u64)),
            (
                "kernels",
                Json::Arr(self.kernels.iter().map(KernelResult::to_json).collect()),
            ),
            ("metrics", self.metrics.to_json()),
            (
                "stats",
                Json::Obj(
                    self.stats()
                        .iter()
                        .map(|&(id, v)| (id.name().to_owned(), Json::Num(v)))
                        .collect(),
                ),
            ),
            (
                "confidence",
                match &self.confidence {
                    Some(c) => c.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Rebuild a result from [`SimulationResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field, or a schema
    /// version mismatch.
    pub fn from_json(json: &Json) -> Result<SimulationResult, String> {
        let schema = json.get("schema").and_then(Json::as_u64).unwrap_or(0);
        if schema != RESULT_SCHEMA_VERSION {
            return Err(format!(
                "result schema {schema} (this build reads {RESULT_SCHEMA_VERSION})"
            ));
        }
        let kernels = json
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("result: missing kernels")?
            .iter()
            .map(KernelResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // The stats block is derived (rebuilt on demand by `stats()`), but
        // its names are validated so a renamed stat is a load-time error
        // here rather than a silent zero downstream.
        if let Some(Json::Obj(pairs)) = json.get("stats") {
            for (name, _) in pairs {
                crate::stats::StatId::from_name(name).map_err(|e| e.to_string())?;
            }
        }
        Ok(SimulationResult {
            app: json
                .get("app")
                .and_then(Json::as_str)
                .ok_or("result: missing app")?
                .to_owned(),
            simulator: json
                .get("simulator")
                .and_then(Json::as_str)
                .ok_or("result: missing simulator")?
                .to_owned(),
            fidelity: FidelityConfig::from_json(
                json.get("fidelity").ok_or("result: missing fidelity")?,
            )?,
            cycles: json
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or("result: missing cycles")?,
            kernels,
            metrics: json
                .get("metrics")
                .map(MetricsCollector::from_json)
                .transpose()?
                .unwrap_or_default(),
            wall_time: std::time::Duration::from_micros(
                json.get("wall_time_us").and_then(Json::as_u64).unwrap_or(0),
            ),
            confidence: match json.get("confidence") {
                None | Some(Json::Null) => None,
                Some(c) => Some(crate::result::Confidence::from_json(c)?),
            },
            // Self-profiling attribution is a live-run artifact and is not
            // part of the result document schema.
            profile: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::{
        AluModelKind, FrontendModelKind, MemoryModelKind, SamplingPolicy, SkipPolicy, SyncQuantum,
    };
    use crate::result::Confidence;
    use swiftsim_metrics::Value;

    fn sample() -> SimulationResult {
        let mut metrics = MetricsCollector::new();
        metrics.set("gpu.cycles", Value::Cycles(1000));
        metrics.set("mem.l1.miss_rate", Value::Ratio(0.25));
        metrics.set("core.mem_insts", Value::Count(42));
        let fidelity = FidelityConfig {
            alu: AluModelKind::Analytical,
            memory: MemoryModelKind::CycleAccurate,
            frontend: FrontendModelKind::Simplified,
            skip_policy: SkipPolicy::EventDriven,
            sync_quantum: SyncQuantum::Cycles(16),
            sampling: SamplingPolicy::Off,
        };
        SimulationResult {
            app: "bfs".into(),
            simulator: fidelity.describe(),
            fidelity,
            cycles: 1000,
            kernels: vec![KernelResult {
                name: "k\"quoted\"".into(),
                cycles: 1000,
                instructions: 2500,
                blocks: 16,
            }],
            metrics,
            wall_time: std::time::Duration::from_micros(1234),
            confidence: None,
            profile: None,
        }
    }

    #[test]
    fn result_round_trips() {
        let r = sample();
        let json = r.to_json().dump();
        let back = SimulationResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs[0].1 = Json::int(RESULT_SCHEMA_VERSION + 1);
        }
        let err = SimulationResult::from_json(&json).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn top_level_fields_present() {
        let json = sample().to_json();
        assert_eq!(json.get("app").and_then(Json::as_str), Some("bfs"));
        assert_eq!(json.get("cycles").and_then(Json::as_u64), Some(1000));
        assert_eq!(json.get("instructions").and_then(Json::as_u64), Some(2500));
        assert_eq!(json.get("wall_time_us").and_then(Json::as_u64), Some(1234));
        let metrics = json.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("mem.l1.miss_rate")
                .and_then(|e| e.get("value"))
                .and_then(Json::as_f64),
            Some(0.25)
        );
    }

    #[test]
    fn fidelity_lands_verbatim_in_json() {
        let json = sample().to_json();
        let fid = json.get("fidelity").expect("fidelity object present");
        assert_eq!(fid.get("alu").and_then(Json::as_str), Some("analytical"));
        assert_eq!(
            fid.get("memory").and_then(Json::as_str),
            Some("cycle_accurate")
        );
        assert_eq!(
            fid.get("frontend").and_then(Json::as_str),
            Some("simplified")
        );
        assert_eq!(
            fid.get("skip_policy").and_then(Json::as_str),
            Some("event_driven")
        );
        assert_eq!(fid.get("sync_quantum").and_then(Json::as_str), Some("16"));
        // A malformed fidelity is rejected, not defaulted.
        let mut bad = sample().to_json();
        if let Json::Obj(pairs) = &mut bad {
            pairs[3].1 = Json::obj(vec![("alu", Json::str("quantum"))]);
        }
        assert!(SimulationResult::from_json(&bad).is_err());
    }

    #[test]
    fn stats_block_uses_catalog_names() {
        let json = sample().to_json();
        let stats = json.get("stats").expect("stats block present");
        assert_eq!(stats.get("cycles").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(
            stats.get("instructions").and_then(Json::as_f64),
            Some(2500.0)
        );
        assert_eq!(stats.get("ipc").and_then(Json::as_f64), Some(2.5));
        assert_eq!(stats.get("l1_miss_rate").and_then(Json::as_f64), Some(0.25));
        assert_eq!(stats.get("mem_insts").and_then(Json::as_f64), Some(42.0));
        // Stats the run did not produce are absent, not zero.
        assert!(stats.get("dram_reads").is_none());
    }

    #[test]
    fn unknown_stat_name_is_a_load_time_error() {
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "stats" {
                    if let Json::Obj(stats) = v {
                        stats.push(("l1_missrate".to_owned(), Json::Num(0.5)));
                    }
                }
            }
        }
        let err = SimulationResult::from_json(&json).unwrap_err();
        assert!(err.contains("l1_missrate"), "{err}");
        assert!(err.contains("catalog"), "{err}");
    }

    #[test]
    fn confidence_round_trips() {
        let mut r = sample();
        r.fidelity.sampling = SamplingPolicy::KernelCluster { reps: 2 };
        r.confidence = Some(Confidence {
            clusters: 3,
            sampled_kernels: 6,
            replayed_kernels: 94,
            replayed_cycles: 123_456,
            kernel_error_bounds: vec![0.0, 0.031_25],
            app_error_bound: 0.028,
        });
        let json = r.to_json().dump();
        let back = SimulationResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
        // Sampling token lands in the fidelity object.
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed
                .get("fidelity")
                .and_then(|f| f.get("sampling"))
                .and_then(Json::as_str),
            Some("cluster:2")
        );
    }

    #[test]
    fn missing_sampling_defaults_to_off() {
        // Documents written before the field existed could only have run
        // unsampled; reading one must not fail.
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            if let Json::Obj(fid) = &mut pairs[3].1 {
                fid.retain(|(k, _)| *k != "sampling");
            }
        }
        let back = SimulationResult::from_json(&json).unwrap();
        assert_eq!(back.fidelity.sampling, SamplingPolicy::Off);
        assert_eq!(back.confidence, None);
    }

    #[test]
    fn missing_sync_quantum_defaults_to_per_cycle() {
        // Documents written before the field existed can only have run with
        // per-cycle semantics; reading one must not fail.
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            if let Json::Obj(fid) = &mut pairs[3].1 {
                fid.retain(|(k, _)| *k != "sync_quantum");
            }
        }
        let back = SimulationResult::from_json(&json).unwrap();
        assert_eq!(back.fidelity.sync_quantum, SyncQuantum::PerCycle);
    }
}
