//! Differential gate for the event-driven cycle-skipping engine.
//!
//! The engine's contract (see `SkipPolicy`) is that cycle skipping is a
//! pure wall-clock optimization: for any workload, preset, trace
//! representation, and thread count, the event-driven run must produce the
//! same `SimulationResult` statistics — cycles, per-kernel breakdowns, and
//! every Metrics Gatherer counter — as dense per-cycle ticking. This suite
//! is the gate on that claim; `core_speed` (swiftsim-bench) measures the
//! speedup the equivalence buys.

use swiftsim_config::presets;
use swiftsim_core::{
    AluModelKind, FidelityConfig, MemoryModelKind, RunOptions, SimulationResult, SimulatorPreset,
    SkipPolicy, SyncQuantum,
};
use swiftsim_metrics::Value;
use swiftsim_trace::{ChunkedTraceSource, TextTraceSource, TraceSource};
use swiftsim_workloads::Scale;

/// A small config so the detailed preset stays fast in tests.
fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = presets::rtx2080ti();
    cfg.num_sms = 4;
    cfg.memory.partitions = 4;
    cfg
}

fn run_with(
    cfg: &swiftsim_config::GpuConfig,
    fidelity: FidelityConfig,
    threads: usize,
    source: &dyn TraceSource,
) -> SimulationResult {
    swiftsim_core::run(
        source,
        cfg,
        &RunOptions::default()
            .with_fidelity(fidelity)
            .with_threads(threads),
    )
    .expect("differential run completes")
}

/// Assert the two results are statistically indistinguishable. The
/// `simulator`/`fidelity` fields legitimately differ (they name the skip
/// policy); wall time and profiling are measurement artifacts.
fn assert_stats_equal(dense: &SimulationResult, event: &SimulationResult, ctx: &str) {
    assert_eq!(dense.cycles, event.cycles, "{ctx}: total cycles");
    assert_eq!(dense.kernels, event.kernels, "{ctx}: per-kernel stats");
    assert_eq!(dense.metrics, event.metrics, "{ctx}: metrics");
    assert_eq!(
        dense.instructions(),
        event.instructions(),
        "{ctx}: instructions"
    );
}

fn preset_pair(preset: SimulatorPreset) -> (FidelityConfig, FidelityConfig) {
    let mut dense = FidelityConfig::for_preset(preset);
    dense.skip_policy = SkipPolicy::Dense;
    let mut event = dense;
    event.skip_policy = SkipPolicy::EventDriven;
    (dense, event)
}

#[test]
fn event_engine_matches_dense_on_all_presets_and_workloads() {
    let cfg = small_gpu();
    for w in swiftsim_workloads::suite() {
        let app = w.generate(Scale::Tiny);
        for preset in [
            SimulatorPreset::Detailed,
            SimulatorPreset::SwiftBasic,
            SimulatorPreset::SwiftMemory,
        ] {
            let (dense, event) = preset_pair(preset);
            assert_stats_equal(
                &run_with(&cfg, dense, 1, &app),
                &run_with(&cfg, event, 1, &app),
                &format!("{} under {preset:?}", w.name),
            );
        }
    }
}

#[test]
fn event_engine_matches_dense_across_trace_representations() {
    let dir = std::env::temp_dir().join(format!("swiftsim-equiv-sources-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let app = swiftsim_workloads::by_name("backprop")
        .expect("workload exists")
        .generate(Scale::Tiny);
    let text_path = dir.join("app.sstrace");
    let bin_path = dir.join("app.sstraceb");
    app.write_to_file(&text_path).expect("write text trace");
    app.write_binary_file(&bin_path)
        .expect("write binary trace");
    let text = TextTraceSource::open(&text_path).expect("open text trace");
    let chunked = ChunkedTraceSource::open(&bin_path).expect("open chunked trace");

    let cfg = small_gpu();
    let sources: [(&str, &dyn TraceSource); 3] =
        [("memory", &app), ("text", &text), ("chunked", &chunked)];
    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        let (dense, event) = preset_pair(preset);
        let reference = run_with(&cfg, dense, 1, &app);
        for (label, source) in sources {
            assert_stats_equal(
                &reference,
                &run_with(&cfg, event, 1, source),
                &format!("{label} source under {preset:?}"),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_engine_matches_dense_when_sharded() {
    let cfg = small_gpu();
    let app = swiftsim_workloads::by_name("hotspot")
        .expect("workload exists")
        .generate(Scale::Tiny);
    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        let (dense, event) = preset_pair(preset);
        for threads in [2usize, 4] {
            assert_stats_equal(
                &run_with(&cfg, dense, threads, &app),
                &run_with(&cfg, event, threads, &app),
                &format!("{preset:?} at {threads} threads"),
            );
        }
    }
}

/// The two-phase engine's headline contract: under the default per-cycle
/// quantum, a multi-threaded run is **bit-identical** to the
/// single-threaded engine — same cycles, same per-kernel stats, same
/// Metrics Gatherer counters — for every preset and thread count
/// (including uneven SM splits). Only `sim.threads` and the simulator
/// label legitimately differ; they are normalized before comparing.
#[test]
fn two_phase_parallel_matches_single_thread_bit_identically() {
    let cfg = small_gpu(); // 4 SMs: threads 3 exercises the uneven 2/1/1 split
    let app = swiftsim_workloads::by_name("hotspot")
        .expect("workload exists")
        .generate(Scale::Tiny);
    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        let (_, event) = preset_pair(preset);
        let mut reference = run_with(&cfg, event, 1, &app);
        reference.metrics.set("sim.threads", Value::Count(0));
        for threads in [2usize, 3, 4] {
            let mut sharded = run_with(&cfg, event, threads, &app);
            sharded.metrics.set("sim.threads", Value::Count(0));
            assert_stats_equal(
                &reference,
                &sharded,
                &format!("{preset:?} at {threads} threads vs single"),
            );
        }
    }
}

/// The bit-identity must also hold when the trace streams from disk and
/// under dense ticking (no event-driven jumps to hide behind).
#[test]
fn two_phase_parallel_matches_single_thread_across_sources_and_policies() {
    let dir = std::env::temp_dir().join(format!("swiftsim-equiv-twophase-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let app = swiftsim_workloads::by_name("backprop")
        .expect("workload exists")
        .generate(Scale::Tiny);
    let bin_path = dir.join("app.sstraceb");
    app.write_binary_file(&bin_path)
        .expect("write binary trace");
    let chunked = ChunkedTraceSource::open(&bin_path).expect("open chunked trace");

    let cfg = small_gpu();
    let (dense, event) = preset_pair(SimulatorPreset::SwiftBasic);
    for fidelity in [dense, event] {
        let mut reference = run_with(&cfg, fidelity, 1, &app);
        reference.metrics.set("sim.threads", Value::Count(0));
        let sources: [(&str, &dyn TraceSource); 2] = [("memory", &app), ("chunked", &chunked)];
        for (label, source) in sources {
            let mut sharded = run_with(&cfg, fidelity, 4, source);
            sharded.metrics.set("sim.threads", Value::Count(0));
            assert_stats_equal(
                &reference,
                &sharded,
                &format!(
                    "{label} source, {:?} policy, 4 threads",
                    fidelity.skip_policy
                ),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Relaxed quanta trade the bit-identity guarantee for fewer
/// synchronization barriers. They are explicit opt-in (the default is
/// per-cycle) and must stay *deterministic*: the same configuration run
/// twice produces the same statistics.
#[test]
fn relaxed_quantum_is_deterministic_and_opt_in() {
    assert_eq!(
        FidelityConfig::default().sync_quantum,
        SyncQuantum::PerCycle,
        "bit-identical per-cycle commit is the default"
    );
    let cfg = small_gpu();
    let app = swiftsim_workloads::by_name("bfs")
        .expect("workload exists")
        .generate(Scale::Tiny);
    let mut fid = FidelityConfig::for_preset(SimulatorPreset::SwiftBasic);
    fid.sync_quantum = SyncQuantum::Cycles(8);
    let a = run_with(&cfg, fid, 4, &app);
    let b = run_with(&cfg, fid, 4, &app);
    assert_stats_equal(&a, &b, "relaxed quantum, identical runs");
    assert!(
        a.simulator.contains("+sync_q8"),
        "relaxed quantum must be visible in the simulator label: {}",
        a.simulator
    );

    // The legacy decoupled-shard engine stays reachable behind the same
    // knob and is equally deterministic.
    fid.sync_quantum = SyncQuantum::Unsynchronized;
    let a = run_with(&cfg, fid, 2, &app);
    let b = run_with(&cfg, fid, 2, &app);
    assert_stats_equal(&a, &b, "unsynchronized legacy engine, identical runs");
    assert!(a.simulator.contains("+unsync"), "{}", a.simulator);
}

#[test]
fn event_engine_matches_dense_on_custom_hybrids() {
    // Mixes outside the preset table, including the reuse-distance memory
    // model and a cycle-accurate ALU over an analytical memory.
    let cfg = small_gpu();
    let app = swiftsim_workloads::by_name("srad")
        .expect("workload exists")
        .generate(Scale::Tiny);
    let mixes = [
        (AluModelKind::CycleAccurate, MemoryModelKind::Analytical),
        (
            AluModelKind::CycleAccurate,
            MemoryModelKind::AnalyticalReuse,
        ),
        (AluModelKind::Analytical, MemoryModelKind::AnalyticalReuse),
    ];
    for (alu, memory) in mixes {
        let mut dense = FidelityConfig::for_preset(SimulatorPreset::Detailed);
        dense.alu = alu;
        dense.memory = memory;
        dense.skip_policy = SkipPolicy::Dense;
        let mut event = dense;
        event.skip_policy = SkipPolicy::EventDriven;
        assert_stats_equal(
            &run_with(&cfg, dense, 1, &app),
            &run_with(&cfg, event, 1, &app),
            &format!("hybrid {alu:?}+{memory:?}"),
        );
    }
}

/// A deterministic hand-rolled config sweep: the proptest-based version
/// below explores further, but this one always runs, even offline.
#[test]
fn event_engine_matches_dense_under_config_perturbations() {
    let app = swiftsim_workloads::by_name("bfs")
        .expect("workload exists")
        .generate(Scale::Tiny);
    // A tiny xorshift so the perturbations are varied but reproducible.
    let mut state = 0x5eed_cafe_u64;
    let mut next = move |bound: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound
    };
    for round in 0..6 {
        let mut cfg = small_gpu();
        cfg.num_sms = 2 + next(3) as u32; // 2..=4
        cfg.sm.max_blocks = 4 + next(12) as u32;
        cfg.sm.scheduler = match next(3) {
            0 => swiftsim_config::SchedulerPolicy::Gto,
            1 => swiftsim_config::SchedulerPolicy::Lrr,
            _ => swiftsim_config::SchedulerPolicy::TwoLevel,
        };
        let preset = match next(3) {
            0 => SimulatorPreset::Detailed,
            1 => SimulatorPreset::SwiftBasic,
            _ => SimulatorPreset::SwiftMemory,
        };
        let (dense, event) = preset_pair(preset);
        assert_stats_equal(
            &run_with(&cfg, dense, 1, &app),
            &run_with(&cfg, event, 1, &app),
            &format!(
                "round {round}: {preset:?} sms={} blocks={} sched={:?}",
                cfg.num_sms, cfg.sm.max_blocks, cfg.sm.scheduler
            ),
        );
    }
}

#[test]
fn event_engine_is_the_default_everywhere() {
    // The speedup is on by default; Dense survives only as the
    // differential reference.
    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        assert_eq!(
            FidelityConfig::for_preset(preset).skip_policy,
            SkipPolicy::EventDriven,
            "{preset:?}"
        );
    }
    assert_eq!(
        FidelityConfig::default().skip_policy,
        SkipPolicy::EventDriven
    );
}

/// Randomized traces *and* configs, property-test style. Needs the external
/// `proptest` crate (not vendored in offline builds): enable the crate's
/// `proptest` feature after restoring the dev-dependency.
#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use proptest::prelude::*;
    use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};

    fn build_app(blocks: u32, warps: u32, bodies: &[Vec<(u8, u64)>]) -> ApplicationTrace {
        let mut kernel = KernelTrace::new("equiv", (blocks, 1, 1), (warps * 32, 1, 1));
        for b in 0..blocks {
            let block = kernel.push_block();
            for w in 0..warps {
                let body = &bodies[((b * warps + w) as usize) % bodies.len()];
                let warp = block.push_warp();
                for (i, &(op, seed)) in body.iter().enumerate() {
                    let pc = (i as u32) * 16;
                    let addr = (seed % (1 << 24)) & !0x7f;
                    let inst = match op {
                        0 => InstBuilder::new(Opcode::Ldg)
                            .pc(pc)
                            .dst(8 + (i % 6) as u16)
                            .src(2)
                            .global_strided(addr, 4, 4),
                        1 => InstBuilder::new(Opcode::Stg)
                            .pc(pc)
                            .src(8 + (i % 6) as u16)
                            .global_strided(addr | 0x4000_0000, 4, 4),
                        2 => InstBuilder::new(Opcode::Bar).pc(pc),
                        3 => InstBuilder::new(Opcode::Dfma).pc(pc).dst(22).src(22),
                        _ => InstBuilder::new(Opcode::Ffma).pc(pc).dst(26).src(26),
                    };
                    warp.push(inst);
                }
                warp.push(InstBuilder::new(Opcode::Exit).pc(body.len() as u32 * 16));
            }
        }
        ApplicationTrace::new("equiv", vec![kernel])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn random_configs_and_traces_are_skip_policy_invariant(
            blocks in 1u32..5,
            warps in 1u32..4,
            num_sms in 1u32..4,
            preset_sel in 0u8..3,
            bodies in prop::collection::vec(
                prop::collection::vec((0u8..5, any::<u64>()), 1..16),
                1..4,
            ),
        ) {
            let mut cfg = super::small_gpu();
            cfg.num_sms = num_sms;
            cfg.memory.partitions = num_sms;
            let preset = match preset_sel {
                0 => SimulatorPreset::Detailed,
                1 => SimulatorPreset::SwiftBasic,
                _ => SimulatorPreset::SwiftMemory,
            };
            let app = build_app(blocks, warps, &bodies);
            let (dense, event) = super::preset_pair(preset);
            let a = super::run_with(&cfg, dense, 1, &app);
            let b = super::run_with(&cfg, event, 1, &app);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(&a.kernels, &b.kernels);
            prop_assert_eq!(&a.metrics, &b.metrics);
        }

        /// Randomized synchronization quanta: per-cycle commits must stay
        /// bit-identical to single-threaded for any trace, and relaxed
        /// quanta must stay deterministic run-to-run.
        #[test]
        fn random_quanta_are_deterministic(
            quantum in 2u32..48,
            threads in 2usize..5,
            blocks in 1u32..5,
            warps in 1u32..4,
            bodies in prop::collection::vec(
                prop::collection::vec((0u8..5, any::<u64>()), 1..16),
                1..4,
            ),
        ) {
            let cfg = super::small_gpu(); // 4 SMs
            let threads = threads.min(4);
            let app = build_app(blocks, warps, &bodies);

            let mut per_cycle = FidelityConfig::for_preset(SimulatorPreset::SwiftBasic);
            per_cycle.sync_quantum = SyncQuantum::PerCycle;
            let mut reference = super::run_with(&cfg, per_cycle, 1, &app);
            let mut sharded = super::run_with(&cfg, per_cycle, threads, &app);
            reference.metrics.set("sim.threads", super::Value::Count(0));
            sharded.metrics.set("sim.threads", super::Value::Count(0));
            prop_assert_eq!(reference.cycles, sharded.cycles);
            prop_assert_eq!(&reference.kernels, &sharded.kernels);
            prop_assert_eq!(&reference.metrics, &sharded.metrics);

            let mut relaxed = per_cycle;
            relaxed.sync_quantum = SyncQuantum::Cycles(quantum);
            let a = super::run_with(&cfg, relaxed, threads, &app);
            let b = super::run_with(&cfg, relaxed, threads, &app);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(&a.kernels, &b.kernels);
            prop_assert_eq!(&a.metrics, &b.metrics);
        }
    }
}
