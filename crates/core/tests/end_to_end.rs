//! End-to-end tests: real synthetic workloads through all three simulator
//! presets, checking completion, determinism, and the qualitative
//! relationships the paper's evaluation depends on.

use swiftsim_config::presets;
use swiftsim_core::{RunOptions, SimulationResult, SimulatorPreset};
use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};
use swiftsim_workloads::Scale;

mod helpers {
    use super::*;

    /// A small config so detailed simulation stays fast in tests.
    pub fn small_gpu() -> swiftsim_config::GpuConfig {
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 4;
        cfg.memory.partitions = 4;
        cfg
    }

    pub fn run(preset: SimulatorPreset, app: &ApplicationTrace) -> SimulationResult {
        swiftsim_core::run(
            app,
            &small_gpu(),
            &RunOptions::default().with_preset(preset),
        )
        .expect("simulation completes")
    }
}
use helpers::{run, small_gpu};

fn tiny_app(name: &str) -> ApplicationTrace {
    swiftsim_workloads::suite()
        .into_iter()
        .find(|w| w.name == name)
        .expect("workload exists")
        .generate(Scale::Tiny)
}

#[test]
fn all_presets_complete_on_every_workload() {
    for w in swiftsim_workloads::suite() {
        let app = w.generate(Scale::Tiny);
        for preset in [
            SimulatorPreset::Detailed,
            SimulatorPreset::SwiftBasic,
            SimulatorPreset::SwiftMemory,
        ] {
            let r = run(preset, &app);
            assert!(r.cycles > 0, "{} under {preset:?}", w.name);
            assert_eq!(
                r.instructions(),
                app.num_insts(),
                "{} under {preset:?}: every traced instruction must issue",
                w.name
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let app = tiny_app("bfs");
    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        let a = run(preset, &app);
        let b = run(preset, &app);
        assert_eq!(a.cycles, b.cycles, "{preset:?}");
        assert_eq!(a.metrics, b.metrics, "{preset:?}");
    }
}

#[test]
fn hybrid_predictions_track_the_baseline() {
    // The paper's claim: simplified models cost only minor accuracy. At
    // tiny scale we just require the same order of magnitude.
    for name in ["nw", "gemm", "bfs"] {
        let app = tiny_app(name);
        let detailed = run(SimulatorPreset::Detailed, &app).cycles as f64;
        let basic = run(SimulatorPreset::SwiftBasic, &app).cycles as f64;
        let memory = run(SimulatorPreset::SwiftMemory, &app).cycles as f64;
        for (label, cycles) in [("basic", basic), ("memory", memory)] {
            let ratio = cycles / detailed;
            assert!(
                (0.2..5.0).contains(&ratio),
                "{name}: swift-{label} {cycles} vs detailed {detailed} (ratio {ratio:.2})"
            );
        }
    }
}

#[test]
fn parallel_simulation_matches_workload_and_finishes() {
    let app = tiny_app("hotspot");
    let single = swiftsim_core::run(
        &app,
        &small_gpu(),
        &RunOptions::default().with_preset(SimulatorPreset::SwiftMemory),
    )
    .expect("single-thread run");
    let parallel = swiftsim_core::run(
        &app,
        &small_gpu(),
        &RunOptions::default()
            .with_preset(SimulatorPreset::SwiftMemory)
            .with_threads(2),
    )
    .expect("parallel run");
    assert_eq!(parallel.instructions(), single.instructions());
    // Sharding is an approximation: cycle counts must stay in the same
    // ballpark as the single-threaded run.
    let ratio = parallel.cycles as f64 / single.cycles as f64;
    assert!((0.3..3.0).contains(&ratio), "ratio {ratio:.2}");
}

#[test]
fn kernels_serialize() {
    let app = tiny_app("backprop"); // two kernels
    let r = run(SimulatorPreset::SwiftBasic, &app);
    assert_eq!(r.kernels.len(), 2);
    let sum: u64 = r.kernels.iter().map(|k| k.cycles).sum();
    assert_eq!(sum, r.cycles, "total = sum of serialized kernels");
}

#[test]
fn metrics_gatherer_reports_core_counters() {
    let app = tiny_app("hotspot");
    let r = run(SimulatorPreset::Detailed, &app);
    assert_eq!(r.metrics.cycles("gpu.cycles"), Some(r.cycles));
    assert!(r.metrics.count("gpu.instructions").unwrap() > 0);
    assert!(r.metrics.count("mem.l1.misses").is_some());
    assert!(r.metrics.ratio("mem.l2.miss_rate").is_some());
    // hotspot uses shared memory with a conflict-free layout or conflicts;
    // either way the counter must exist.
    assert!(r.metrics.count("core.shared.bank_conflicts").is_some());
    // The detailed preset models frontend caches.
    assert!(r.metrics.count("core.icache.misses").unwrap() > 0);
}

#[test]
fn simplified_frontend_has_no_icache_misses() {
    let app = tiny_app("hotspot");
    let r = run(SimulatorPreset::SwiftBasic, &app);
    assert_eq!(r.metrics.count("core.icache.misses"), Some(0));
}

#[test]
fn dependent_instructions_respect_latency() {
    // One warp, one block: LDG -> FFMA (RAW) -> EXIT. The kernel cannot be
    // faster than the memory latency plus pipeline latencies.
    let cfg = small_gpu();
    let mut kernel = KernelTrace::new("dep", (1, 1, 1), (32, 1, 1));
    let b = kernel.push_block();
    let w = b.push_warp();
    w.push(
        InstBuilder::new(Opcode::Ldg)
            .pc(0)
            .dst(8)
            .src(1)
            .global_strided(0x100000, 4, 4),
    );
    w.push(InstBuilder::new(Opcode::Ffma).pc(16).dst(9).src(8).src(8));
    w.push(InstBuilder::new(Opcode::Exit).pc(32));
    let app = ApplicationTrace::new("dep", vec![kernel]);

    let r = run(SimulatorPreset::Detailed, &app);
    let floor = u64::from(cfg.memory.dram_latency);
    assert!(
        r.cycles > floor,
        "cold DRAM load must bound the critical path: {} <= {floor}",
        r.cycles
    );
}

#[test]
fn independent_warps_overlap() {
    // Many independent warps should take far less than warps * single-warp
    // time (latency hiding works).
    let make = |warps: u32| {
        let mut kernel = KernelTrace::new("overlap", (1, 1, 1), (32 * warps, 1, 1));
        let b = kernel.push_block();
        for wi in 0..warps {
            let w = b.push_warp();
            for i in 0..8u32 {
                w.push(
                    InstBuilder::new(Opcode::Ldg)
                        .pc(i * 16)
                        .dst(8 + i as u16 % 4)
                        .src(1)
                        .global_strided(u64::from(wi) * 0x100000 + u64::from(i) * 0x1000, 4, 4),
                );
            }
            w.push(InstBuilder::new(Opcode::Exit).pc(9 * 16));
        }
        ApplicationTrace::new("overlap", vec![kernel])
    };
    let one = run(SimulatorPreset::Detailed, &make(1)).cycles;
    let eight = run(SimulatorPreset::Detailed, &make(8)).cycles;
    assert!(
        eight < one * 4,
        "8 warps at {eight} cycles vs 1 warp at {one}: no latency hiding?"
    );
}

#[test]
fn barrier_synchronizes_block() {
    // Warp 0 does long work before the barrier; warp 1 almost none. Both
    // finish after the barrier, so total time tracks warp 0.
    let mut kernel = KernelTrace::new("bar", (1, 1, 1), (64, 1, 1));
    let b = kernel.push_block();
    {
        let w0 = b.push_warp();
        for i in 0..50u32 {
            w0.push(
                InstBuilder::new(Opcode::Ffma)
                    .pc(i * 16)
                    .dst(8)
                    .src(8)
                    .src(8),
            );
        }
        w0.push(InstBuilder::new(Opcode::Bar).pc(50 * 16));
        w0.push(InstBuilder::new(Opcode::Exit).pc(51 * 16));
    }
    {
        let w1 = b.push_warp();
        w1.push(InstBuilder::new(Opcode::Bar).pc(0));
        w1.push(InstBuilder::new(Opcode::Iadd).pc(16).dst(4).src(4));
        w1.push(InstBuilder::new(Opcode::Exit).pc(32));
    }
    let app = ApplicationTrace::new("bar", vec![kernel]);
    let r = run(SimulatorPreset::Detailed, &app);
    // Warp 0's 50 dependent FFMAs (latency 4) dominate: >= ~200 cycles.
    assert!(r.cycles >= 150, "barrier must delay warp 1: {}", r.cycles);
}

#[test]
fn inconsistent_trace_is_rejected() {
    let mut kernel = KernelTrace::new("bad", (4, 1, 1), (32, 1, 1));
    kernel.push_block(); // only 1 of 4 declared blocks traced
    let app = ApplicationTrace::new("bad", vec![kernel]);
    let err = swiftsim_core::run(
        &app,
        &small_gpu(),
        &RunOptions::default().with_preset(SimulatorPreset::SwiftMemory),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        swiftsim_core::SimError::InconsistentTrace { .. }
    ));
}

#[test]
fn oversized_block_is_rejected() {
    let mut kernel = KernelTrace::new("big", (1, 1, 1), (32, 1, 1));
    kernel.shared_mem_bytes = 10 * 1024 * 1024;
    let b = kernel.push_block();
    let w = b.push_warp();
    w.push(InstBuilder::new(Opcode::Exit).pc(0));
    let app = ApplicationTrace::new("big", vec![kernel]);
    let err = run_err(&app);
    assert!(matches!(err, swiftsim_core::SimError::BlockTooLarge { .. }));
}

fn run_err(app: &ApplicationTrace) -> swiftsim_core::SimError {
    swiftsim_core::run(
        app,
        &small_gpu(),
        &RunOptions::default().with_preset(SimulatorPreset::SwiftBasic),
    )
    .unwrap_err()
}

#[test]
fn mesh_topology_is_a_config_swap() {
    // §II-B: changing the NoC topology must not require remodeling — it is
    // one configuration field. The mesh's longer average path must not
    // make anything faster.
    let app = tiny_app("bfs");
    let crossbar = run(SimulatorPreset::SwiftBasic, &app).cycles;
    let mut gpu = small_gpu();
    gpu.noc.topology = swiftsim_config::NocTopology::Mesh;
    let mesh = swiftsim_core::run(
        &app,
        &gpu,
        &RunOptions::default().with_preset(SimulatorPreset::SwiftBasic),
    )
    .expect("mesh run")
    .cycles;
    assert!(
        mesh >= crossbar,
        "mesh {mesh} faster than crossbar {crossbar}?"
    );
}

#[test]
fn reuse_distance_model_tracks_funcsim_model() {
    // The two hit-rate sources the paper names must produce predictions in
    // the same ballpark.
    use swiftsim_core::MemoryModelKind;
    let app = tiny_app("kmeans");
    let funcsim = swiftsim_core::run(
        &app,
        &small_gpu(),
        &RunOptions::default().with_preset(SimulatorPreset::SwiftMemory),
    )
    .expect("funcsim-rates run");
    let mut reuse_options = RunOptions::default().with_preset(SimulatorPreset::SwiftMemory);
    reuse_options.fidelity.memory = MemoryModelKind::AnalyticalReuse;
    let reuse = swiftsim_core::run(&app, &small_gpu(), &reuse_options).expect("reuse-rates run");
    assert!(reuse.simulator.contains("analytical_memory_rd"));
    let ratio = reuse.cycles as f64 / funcsim.cycles as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "reuse-distance model {} vs funcsim model {} (ratio {ratio:.2})",
        reuse.cycles,
        funcsim.cycles
    );
}

#[test]
fn custom_hybrid_cycle_accurate_alu_over_analytical_memory() {
    // The builder supports mixes beyond the paper's presets (§III-B3: "the
    // architect can choose the modeling method per module").
    use swiftsim_core::{AluModelKind, MemoryModelKind, SkipPolicy};
    let app = tiny_app("srad");
    let mut options = RunOptions::default();
    options.fidelity.alu = AluModelKind::CycleAccurate;
    options.fidelity.memory = MemoryModelKind::Analytical;
    options.fidelity.skip_policy = SkipPolicy::EventDriven;
    let r = swiftsim_core::run(&app, &small_gpu(), &options).expect("custom hybrid run");
    assert_eq!(
        r.simulator,
        "cycle_accurate_alu+analytical_memory+detailed_frontend+event_driven"
    );
    assert_eq!(r.instructions(), app.num_insts());
}
