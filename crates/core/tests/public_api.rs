//! Public-API snapshot: the crate's exported surface, diffed against a
//! golden file so accidental API breaks fail CI instead of shipping.
//!
//! The snapshot is a textual inventory of every `pub` declaration in
//! `swiftsim-core`'s sources (module items and inherent/trait methods),
//! excluding `pub(crate)`/`pub(super)` internals and `#[cfg(test)]`
//! modules. It is deliberately source-derived — no nightly rustdoc JSON —
//! so it runs in the offline CI sandbox.
//!
//! When an API change is intentional, regenerate with:
//!
//! ```sh
//! UPDATE_PUBLIC_API=1 cargo test -p swiftsim-core --test public_api
//! git diff crates/core/tests/golden/public_api.txt  # review the delta
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/public_api.txt")
}

/// Collect the `pub` declaration lines of one source file, in order.
fn file_inventory(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read source file");
    let mut items = Vec::new();
    let mut depth_at_test_mod: Option<usize> = None;
    let mut depth = 0usize;
    let mut saw_cfg_test = false;

    for line in text.lines() {
        let trimmed = line.trim();

        // Track `#[cfg(test)] mod tests { ... }` and skip its contents.
        if trimmed.starts_with("#[cfg(test)]") {
            saw_cfg_test = true;
        } else if saw_cfg_test && trimmed.starts_with("mod ") {
            depth_at_test_mod = Some(depth);
            saw_cfg_test = false;
        } else if !trimmed.starts_with('#') {
            saw_cfg_test = false;
        }

        let in_test_mod = depth_at_test_mod.is_some();
        if !in_test_mod && trimmed.starts_with("pub ") && !trimmed.starts_with("pub(")
        // `pub use` inside private modules is plumbing, but at file
        // depth 0 in lib.rs it is the crate's re-export list: keep all.
        {
            // Normalize the declaration to its head: strip trailing body
            // opener and any `= ...;` initializer so the snapshot tracks
            // names and signatures, not implementations.
            let head = trimmed
                .split(" = ")
                .next()
                .unwrap_or(trimmed)
                .trim_end_matches('{')
                .trim_end_matches(';')
                .trim();
            items.push(head.to_owned());
        }

        depth += line.matches('{').count();
        depth = depth.saturating_sub(line.matches('}').count());
        if let Some(d) = depth_at_test_mod {
            if depth <= d {
                depth_at_test_mod = None;
            }
        }
    }
    items
}

fn current_inventory() -> String {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&src)
        .expect("list src dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();

    let mut out = String::new();
    for file in files {
        let items = file_inventory(&file);
        if items.is_empty() {
            continue;
        }
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        writeln!(out, "# {name}").unwrap();
        for item in items {
            writeln!(out, "{item}").unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[test]
fn public_api_matches_the_golden_snapshot() {
    let current = current_inventory();
    let path = golden_path();

    if std::env::var_os("UPDATE_PUBLIC_API").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("public API snapshot regenerated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_PUBLIC_API=1 to create it",
            path.display()
        )
    });
    if golden == current {
        return;
    }

    // Render a readable diff: lines present on only one side.
    let golden_lines: std::collections::BTreeSet<&str> = golden.lines().collect();
    let current_lines: std::collections::BTreeSet<&str> = current.lines().collect();
    let mut diff = String::new();
    for gone in golden_lines.difference(&current_lines) {
        writeln!(diff, "  - {gone}").unwrap();
    }
    for new in current_lines.difference(&golden_lines) {
        writeln!(diff, "  + {new}").unwrap();
    }
    panic!(
        "swiftsim-core's public API no longer matches tests/golden/public_api.txt.\n\
         If this change is intentional, regenerate the snapshot with\n\
         `UPDATE_PUBLIC_API=1 cargo test -p swiftsim-core --test public_api`\n\
         and commit the diff. Changes:\n{diff}"
    );
}

/// The exported names the rest of the workspace builds on; if one of these
/// stops compiling, the snapshot above will usually have caught the rename,
/// but this makes the contract explicit at the type level.
#[test]
fn load_bearing_exports_exist() {
    #[allow(unused_imports)]
    use swiftsim_core::{
        alu::AluModel, panic_message, AluModelKind, BlockScheduler, CheckpointOptions, Confidence,
        Cycle, FidelityConfig, FrontendModelKind, GpuSimulator, GtoScheduler, KernelResult,
        LrrScheduler, MemReply, MemoryModelKind, MemorySystem, Occupancy, RunOptions,
        SamplingPolicy, Scoreboard, SimError, SimulationResult, SimulatorPreset, SkipPolicy,
        Snapshot, StatId, StatUnit, TraceInput, TwoLevelScheduler, UnknownStat,
        WarpSchedulerPolicy, WarpView, RESULT_SCHEMA_VERSION,
    };
    let _ = swiftsim_core::max_threads();
}
