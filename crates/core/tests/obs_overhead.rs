//! The observability machinery must be free when it is off.
//!
//! Tier-1 runs (plain `swiftsim`, campaigns without `--profile`, serve
//! daemons without `--trace-out`) leave the self-profiler and the flight
//! recorder disabled; this suite pins down that the disabled path really
//! is the do-nothing path: no profile attached to results, no events
//! buffered, no field construction, and no measurable slowdown relative
//! to the instrumented run that does strictly more work.

use std::time::{Duration, Instant};

use swiftsim_config::presets;
use swiftsim_core::{GpuSimulator, RunOptions, SimulatorPreset};
use swiftsim_metrics::{FlightRecorder, Json};
use swiftsim_workloads::Scale;

fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = presets::rtx2080ti();
    cfg.num_sms = 4;
    cfg.memory.partitions = 4;
    cfg
}

fn app() -> swiftsim_trace::ApplicationTrace {
    swiftsim_workloads::by_name("backprop")
        .expect("workload exists")
        .generate(Scale::Tiny)
}

fn timed_run(profile: bool, app: &swiftsim_trace::ApplicationTrace) -> (Duration, bool) {
    let sim = GpuSimulator::try_new(
        small_gpu(),
        &RunOptions::default()
            .with_preset(SimulatorPreset::SwiftMemory)
            .with_profile(profile),
    )
    .expect("valid config");
    let start = Instant::now();
    let result = sim.run(app).expect("run succeeds");
    (start.elapsed(), result.profile.is_some())
}

#[test]
fn disabled_profiler_attaches_nothing_and_costs_nothing() {
    let app = app();

    // Warm up (page cache, lazy statics) so the timed runs are comparable.
    let _ = timed_run(false, &app);

    // Median of several runs each way; the disabled path must not be
    // slower than the instrumented path, which does strictly more work.
    // The generous factor absorbs scheduler noise on loaded CI machines —
    // this is a regression tripwire for accidental always-on
    // instrumentation, not a microbenchmark.
    let mut off = Vec::new();
    let mut on = Vec::new();
    for _ in 0..5 {
        let (t_off, has_profile) = timed_run(false, &app);
        assert!(!has_profile, "default run must not carry a profile");
        off.push(t_off);
        let (t_on, has_profile) = timed_run(true, &app);
        assert!(has_profile, "profiled run must carry a profile");
        on.push(t_on);
    }
    off.sort_unstable();
    on.sort_unstable();
    let (off_med, on_med) = (off[off.len() / 2], on[on.len() / 2]);
    assert!(
        off_med.as_secs_f64() <= on_med.as_secs_f64() * 1.5 + 0.05,
        "disabled-profiler run ({off_med:?}) measurably slower than \
         instrumented run ({on_med:?})"
    );
}

#[test]
fn disabled_flight_recorder_buffers_nothing_and_skips_field_construction() {
    let rec = FlightRecorder::disabled();
    assert!(!rec.is_enabled());

    let mut built = 0u64;
    let start = Instant::now();
    for _ in 0..1_000_000 {
        rec.record_with("tick", || {
            built += 1;
            vec![("x".to_owned(), Json::int(1))]
        });
    }
    let elapsed = start.elapsed();

    assert_eq!(built, 0, "disabled recorder must never build event fields");
    assert_eq!(rec.len(), 0);
    assert_eq!(rec.dropped(), 0);
    assert!(rec.snapshot().is_empty());
    assert_eq!(rec.dump_jsonl(), "");
    // A million no-op records should be effectively instant; this bound is
    // three orders of magnitude above the expected cost.
    assert!(
        elapsed < Duration::from_secs(2),
        "disabled recorder too slow: {elapsed:?}"
    );
}
