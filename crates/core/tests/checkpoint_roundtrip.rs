//! Checkpoint/resume round-trip suite.
//!
//! A run halted at a kernel boundary and resumed from its snapshot must be
//! **bit-identical** to the same run left uninterrupted — cycles,
//! per-kernel results, and every metric — at every boundary, under every
//! preset, from every trace representation, and at every thread count the
//! two-phase engine supports. Plus the failure paths: truncated or
//! bit-flipped snapshots must be rejected as [`SimError::Checkpoint`], and
//! a snapshot must refuse to resume a run whose identity (fidelity, thread
//! count) differs from the one that took it.

use swiftsim_config::presets;
use swiftsim_core::{run, RunOptions, SimError, SimulationResult, SimulatorPreset, Snapshot};
use swiftsim_trace::{ApplicationTrace, ChunkedTraceSource, TextTraceSource};

/// A small config so the detailed presets stay fast in tests.
fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = presets::rtx2080ti();
    cfg.num_sms = 4;
    cfg.memory.partitions = 4;
    cfg
}

/// A fresh scratch directory per call; unique across concurrently running
/// test binaries.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swiftsim-ckpt-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// An eight-kernel app with all five memory patterns, so snapshots carry
/// non-trivial cache and DRAM state across every boundary.
fn app(target_insts: u64) -> ApplicationTrace {
    swiftsim_workloads::ingest_stress_app(target_insts)
}

fn assert_bit_identical(resumed: &SimulationResult, fresh: &SimulationResult, what: &str) {
    assert_eq!(resumed.cycles, fresh.cycles, "{what}: cycles");
    assert_eq!(resumed.kernels, fresh.kernels, "{what}: per-kernel results");
    assert_eq!(resumed.metrics, fresh.metrics, "{what}: metrics");
}

/// Halt `options` after `halt` kernels (writing a snapshot), then resume
/// from the snapshot and return the completed result. Asserts the partial
/// result covers exactly the halted prefix.
fn halt_and_resume(
    app: &ApplicationTrace,
    options: &RunOptions,
    halt: usize,
    snap_path: &std::path::Path,
    what: &str,
) -> SimulationResult {
    let gpu = small_gpu();
    let halted = options
        .clone()
        .with_checkpoint_out(snap_path)
        .with_halt_after(halt);
    let partial = run(app, &gpu, &halted).expect("halted run");
    assert_eq!(
        partial.kernels.len(),
        halt,
        "{what}: the partial result covers the simulated prefix"
    );
    let snap = Snapshot::read_from(snap_path).expect("snapshot parses");
    assert_eq!(snap.next_kernel(), halt, "{what}: snapshot boundary");
    assert_eq!(snap.cycle(), partial.cycles, "{what}: snapshot clock");

    let resumed = options.clone().with_resume(snap_path);
    run(app, &gpu, &resumed).expect("resumed run")
}

#[test]
fn every_kernel_boundary_resumes_bit_identically() {
    let dir = scratch("boundaries");
    let app = app(16_000);
    let total = app.kernels().len();
    assert_eq!(total, 8, "the suite assumes the eight-kernel stress app");

    let options = RunOptions::default().with_preset(SimulatorPreset::SwiftMemory);
    let fresh = run(&app, &small_gpu(), &options).expect("uninterrupted run");
    assert_eq!(fresh.kernels.len(), total);

    for halt in 1..total {
        let snap_path = dir.join(format!("boundary{halt}.sstbckpt"));
        let resumed = halt_and_resume(&app, &options, halt, &snap_path, "boundary");
        assert_bit_identical(&resumed, &fresh, &format!("halt after kernel {halt}"));
        // The partial prefix itself must match the fresh run's prefix.
        assert_eq!(
            &resumed.kernels[..halt],
            &fresh.kernels[..halt],
            "prefix at halt {halt}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_presets_and_thread_counts_resume_bit_identically() {
    let dir = scratch("presets");
    let app = app(8_000);

    for preset in [
        SimulatorPreset::Detailed,
        SimulatorPreset::SwiftBasic,
        SimulatorPreset::SwiftMemory,
    ] {
        for threads in [1usize, 2, 4] {
            let options = RunOptions::default()
                .with_preset(preset)
                .with_threads(threads);
            let fresh = run(&app, &small_gpu(), &options).expect("uninterrupted run");
            let snap_path = dir.join(format!("{preset:?}-t{threads}.sstbckpt"));
            let resumed = halt_and_resume(
                &app,
                &options,
                3,
                &snap_path,
                &format!("{preset:?} t{threads}"),
            );
            assert_bit_identical(
                &resumed,
                &fresh,
                &format!("{preset:?} at {threads} threads"),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_backed_sources_resume_bit_identically() {
    let dir = scratch("sources");
    let app = app(16_000);
    let text_path = dir.join("app.sstrace");
    let bin_path = dir.join("app.sstraceb");
    app.write_to_file(&text_path).expect("write text trace");
    app.write_binary_file(&bin_path)
        .expect("write binary trace");

    let options = RunOptions::default().with_preset(SimulatorPreset::SwiftMemory);
    let fresh = run(&app, &small_gpu(), &options).expect("in-memory baseline");

    // Halt and resume through each file-backed representation; every path
    // must land exactly on the in-memory baseline.
    let text = TextTraceSource::open(&text_path).expect("open text trace");
    let snap_path = dir.join("text.sstbckpt");
    let gpu = small_gpu();
    let halted = options
        .clone()
        .with_checkpoint_out(&snap_path)
        .with_halt_after(3);
    run(&text, &gpu, &halted).expect("halted text run");
    let resumed = run(&text, &gpu, &options.clone().with_resume(&snap_path)).expect("text resume");
    assert_bit_identical(&resumed, &fresh, "text source");

    let chunked = ChunkedTraceSource::open(&bin_path).expect("open chunked trace");
    let snap_path = dir.join("chunked.sstbckpt");
    let halted = options
        .clone()
        .with_checkpoint_out(&snap_path)
        .with_halt_after(5);
    run(&chunked, &gpu, &halted).expect("halted chunked run");
    let resumed =
        run(&chunked, &gpu, &options.clone().with_resume(&snap_path)).expect("chunked resume");
    assert_bit_identical(&resumed, &fresh, "chunked source");

    // Snapshots carry the trace content hash, so a snapshot taken from one
    // representation resumes from another: same content, same identity.
    let snap_path = dir.join("cross.sstbckpt");
    let halted = options
        .clone()
        .with_checkpoint_out(&snap_path)
        .with_halt_after(4);
    run(&app, &gpu, &halted).expect("halted in-memory run");
    let resumed =
        run(&chunked, &gpu, &options.clone().with_resume(&snap_path)).expect("cross resume");
    assert_bit_identical(&resumed, &fresh, "memory snapshot resumed via chunked");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_snapshots_are_rejected() {
    let dir = scratch("trunc");
    let app = app(16_000);
    let snap_path = dir.join("full.sstbckpt");
    let options = RunOptions::default()
        .with_preset(SimulatorPreset::SwiftMemory)
        .with_checkpoint_out(&snap_path)
        .with_halt_after(3);
    run(&app, &small_gpu(), &options).expect("halted run");
    let text = std::fs::read_to_string(&snap_path).expect("snapshot text");

    // Cut mid-payload, mid-hash, and mid-magic: every truncation must be
    // detected at parse time and surface as a checkpoint error on resume.
    for cut in [text.len() - 2, text.len() / 2, text.len() / 8, 5] {
        let path = dir.join(format!("cut{cut}.sstbckpt"));
        std::fs::write(&path, &text[..cut]).unwrap();
        assert!(
            matches!(Snapshot::read_from(&path), Err(SimError::Checkpoint { .. })),
            "truncation at {cut}/{} must be rejected",
            text.len()
        );
        let resume = RunOptions::default()
            .with_preset(SimulatorPreset::SwiftMemory)
            .with_resume(&path);
        let err = run(&app, &small_gpu(), &resume).expect_err("resume from truncated snapshot");
        assert!(
            matches!(err, SimError::Checkpoint { .. }),
            "unexpected error at cut {cut}: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_snapshots_are_rejected() {
    let dir = scratch("flip");
    let app = app(16_000);
    let snap_path = dir.join("full.sstbckpt");
    let options = RunOptions::default()
        .with_preset(SimulatorPreset::SwiftMemory)
        .with_checkpoint_out(&snap_path)
        .with_halt_after(3);
    run(&app, &small_gpu(), &options).expect("halted run");
    let text = std::fs::read_to_string(&snap_path).expect("snapshot text");

    // Flip one hex digit deep inside the payload line (the memory section's
    // word stream): the whole-payload hash must catch it.
    let payload_start = text.match_indices('\n').nth(1).unwrap().0 + 1;
    let payload = &text[payload_start..];
    let flip_rel = payload
        .char_indices()
        .filter(|(i, c)| *i > payload.len() / 2 && ('0'..='8').contains(c))
        .map(|(i, _)| i)
        .next()
        .expect("payload has a flippable hex digit");
    let mut bytes = text.clone().into_bytes();
    bytes[payload_start + flip_rel] = b'9';
    let flipped_path = dir.join("flipped.sstbckpt");
    std::fs::write(&flipped_path, bytes).unwrap();

    let err = Snapshot::read_from(&flipped_path).expect_err("flipped snapshot must not parse");
    assert!(
        matches!(err, SimError::Checkpoint { .. }),
        "unexpected error: {err}"
    );
    let resume = RunOptions::default()
        .with_preset(SimulatorPreset::SwiftMemory)
        .with_resume(&flipped_path);
    let err = run(&app, &small_gpu(), &resume).expect_err("resume from flipped snapshot");
    assert!(
        matches!(err, SimError::Checkpoint { .. }),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identity_mismatches_refuse_to_resume() {
    let dir = scratch("identity");
    let app = app(16_000);
    let snap_path = dir.join("swift-memory.sstbckpt");
    let options = RunOptions::default()
        .with_preset(SimulatorPreset::SwiftMemory)
        .with_checkpoint_out(&snap_path)
        .with_halt_after(3);
    run(&app, &small_gpu(), &options).expect("halted run");

    let expect_checkpoint_err = |options: &RunOptions, what: &str| {
        let err = run(&app, &small_gpu(), options).expect_err(what);
        assert!(
            matches!(err, SimError::Checkpoint { .. }),
            "{what}: unexpected error {err}"
        );
        err.to_string()
    };

    // Different fidelity: the snapshot's measurements came from other
    // models, so resuming under them cannot be bit-identical.
    let err = expect_checkpoint_err(
        &RunOptions::default()
            .with_preset(SimulatorPreset::SwiftBasic)
            .with_resume(&snap_path),
        "resume under a different preset",
    );
    assert!(err.contains("fidelity"), "{err}");

    // Different thread count: shard grouping differs.
    let err = expect_checkpoint_err(
        &RunOptions::default()
            .with_preset(SimulatorPreset::SwiftMemory)
            .with_threads(2)
            .with_resume(&snap_path),
        "resume at a different thread count",
    );
    assert!(err.contains("thread count"), "{err}");

    // Different trace: the snapshot names another application's content.
    let other = app.clone(); // same kernels, different app name
    let other = ApplicationTrace::new("other_app", other.kernels().to_vec());
    let resume = RunOptions::default()
        .with_preset(SimulatorPreset::SwiftMemory)
        .with_resume(&snap_path);
    let err = run(&other, &small_gpu(), &resume).expect_err("resume with a different trace");
    assert!(
        matches!(err, SimError::Checkpoint { .. }) && err.to_string().contains("application"),
        "{err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
