//! Kernel-level sampling accuracy: a sampled run's predicted cycles must
//! stay within the error bound it reports.
//!
//! The workload is the interesting case for sampling — an iterative app
//! that launches the *same* kernels over and over (the training-loop shape
//! §III motivates sampling with). Repeated launches share a `KernelMeta`
//! cluster, so `cluster:N` simulates the first N instances of each cluster
//! in detail and replays the rest, and the `confidence` block quantifies
//! the replay error. Ground truth is the identical run with sampling off.

use swiftsim_config::presets;
use swiftsim_core::{run, RunOptions, SamplingPolicy, SimulatorPreset};
use swiftsim_trace::ApplicationTrace;
use swiftsim_workloads::{MemPattern, Mix, PatternKernel, Scale};

fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = presets::rtx2080ti();
    cfg.num_sms = 4;
    cfg.memory.partitions = 4;
    cfg
}

/// An iterative application: `iters` identical launches of a compute
/// kernel interleaved with `iters` identical launches of a memory-heavy
/// kernel — two clusters, many repeats each.
fn iterative_app(iters: usize) -> ApplicationTrace {
    let compute = PatternKernel {
        name: "train_step".to_owned(),
        blocks: 16,
        threads_per_block: 128,
        iters: 6,
        mix: Mix {
            loads: 1,
            stores: 1,
            fp: 6,
            int_ops: 2,
            ..Mix::default()
        },
        pattern: MemPattern::Streaming,
        shared_mem_bytes: 0,
        regs_per_thread: 32,
        barrier: false,
    }
    .generate(Scale::Tiny);
    let reduce = PatternKernel {
        name: "grad_reduce".to_owned(),
        blocks: 8,
        threads_per_block: 128,
        iters: 4,
        mix: Mix {
            loads: 3,
            stores: 1,
            int_ops: 2,
            ..Mix::default()
        },
        pattern: MemPattern::Strided { lane_stride: 128 },
        shared_mem_bytes: 0,
        regs_per_thread: 32,
        barrier: false,
    }
    .generate(Scale::Tiny);

    let mut kernels = Vec::with_capacity(iters * 2);
    for _ in 0..iters {
        kernels.push(compute.clone());
        kernels.push(reduce.clone());
    }
    ApplicationTrace::new("train_loop", kernels)
}

#[test]
fn sampled_error_stays_within_the_reported_bound() {
    let app = iterative_app(10); // 20 launches, 2 clusters
    let gpu = small_gpu();

    for preset in [SimulatorPreset::SwiftBasic, SimulatorPreset::SwiftMemory] {
        let exact =
            run(&app, &gpu, &RunOptions::default().with_preset(preset)).expect("ground-truth run");
        assert!(
            exact.confidence.is_none(),
            "no confidence block when sampling is off"
        );

        let sampled = run(
            &app,
            &gpu,
            &RunOptions::default()
                .with_preset(preset)
                .with_sampling(SamplingPolicy::KernelCluster { reps: 2 }),
        )
        .expect("sampled run");
        let conf = sampled
            .confidence
            .as_ref()
            .expect("sampled runs report confidence");

        assert_eq!(conf.clusters, 2, "two distinct launch shapes");
        assert_eq!(conf.sampled_kernels, 4, "2 reps x 2 clusters in detail");
        assert_eq!(conf.replayed_kernels, 16, "the other 16 launches replay");
        assert_eq!(conf.kernel_error_bounds.len(), sampled.kernels.len());
        assert!(conf.replayed_cycles > 0);
        assert!(
            conf.app_error_bound >= 0.0 && conf.app_error_bound < 1.0,
            "bound {} out of range",
            conf.app_error_bound
        );

        let rel_error = (sampled.cycles as f64 - exact.cycles as f64).abs() / exact.cycles as f64;
        assert!(
            rel_error <= conf.app_error_bound + 1e-9,
            "{preset:?}: sampled {} vs exact {} is {:.4} relative error, \
             above the reported bound {:.4}",
            sampled.cycles,
            exact.cycles,
            rel_error,
            conf.app_error_bound
        );

        // Replays never decode the trace, but the per-kernel results still
        // name every launch in order.
        assert_eq!(sampled.kernels.len(), exact.kernels.len());
        for (s, e) in sampled.kernels.iter().zip(&exact.kernels) {
            assert_eq!(s.name, e.name, "launch order is preserved");
        }
        // Instruction counts are exact under replay: every instance of a
        // cluster carries the same trace body.
        assert_eq!(
            sampled.instructions(),
            exact.instructions(),
            "{preset:?}: replayed instruction counts"
        );
    }
}

#[test]
fn singleton_clusters_fall_back_to_the_error_floor() {
    // Every kernel distinct: sampling finds no repeats, everything is a
    // representative, nothing replays, and the result is exact.
    let app = swiftsim_workloads::ingest_stress_app(8_000);
    let gpu = small_gpu();
    let exact = run(
        &app,
        &gpu,
        &RunOptions::default().with_preset(SimulatorPreset::SwiftMemory),
    )
    .expect("exact run");
    let sampled = run(
        &app,
        &gpu,
        &RunOptions::default()
            .with_preset(SimulatorPreset::SwiftMemory)
            .with_sampling(SamplingPolicy::KernelCluster { reps: 1 }),
    )
    .expect("sampled run");
    let conf = sampled.confidence.as_ref().expect("confidence present");
    assert_eq!(conf.clusters, 8, "eight distinct kernels, eight clusters");
    assert_eq!(conf.replayed_kernels, 0, "nothing to replay");
    assert_eq!(conf.app_error_bound, 0.0, "no replayed cycles, no error");
    assert_eq!(sampled.cycles, exact.cycles, "all-detailed run is exact");
    assert_eq!(sampled.kernels, exact.kernels);
}

#[test]
fn sampling_survives_a_checkpoint_resume_cycle() {
    // A sampled run halted mid-app and resumed must reproduce the
    // uninterrupted sampled run exactly — the snapshot carries the
    // sampler's measurements, so replays after the boundary use the same
    // representative means.
    let dir = std::env::temp_dir().join(format!("swiftsim-sampling-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let snap_path = dir.join("sampled.sstbckpt");

    let app = iterative_app(8); // 16 launches
    let gpu = small_gpu();
    let options = RunOptions::default()
        .with_preset(SimulatorPreset::SwiftMemory)
        .with_sampling(SamplingPolicy::KernelCluster { reps: 2 });

    let fresh = run(&app, &gpu, &options).expect("uninterrupted sampled run");
    let halted = options
        .clone()
        .with_checkpoint_out(&snap_path)
        .with_halt_after(6);
    let partial = run(&app, &gpu, &halted).expect("halted sampled run");
    assert_eq!(partial.kernels.len(), 6);

    let resumed =
        run(&app, &gpu, &options.clone().with_resume(&snap_path)).expect("resumed sampled run");
    assert_eq!(resumed.cycles, fresh.cycles, "cycles");
    assert_eq!(resumed.kernels, fresh.kernels, "per-kernel results");
    assert_eq!(resumed.metrics, fresh.metrics, "metrics");
    assert_eq!(
        resumed.confidence, fresh.confidence,
        "the confidence block survives resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
