// The property-based suite needs the external `proptest` crate, which is
// unavailable in offline builds. Enable the crate's non-default `proptest`
// feature (after restoring the dev-dependency in Cargo.toml and the
// workspace manifest) to run it.
#![cfg(feature = "proptest")]

//! Property-based tests for the framework's scheduling and analytical
//! model invariants.

use proptest::prelude::*;
use swiftsim_config::presets;
use swiftsim_core::mem_system::{AnalyticalMemory, LatencyTerms, MemReply, MemorySystem};
use swiftsim_core::{
    BlockScheduler, GtoScheduler, LrrScheduler, TwoLevelScheduler, WarpSchedulerPolicy, WarpView,
};
use swiftsim_mem::{MemTxn, PcHitRates};

fn arb_views() -> impl Strategy<Value = Vec<WarpView>> {
    prop::collection::vec((any::<bool>(), 0u64..16), 0..12).prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(id, (ready, age))| WarpView { id, ready, age })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every policy only ever picks a ready warp, and picks one whenever
    /// any warp is ready.
    #[test]
    fn schedulers_pick_only_ready_warps(
        rounds in prop::collection::vec(arb_views(), 1..20),
    ) {
        let mut policies: Vec<Box<dyn WarpSchedulerPolicy>> = vec![
            Box::new(GtoScheduler::new()),
            Box::new(LrrScheduler::new()),
            Box::new(TwoLevelScheduler::new(4)),
        ];
        for policy in &mut policies {
            for (now, views) in rounds.iter().enumerate() {
                let pick = policy.pick(views, now as u64);
                let any_ready = views.iter().any(|v| v.ready);
                match pick {
                    Some(id) => {
                        let v = views.iter().find(|v| v.id == id);
                        prop_assert!(
                            v.is_some_and(|v| v.ready),
                            "{} picked non-ready warp {id}",
                            policy.name()
                        );
                    }
                    None => prop_assert!(
                        !any_ready,
                        "{} refused to pick despite ready warps",
                        policy.name()
                    ),
                }
            }
        }
    }

    /// Block scheduler conservation: every block is dispatched exactly
    /// once, per-SM occupancy never exceeds the limit, and completion
    /// reaches all_done exactly at the end.
    #[test]
    fn block_scheduler_conserves_blocks(
        num_sms in 1usize..8,
        total in 0usize..40,
        per_sm in 1u32..5,
        order in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut bs = BlockScheduler::new(num_sms, total, per_sm);
        let mut running: Vec<Vec<usize>> = vec![Vec::new(); num_sms];
        let mut dispatched = std::collections::HashSet::new();
        let mut completed = 0usize;

        for step in order {
            let sm = usize::from(step) % num_sms;
            if step % 2 == 0 {
                if let Some(b) = bs.dispatch(sm) {
                    prop_assert!(dispatched.insert(b), "block {b} dispatched twice");
                    running[sm].push(b);
                    prop_assert!(running[sm].len() as u32 <= per_sm);
                }
            } else if let Some(_b) = running[sm].pop() {
                bs.complete(sm);
                completed += 1;
            }
        }
        // Drain everything.
        loop {
            let mut progressed = false;
            for sm in 0..num_sms {
                if let Some(b) = bs.dispatch(sm) {
                    prop_assert!(dispatched.insert(b));
                    running[sm].push(b);
                    progressed = true;
                }
                if let Some(_b) = running[sm].pop() {
                    bs.complete(sm);
                    completed += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        prop_assert_eq!(dispatched.len(), total);
        prop_assert_eq!(completed, total);
        prop_assert!(bs.all_done());
    }

    /// Eq. 1 sanity: the expected latency is a convex combination of the
    /// level latencies, so it lies between L_L1 and L_DRAM and is monotone
    /// in the DRAM fraction.
    #[test]
    fn eq1_latency_is_bounded_and_monotone(l1 in 0.0f64..1.0, l2_frac in 0.0f64..1.0) {
        let terms = LatencyTerms::from_config(&presets::rtx2080ti());
        let l2 = (1.0 - l1) * l2_frac;
        let dram = 1.0 - l1 - l2;
        let r = PcHitRates { l1, l2, dram };
        let lat = terms.expected_latency(r);
        prop_assert!(lat >= terms.l1 - 1e-9);
        prop_assert!(lat <= terms.dram + 1e-9);

        // Shifting mass from L1 to DRAM cannot reduce latency.
        if l1 >= 0.1 {
            let worse = PcHitRates { l1: l1 - 0.1, l2, dram: dram + 0.1 };
            prop_assert!(terms.expected_latency(worse) >= lat - 1e-9);
        }
    }

    /// The analytical memory model never completes before its uncontended
    /// latency and never travels back in time.
    #[test]
    fn analytical_memory_latency_floor(
        accesses in prop::collection::vec((0u32..8, 0u64..64, any::<bool>()), 1..100),
    ) {
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 4;
        let mut table = std::collections::HashMap::new();
        for pc in 0..8u32 {
            table.insert(pc, PcHitRates { l1: 0.5, l2: 0.25, dram: 0.25 });
        }
        let mut mem = AnalyticalMemory::new(&cfg, &table);
        let mut now = 0u64;
        for (pc, gap, write) in accesses {
            now += gap;
            let txn = MemTxn { line_addr: u64::from(pc) * 0x80, sector_mask: 1, write };
            let MemReply::Done(done) = mem.access(0, pc, &[txn], now) else {
                prop_assert!(false, "analytical model must reply synchronously");
                return Ok(());
            };
            let floor = now + mem.latency_of(pc).round() as u64;
            prop_assert!(done >= floor, "done {done} below floor {floor}");
        }
    }
}

/// Engine torture test: random (but well-formed) traces must complete on
/// every preset with all instructions issued, deterministically.
mod random_traces {
    use proptest::prelude::*;
    use swiftsim_core::{GpuSimulator, RunOptions, SimulatorPreset};
    use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode, WarpTrace};

    fn arb_warp_body() -> impl Strategy<Value = Vec<(u8, u64)>> {
        // (opcode selector, address seed) pairs.
        prop::collection::vec((0u8..10, any::<u64>()), 1..24)
    }

    fn build_app(blocks: u32, warps: u32, bodies: Vec<Vec<(u8, u64)>>) -> ApplicationTrace {
        let mut kernel = KernelTrace::new("torture", (blocks, 1, 1), (warps * 32, 1, 1));
        for b in 0..blocks {
            let block = kernel.push_block();
            for w in 0..warps {
                let body = &bodies[((b * warps + w) as usize) % bodies.len()];
                let mut warp = WarpTrace::new();
                for (i, &(op, seed)) in body.iter().enumerate() {
                    let pc = (i as u32) * 16;
                    let addr = (seed % (1 << 24)) & !0x7f;
                    let inst = match op {
                        0 => InstBuilder::new(Opcode::Ldg)
                            .pc(pc)
                            .dst(8 + (i % 6) as u16)
                            .src(2)
                            .global_strided(addr, 4, 4),
                        1 => InstBuilder::new(Opcode::Stg)
                            .pc(pc)
                            .src(8 + (i % 6) as u16)
                            .global_strided(addr | 0x4000_0000, 4, 4),
                        2 => InstBuilder::new(Opcode::Lds)
                            .pc(pc)
                            .dst(16)
                            .src(2)
                            .global_strided(addr % 4096, 4, 4),
                        3 => InstBuilder::new(Opcode::Bar).pc(pc),
                        4 => InstBuilder::new(Opcode::Mufu).pc(pc).dst(20).src(20),
                        5 => InstBuilder::new(Opcode::Dfma).pc(pc).dst(22).src(22),
                        6 => InstBuilder::new(Opcode::Hmma).pc(pc).dst(24).src(24),
                        7 => InstBuilder::new(Opcode::Bra).pc(pc).src(7),
                        8 => InstBuilder::new(Opcode::Ffma)
                            .pc(pc)
                            .dst(26)
                            .src(8 + (i % 6) as u16)
                            .src(26),
                        _ => InstBuilder::new(Opcode::Iadd).pc(pc).dst(4).src(4),
                    };
                    warp.push(inst);
                }
                warp.push(InstBuilder::new(Opcode::Exit).pc(body.len() as u32 * 16));
                *block.push_warp() = warp;
            }
        }
        ApplicationTrace::new("torture", vec![kernel])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn random_traces_complete_on_all_presets(
            blocks in 1u32..5,
            warps in 1u32..4,
            bodies in prop::collection::vec(arb_warp_body(), 1..4),
        ) {
            let mut cfg = swiftsim_config::presets::rtx2080ti();
            cfg.num_sms = 2;
            cfg.memory.partitions = 2;
            let app = build_app(blocks, warps, bodies);
            for preset in [
                SimulatorPreset::Detailed,
                SimulatorPreset::SwiftBasic,
                SimulatorPreset::SwiftMemory,
            ] {
                let sim = GpuSimulator::try_new(
                    cfg.clone(),
                    &RunOptions::default().with_preset(preset),
                )
                .expect("valid config");
                let a = sim.run(&app).expect("random trace completes");
                prop_assert_eq!(a.instructions(), app.num_insts());
                let b = sim.run(&app).expect("rerun completes");
                prop_assert_eq!(a.cycles, b.cycles, "{:?} nondeterministic", preset);
            }
        }
    }
}
