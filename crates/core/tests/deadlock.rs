//! Deadlock diagnostics: a simulation that stops making progress must fail
//! with an error that names the stalled shard and describes the oldest
//! waiting warp, not just a cycle number.

use swiftsim_config::presets;
use swiftsim_core::{RunOptions, SimError, SimulatorPreset, SyncQuantum};
use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};

/// Two warps in one block: warp 0 waits at a barrier forever, because warp
/// 1's trace runs out of instructions without exiting — it can neither
/// reach the barrier nor retire. No component ever has a next event, so
/// the engine's idle-streak watchdog must trip.
fn deadlocked_app() -> ApplicationTrace {
    let mut kernel = KernelTrace::new("wedge", (1, 1, 1), (64, 1, 1));
    let block = kernel.push_block();
    {
        let w0 = block.push_warp();
        w0.push(InstBuilder::new(Opcode::Bar).pc(0));
        w0.push(InstBuilder::new(Opcode::Exit).pc(16));
    }
    {
        let w1 = block.push_warp();
        w1.push(InstBuilder::new(Opcode::Iadd).pc(0).dst(4).src(4));
        // No Bar, no Exit: the warp wedges with its trace exhausted.
    }
    ApplicationTrace::new("wedge", vec![kernel])
}

#[test]
fn forced_deadlock_names_the_shard_and_the_stuck_warp() {
    let mut cfg = presets::rtx2080ti();
    cfg.num_sms = 2;
    cfg.memory.partitions = 2;
    let err = swiftsim_core::run(
        &deadlocked_app(),
        &cfg,
        &RunOptions::default().with_preset(SimulatorPreset::SwiftBasic),
    )
    .expect_err("a wedged trace must be detected, not spin forever");

    let SimError::Deadlock {
        cycle,
        shard,
        detail,
    } = &err
    else {
        panic!("expected a deadlock, got: {err}");
    };
    assert!(
        *cycle > 0,
        "the watchdog trips after some progress attempts"
    );
    assert_eq!(*shard, 0, "single-threaded runs report shard 0");
    assert!(
        detail.contains("barrier"),
        "the oldest stalled warp is the one at the barrier: {detail}"
    );

    // The rendered message carries all of it for CLI users.
    let msg = err.to_string();
    assert!(msg.contains("shard 0"), "{msg}");
    assert!(msg.contains("barrier"), "{msg}");
}

/// Two blocks, the second wedged. With one block slot per SM the wedge
/// lands on SM 1, which under two threads is the second shard's only
/// (local index 0) SM — a deadlock report keyed by *local* ids would
/// misname it "SM 0".
fn app_wedged_on_second_sm() -> ApplicationTrace {
    let mut kernel = KernelTrace::new("wedge2", (2, 1, 1), (64, 1, 1));
    {
        let healthy = kernel.push_block();
        for _ in 0..2 {
            let w = healthy.push_warp();
            w.push(InstBuilder::new(Opcode::Iadd).pc(0).dst(4).src(4));
            w.push(InstBuilder::new(Opcode::Exit).pc(16));
        }
    }
    {
        let wedged = kernel.push_block();
        let w0 = wedged.push_warp();
        w0.push(InstBuilder::new(Opcode::Bar).pc(0));
        w0.push(InstBuilder::new(Opcode::Exit).pc(16));
        let w1 = wedged.push_warp();
        w1.push(InstBuilder::new(Opcode::Iadd).pc(0).dst(4).src(4));
        // No Bar, no Exit: wedged with its trace exhausted.
    }
    ApplicationTrace::new("wedge2", vec![kernel])
}

/// Regression: sharded runs must report the *global* SM id of the stalled
/// warp, on both parallel engines. An earlier revision printed the
/// shard-local index, which on any shard but the first names the wrong SM.
#[test]
fn sharded_deadlock_reports_global_sm_ids() {
    let mut cfg = presets::rtx2080ti();
    cfg.num_sms = 2;
    cfg.memory.partitions = 2;
    cfg.sm.max_blocks = 1; // one slot per SM: block 1 must land on SM 1

    for quantum in [SyncQuantum::PerCycle, SyncQuantum::Unsynchronized] {
        let mut fidelity = swiftsim_core::FidelityConfig::for_preset(SimulatorPreset::SwiftBasic);
        fidelity.sync_quantum = quantum;
        let err = swiftsim_core::run(
            &app_wedged_on_second_sm(),
            &cfg,
            &RunOptions::default()
                .with_fidelity(fidelity)
                .with_threads(2),
        )
        .expect_err("the wedged block must be detected");

        let SimError::Deadlock { shard, detail, .. } = &err else {
            panic!("expected a deadlock under {quantum:?}, got: {err}");
        };
        assert_eq!(
            *shard, 1,
            "{quantum:?}: the stalled SM belongs to the second shard: {detail}"
        );
        assert!(
            detail.contains("SM 1"),
            "{quantum:?}: the report must name the global SM id, \
             not the shard-local index: {detail}"
        );
        assert!(detail.contains("barrier"), "{quantum:?}: {detail}");
    }
}
