//! Stat-catalog snapshot: the typed stat surface — names, units, metric
//! keys, and docs — diffed against a golden file. The catalog is the
//! contract every stats consumer (`--json`, campaign JSONL, the serve
//! daemon, the validation harness, imported Accel-Sim stat files) keys
//! on, so a rename or a unit change must be a reviewed diff plus a
//! result-schema bump, never an accident.
//!
//! When a catalog change is intentional, regenerate with:
//!
//! ```sh
//! UPDATE_STATS=1 cargo test -p swiftsim-core --test stat_catalog
//! git diff crates/core/tests/golden/stat_catalog.txt  # review the delta
//! ```
//!
//! and bump `RESULT_SCHEMA_VERSION` if a name changed meaning.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use swiftsim_core::StatId;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/stat_catalog.txt")
}

fn current_catalog() -> String {
    let mut out = String::new();
    writeln!(out, "# swiftsim-core stat catalog").unwrap();
    writeln!(out, "# name | unit | metric key | doc").unwrap();
    for &id in StatId::ALL {
        writeln!(
            out,
            "{} | {} | {} | {}",
            id.name(),
            id.unit().token(),
            id.metric_key().unwrap_or("(derived)"),
            id.doc()
        )
        .unwrap();
    }
    out
}

#[test]
fn stat_catalog_matches_the_golden_snapshot() {
    let current = current_catalog();
    let path = golden_path();

    if std::env::var_os("UPDATE_STATS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &current).expect("write golden snapshot");
        eprintln!("stat catalog snapshot regenerated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_STATS=1 to create it",
            path.display()
        )
    });
    if golden == current {
        return;
    }

    let golden_lines: std::collections::BTreeSet<&str> = golden.lines().collect();
    let current_lines: std::collections::BTreeSet<&str> = current.lines().collect();
    let mut diff = String::new();
    for gone in golden_lines.difference(&current_lines) {
        writeln!(diff, "  - {gone}").unwrap();
    }
    for new in current_lines.difference(&golden_lines) {
        writeln!(diff, "  + {new}").unwrap();
    }
    panic!(
        "the stat catalog no longer matches tests/golden/stat_catalog.txt.\n\
         Every stats consumer (--json, campaign JSONL, serve, the validation\n\
         harness) keys on these names. If this change is intentional,\n\
         regenerate with `UPDATE_STATS=1 cargo test -p swiftsim-core --test\n\
         stat_catalog`, review and commit the diff, and bump\n\
         RESULT_SCHEMA_VERSION if a name changed meaning. Changes:\n{diff}"
    );
}

/// Every catalog name resolves back to its id, and the error for an
/// unknown name points at the catalog.
#[test]
fn catalog_names_round_trip() {
    for &id in StatId::ALL {
        assert_eq!(StatId::from_name(id.name()), Ok(id));
    }
    let err = StatId::from_name("gpu_tot_sim_cycle").unwrap_err();
    assert!(err.to_string().contains("catalog"), "{err}");
}
