//! Cross-representation equivalence of the trace ingestion pipeline.
//!
//! The same application reaches the simulator three ways — in memory, as a
//! text trace file, and as a chunked binary trace file — and every path
//! must be indistinguishable downstream: identical content hashes (campaign
//! cache keys) and bit-identical simulation results, single-threaded and
//! sharded. Plus the error paths: truncated and corrupted chunked files
//! must fail loudly, never silently mis-simulate.

use swiftsim_config::presets;
use swiftsim_core::{GpuSimulator, RunOptions, SimulatorPreset};
use swiftsim_trace::{
    open_trace, ApplicationTrace, ChunkedTraceSource, TextTraceSource, TraceSource,
};
use swiftsim_workloads::Scale;

/// A small config so the detailed-ish presets stay fast in tests.
fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = presets::rtx2080ti();
    cfg.num_sms = 4;
    cfg.memory.partitions = 4;
    cfg
}

/// A fresh scratch directory per call; unique across concurrently running
/// test binaries.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swiftsim-stream-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A multi-kernel app with real memory traffic.
fn app() -> ApplicationTrace {
    swiftsim_workloads::by_name("backprop")
        .expect("workload exists")
        .generate(Scale::Tiny)
}

/// The three file-backed and in-memory views of the same application.
fn sources(dir: &std::path::Path) -> (ApplicationTrace, TextTraceSource, ChunkedTraceSource) {
    let app = app();
    let text_path = dir.join("app.sstrace");
    let bin_path = dir.join("app.sstraceb");
    app.write_to_file(&text_path).expect("write text trace");
    app.write_binary_file(&bin_path)
        .expect("write binary trace");
    let text = TextTraceSource::open(&text_path).expect("open text trace");
    let chunked = ChunkedTraceSource::open(&bin_path).expect("open chunked trace");
    (app, text, chunked)
}

#[test]
fn content_hash_is_representation_independent() {
    let dir = scratch("hash");
    let (app, text, chunked) = sources(&dir);
    let mem_hash = TraceSource::content_hash(&app).unwrap();
    assert_eq!(mem_hash, text.content_hash().unwrap(), "text vs memory");
    assert_eq!(
        mem_hash,
        chunked.content_hash().unwrap(),
        "binary vs memory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_sources_simulate_bit_identically() {
    let dir = scratch("equal");
    let (app, text, chunked) = sources(&dir);

    for preset in [SimulatorPreset::SwiftBasic, SimulatorPreset::SwiftMemory] {
        for threads in [1usize, 2] {
            let options = RunOptions::default()
                .with_preset(preset)
                .with_threads(threads);
            let sim = GpuSimulator::try_new(small_gpu(), &options).expect("valid config");
            let eager = sim.run(&app).expect("eager run");
            let sources: [&dyn TraceSource; 2] = [&text, &chunked];
            for (label, source) in ["text", "chunked"].iter().zip(sources) {
                let streamed = sim.run(source).expect("streamed run");
                assert_eq!(
                    eager.cycles, streamed.cycles,
                    "{label} cycles at {preset:?} t{threads}"
                );
                assert_eq!(
                    eager.kernels, streamed.kernels,
                    "{label} per-kernel stats at {preset:?} t{threads}"
                );
                assert_eq!(
                    eager.metrics, streamed.metrics,
                    "{label} metrics at {preset:?} t{threads}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_trace_dispatches_on_magic() {
    let dir = scratch("sniff");
    let (app, _, _) = sources(&dir);
    let text = open_trace(dir.join("app.sstrace")).expect("text via open_trace");
    let bin = open_trace(dir.join("app.sstraceb")).expect("binary via open_trace");
    assert_eq!(text.num_kernels(), app.kernels().len());
    assert_eq!(bin.num_kernels(), app.kernels().len());
    assert_eq!(
        text.content_hash().unwrap(),
        bin.content_hash().unwrap(),
        "open_trace preserves hash parity"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_chunked_file_is_rejected_at_open() {
    let dir = scratch("trunc");
    let bin_path = dir.join("app.sstraceb");
    app().write_binary_file(&bin_path).expect("write binary");
    let bytes = std::fs::read(&bin_path).unwrap();

    // Cut the file mid-payload and mid-header: both must fail to open (the
    // section table promises more bytes than the file holds).
    for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
        let path = dir.join(format!("cut{cut}.sstraceb"));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            ChunkedTraceSource::open(&path).is_err(),
            "truncation at {cut}/{} must be rejected",
            bytes.len()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_payload_fails_the_run_not_the_process() {
    let dir = scratch("corrupt");
    let bin_path = dir.join("app.sstraceb");
    let app = app();
    app.write_binary_file(&bin_path).expect("write binary");

    // Flip one byte in the last kernel's payload. The header still parses,
    // so the file opens — the per-section hash catches it at decode time,
    // and the simulator surfaces it as an error.
    let mut bytes = std::fs::read(&bin_path).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 0xff;
    std::fs::write(&bin_path, &bytes).unwrap();

    let source = ChunkedTraceSource::open(&bin_path).expect("header is intact");
    let last = source.num_kernels() - 1;
    assert!(
        source.decode_kernel(last).is_err(),
        "hash mismatch on decode"
    );

    let sim = GpuSimulator::try_new(
        small_gpu(),
        &RunOptions::default().with_preset(SimulatorPreset::SwiftBasic),
    )
    .expect("valid config");
    let err = sim.run(&source).expect_err("corrupt trace fails the run");
    assert!(
        matches!(err, swiftsim_core::SimError::Trace { .. }),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
