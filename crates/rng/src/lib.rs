//! Self-contained deterministic pseudo-randomness for Swift-Sim.
//!
//! The workspace must build in fully offline environments, so the external
//! `rand` crate is replaced by this minimal xoshiro256++ implementation.
//! Only the tiny API surface the simulator actually uses is provided:
//! seeding from a `u64`, uniform ranges, and Bernoulli draws. Simulation
//! code treats randomness as a *deterministic function of the seed* — trace
//! generators and the Random replacement policy must reproduce bit-identical
//! runs — so the generator is fixed forever; changing it would invalidate
//! every committed experiment number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One round of splitmix64, used to expand a 64-bit seed into the full
/// 256-bit xoshiro state (the seeding scheme recommended by the xoshiro
/// authors, and the one `rand`'s `SmallRng::seed_from_u64` uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Drop-in replacement for the subset of `rand::rngs::SmallRng` that
/// Swift-Sim uses. Not cryptographically secure — simulator-internal use
/// only.
///
/// # Examples
///
/// ```
/// use swiftsim_rng::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_range(0u64..10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Create a generator whose entire sequence is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The full 256-bit generator state, for checkpointing. Feeding the
    /// result to [`SmallRng::from_state`] reproduces the exact sequence the
    /// generator would have continued with.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`SmallRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw over `0..bound` without modulo bias (rejection on the
    /// short final interval).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Integer types [`SmallRng::gen_range`] can sample.
pub trait SampleRange: Sized {
    /// Uniform draw from `range`; panics if it is empty.
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self;
}

impl SampleRange for u64 {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from an empty range");
        range.start + rng.bounded_u64(range.end - range.start)
    }
}

impl SampleRange for usize {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from an empty range");
        range.start + rng.bounded_u64((range.end - range.start) as u64) as usize
    }
}

impl SampleRange for u32 {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from an empty range");
        range.start + rng.bounded_u64(u64::from(range.end - range.start)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "{hits} hits of 10000 at p=0.25"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(3u64..3);
    }
}
