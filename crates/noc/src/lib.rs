//! On-chip interconnect models for the Swift-Sim GPU simulation framework.
//!
//! The SMs reach the banked L2 through an on-chip network (§II-A). The
//! paper criticizes pure analytical simulators for baking the NoC into
//! queueing equations — "when the NoC topology changes, a new analytical
//! model has to be created" (§II-B) — so Swift-Sim keeps the interconnect
//! behind the small [`Interconnect`] interface: both provided topologies
//! ([`Crossbar`] and [`Mesh`]) and any future one plug into the framework
//! without touching other modules.
//!
//! The timing model is zero-load latency + per-destination-port bandwidth +
//! bounded output queues, which is where NoC stall cycles (a Metrics
//! Gatherer output named in §III-C) come from.
//!
//! # Examples
//!
//! ```
//! use swiftsim_config::presets;
//! use swiftsim_noc::{Crossbar, Interconnect};
//!
//! let cfg = presets::rtx2080ti();
//! let mut noc = Crossbar::new(&cfg.noc, cfg.num_sms as usize, cfg.memory.partitions as usize);
//! // SM 3 sends a one-flit request to partition 7 at cycle 100.
//! let arrival = noc.traverse(3, 7, 1, 100).expect("queue not full");
//! assert_eq!(arrival, 100 + 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use swiftsim_config::NocConfig;

/// A simulation cycle index.
pub type Cycle = u64;

/// Lifetime counters of one interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // self-describing counters
pub struct NocStats {
    pub flits: u64,
    pub traversals: u64,
    pub stall_cycles: u64,
    pub rejections: u64,
}

impl NocStats {
    /// Average queueing stall per traversal, in cycles.
    pub fn avg_stall(&self) -> f64 {
        if self.traversals == 0 {
            return 0.0;
        }
        self.stall_cycles as f64 / self.traversals as f64
    }
}

/// The interconnect interface the rest of the framework programs against.
///
/// Implementations are free to model any topology; the framework only needs
/// "when does this message arrive, or is the network refusing it right
/// now". The trait is object-safe so simulators can swap topologies at
/// construction time.
pub trait Interconnect: Send {
    /// Send `flits` flits from source port `src` to destination port `dst`
    /// at cycle `now`. Returns the arrival cycle, or `None` when the
    /// destination queue is full (the sender must retry — back-pressure).
    fn traverse(&mut self, src: usize, dst: usize, flits: u32, now: Cycle) -> Option<Cycle>;

    /// Earliest cycle at which a send to `dst` could be accepted. Senders
    /// whose traversal was rejected use this to schedule their retry
    /// instead of polling every cycle.
    fn earliest_accept(&mut self, dst: usize, now: Cycle) -> Cycle;

    /// Lifetime counters.
    fn stats(&self) -> NocStats;

    /// Number of destination ports.
    fn num_ports(&self) -> usize;

    /// Snapshot the interconnect's persistent state for checkpointing.
    /// Port-less models (e.g. [`IdealNoc`]) return an empty port list.
    fn save_state(&self) -> NocState;

    /// Restore a snapshot taken from an identically configured
    /// interconnect.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose port count does not match.
    fn restore_state(&mut self, state: &NocState) -> Result<(), String>;
}

/// Serializable snapshot of one destination port (checkpointing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortState {
    /// Cycle at which the port can start serializing its next message.
    pub next_free: Cycle,
    /// Arrival times of messages still occupying the queue (ascending).
    pub in_flight: Vec<Cycle>,
}

/// Serializable snapshot of an [`Interconnect`]'s persistent state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NocState {
    /// One entry per destination port (empty for port-less models).
    pub ports: Vec<PortState>,
    /// Lifetime counters.
    pub stats: NocStats,
}

#[derive(Debug, Clone, Default)]
struct Port {
    next_free: Cycle,
    in_flight: VecDeque<Cycle>,
}

impl Port {
    fn drain(&mut self, now: Cycle) {
        while self.in_flight.front().is_some_and(|&t| t <= now) {
            self.in_flight.pop_front();
        }
    }
}

/// Helper shared by both topologies: queue + bandwidth accounting on the
/// destination port.
#[derive(Debug, Clone)]
struct PortFabric {
    ports: Vec<Port>,
    flits_per_cycle: u64,
    queue_depth: usize,
    stats: NocStats,
}

impl PortFabric {
    fn new(num_ports: usize, flits_per_cycle: u32, queue_depth: u32) -> Self {
        PortFabric {
            ports: vec![Port::default(); num_ports],
            flits_per_cycle: u64::from(flits_per_cycle.max(1)),
            queue_depth: queue_depth as usize,
            stats: NocStats::default(),
        }
    }

    fn send(&mut self, dst: usize, flits: u32, zero_load: Cycle, now: Cycle) -> Option<Cycle> {
        let port = &mut self.ports[dst];
        port.drain(now);
        if port.in_flight.len() >= self.queue_depth {
            self.stats.rejections += 1;
            return None;
        }
        let start = now.max(port.next_free);
        let serialization = u64::from(flits).div_ceil(self.flits_per_cycle).max(1);
        port.next_free = start + serialization;
        let arrival = start + zero_load + serialization - 1;
        port.in_flight.push_back(arrival);
        self.stats.flits += u64::from(flits);
        self.stats.traversals += 1;
        self.stats.stall_cycles += start - now;
        Some(arrival)
    }

    fn earliest_accept(&mut self, dst: usize, now: Cycle) -> Cycle {
        let port = &mut self.ports[dst];
        port.drain(now);
        if port.in_flight.len() < self.queue_depth {
            now
        } else {
            // The queue frees when its oldest message is delivered.
            port.in_flight.front().copied().unwrap_or(now) + 1
        }
    }

    fn save_state(&self) -> NocState {
        NocState {
            ports: self
                .ports
                .iter()
                .map(|p| PortState {
                    next_free: p.next_free,
                    in_flight: p.in_flight.iter().copied().collect(),
                })
                .collect(),
            stats: self.stats,
        }
    }

    fn restore_state(&mut self, state: &NocState) -> Result<(), String> {
        if state.ports.len() != self.ports.len() {
            return Err(format!(
                "NoC snapshot has {} ports, this fabric has {}",
                state.ports.len(),
                self.ports.len()
            ));
        }
        for (port, snap) in self.ports.iter_mut().zip(&state.ports) {
            if snap.in_flight.len() > self.queue_depth {
                return Err(format!(
                    "NoC snapshot port holds {} messages, queue depth is {}",
                    snap.in_flight.len(),
                    self.queue_depth
                ));
            }
            port.next_free = snap.next_free;
            port.in_flight = snap.in_flight.iter().copied().collect();
        }
        self.stats = state.stats;
        Ok(())
    }
}

/// Full crossbar: every source reaches every destination in the same
/// zero-load latency; contention only at destination ports. This is the
/// default model for NVIDIA's SM↔L2 fabric.
#[derive(Debug, Clone)]
pub struct Crossbar {
    fabric: PortFabric,
    latency: Cycle,
    num_src: usize,
}

impl Crossbar {
    /// Build a crossbar with `num_src` source and `num_dst` destination
    /// ports.
    pub fn new(cfg: &NocConfig, num_src: usize, num_dst: usize) -> Self {
        Crossbar {
            fabric: PortFabric::new(num_dst, cfg.flits_per_cycle, cfg.queue_depth),
            latency: Cycle::from(cfg.latency),
            num_src,
        }
    }
}

impl Interconnect for Crossbar {
    fn traverse(&mut self, src: usize, dst: usize, flits: u32, now: Cycle) -> Option<Cycle> {
        assert!(src < self.num_src, "source port {src} out of range");
        self.fabric.send(dst, flits, self.latency, now)
    }

    fn earliest_accept(&mut self, dst: usize, now: Cycle) -> Cycle {
        self.fabric.earliest_accept(dst, now)
    }

    fn stats(&self) -> NocStats {
        self.fabric.stats
    }

    fn num_ports(&self) -> usize {
        self.fabric.ports.len()
    }

    fn save_state(&self) -> NocState {
        self.fabric.save_state()
    }

    fn restore_state(&mut self, state: &NocState) -> Result<(), String> {
        self.fabric.restore_state(state)
    }
}

/// 2D mesh with XY routing: sources and destinations are placed on a
/// near-square grid and latency grows with hop count. Demonstrates that a
/// topology change is *just another module implementation* in Swift-Sim.
#[derive(Debug, Clone)]
pub struct Mesh {
    fabric: PortFabric,
    per_hop: Cycle,
    src_cols: usize,
    dst_cols: usize,
    num_src: usize,
}

impl Mesh {
    /// Build a mesh with `num_src` source and `num_dst` destination nodes.
    /// `cfg.latency` is interpreted as the per-hop link latency.
    pub fn new(cfg: &NocConfig, num_src: usize, num_dst: usize) -> Self {
        Mesh {
            fabric: PortFabric::new(num_dst, cfg.flits_per_cycle, cfg.queue_depth),
            per_hop: Cycle::from(cfg.latency.max(1)),
            src_cols: grid_cols(num_src),
            dst_cols: grid_cols(num_dst),
            num_src,
        }
    }

    fn hops(&self, src: usize, dst: usize) -> u64 {
        let (sx, sy) = (src % self.src_cols, src / self.src_cols);
        let (dx, dy) = (dst % self.dst_cols, dst / self.dst_cols);
        (sx.abs_diff(dx) + sy.abs_diff(dy) + 1) as u64
    }
}

fn grid_cols(n: usize) -> usize {
    (n.max(1) as f64).sqrt().ceil() as usize
}

impl Interconnect for Mesh {
    fn traverse(&mut self, src: usize, dst: usize, flits: u32, now: Cycle) -> Option<Cycle> {
        assert!(src < self.num_src, "source port {src} out of range");
        let zero_load = self.per_hop * self.hops(src, dst);
        self.fabric.send(dst, flits, zero_load, now)
    }

    fn earliest_accept(&mut self, dst: usize, now: Cycle) -> Cycle {
        self.fabric.earliest_accept(dst, now)
    }

    fn stats(&self) -> NocStats {
        self.fabric.stats
    }

    fn num_ports(&self) -> usize {
        self.fabric.ports.len()
    }

    fn save_state(&self) -> NocState {
        self.fabric.save_state()
    }

    fn restore_state(&mut self, state: &NocState) -> Result<(), String> {
        self.fabric.restore_state(state)
    }
}

/// An ideal (infinite-bandwidth, zero-latency) interconnect, used by the
/// analytical memory model where NoC contention is folded into the
/// contention adder instead of being simulated.
#[derive(Debug, Clone, Default)]
pub struct IdealNoc {
    stats: NocStats,
    ports: usize,
}

impl IdealNoc {
    /// Build an ideal interconnect with `num_dst` destination ports.
    pub fn new(num_dst: usize) -> Self {
        IdealNoc {
            stats: NocStats::default(),
            ports: num_dst,
        }
    }
}

impl Interconnect for IdealNoc {
    fn traverse(&mut self, _src: usize, _dst: usize, flits: u32, now: Cycle) -> Option<Cycle> {
        self.stats.flits += u64::from(flits);
        self.stats.traversals += 1;
        Some(now)
    }

    fn earliest_accept(&mut self, _dst: usize, now: Cycle) -> Cycle {
        now
    }

    fn stats(&self) -> NocStats {
        self.stats
    }

    fn num_ports(&self) -> usize {
        self.ports
    }

    fn save_state(&self) -> NocState {
        NocState {
            ports: Vec::new(),
            stats: self.stats,
        }
    }

    fn restore_state(&mut self, state: &NocState) -> Result<(), String> {
        if !state.ports.is_empty() {
            return Err(format!(
                "ideal NoC snapshot must be port-less, has {} ports",
                state.ports.len()
            ));
        }
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn noc_cfg() -> NocConfig {
        presets::rtx2080ti().noc
    }

    #[test]
    fn crossbar_zero_load_latency() {
        let mut x = Crossbar::new(&noc_cfg(), 68, 22);
        assert_eq!(x.traverse(0, 0, 1, 0), Some(8));
        assert_eq!(x.traverse(5, 21, 1, 100), Some(108));
        assert_eq!(x.stats().traversals, 2);
        assert_eq!(x.stats().stall_cycles, 0);
    }

    #[test]
    fn crossbar_port_contention_serializes() {
        let mut x = Crossbar::new(&noc_cfg(), 4, 2);
        // Four senders hit port 0 in the same cycle: starts 0,1,2,3.
        let arrivals: Vec<Cycle> = (0..4).map(|s| x.traverse(s, 0, 1, 0).unwrap()).collect();
        assert_eq!(arrivals, vec![8, 9, 10, 11]);
        assert_eq!(x.stats().stall_cycles, 1 + 2 + 3);
        // A different port is unaffected.
        assert_eq!(x.traverse(0, 1, 1, 0), Some(8));
    }

    #[test]
    fn multi_flit_messages_serialize_longer() {
        let mut x = Crossbar::new(&noc_cfg(), 2, 1);
        // 4 flits at 1 flit/cycle: occupies the port 4 cycles.
        let first = x.traverse(0, 0, 4, 0).unwrap();
        assert_eq!(first, 8 + 3);
        let second = x.traverse(1, 0, 1, 0).unwrap();
        assert_eq!(second, 4 + 8);
        assert_eq!(x.stats().flits, 5);
    }

    #[test]
    fn queue_full_rejects_and_recovers() {
        let mut cfg = noc_cfg();
        cfg.queue_depth = 2;
        let mut x = Crossbar::new(&cfg, 4, 1);
        assert!(x.traverse(0, 0, 1, 0).is_some());
        assert!(x.traverse(1, 0, 1, 0).is_some());
        assert!(x.traverse(2, 0, 1, 0).is_none());
        assert_eq!(x.stats().rejections, 1);
        // After arrivals drain the queue, sends work again.
        assert!(x.traverse(2, 0, 1, 1000).is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crossbar_validates_source() {
        let mut x = Crossbar::new(&noc_cfg(), 2, 2);
        x.traverse(2, 0, 1, 0);
    }

    #[test]
    fn mesh_latency_grows_with_distance() {
        let mut cfg = noc_cfg();
        cfg.latency = 2; // per hop
        let mut m = Mesh::new(&cfg, 16, 16);
        // src 0 → dst 0: 1 hop (injection).
        let near = m.traverse(0, 0, 1, 0).unwrap();
        // src 0 (0,0) → dst 15 (3,3): 7 hops.
        let far = m.traverse(0, 15, 1, 0).unwrap();
        assert!(far > near);
        assert_eq!(near, 2);
        assert_eq!(far, 14);
    }

    #[test]
    fn mesh_is_deterministic() {
        let cfg = noc_cfg();
        let mut a = Mesh::new(&cfg, 68, 22);
        let mut b = Mesh::new(&cfg, 68, 22);
        for i in 0..50 {
            assert_eq!(
                a.traverse(i % 68, (i * 7) % 22, 1, i as Cycle),
                b.traverse(i % 68, (i * 7) % 22, 1, i as Cycle)
            );
        }
    }

    #[test]
    fn ideal_noc_is_free() {
        let mut n = IdealNoc::new(22);
        assert_eq!(n.traverse(0, 21, 9, 1234), Some(1234));
        assert_eq!(n.stats().flits, 9);
        assert_eq!(n.num_ports(), 22);
        assert_eq!(n.stats().avg_stall(), 0.0);
    }

    #[test]
    fn avg_stall_reflects_contention() {
        let mut x = Crossbar::new(&noc_cfg(), 4, 1);
        for s in 0..4 {
            x.traverse(s, 0, 1, 0);
        }
        assert!((x.stats().avg_stall() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trait_object_usable() {
        let mut nocs: Vec<Box<dyn Interconnect>> = vec![
            Box::new(Crossbar::new(&noc_cfg(), 4, 4)),
            Box::new(Mesh::new(&noc_cfg(), 4, 4)),
            Box::new(IdealNoc::new(4)),
        ];
        for noc in &mut nocs {
            assert!(noc.traverse(0, 3, 1, 0).is_some());
            assert_eq!(noc.num_ports(), 4);
        }
    }
}
