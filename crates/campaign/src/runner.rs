//! [`JobRunner`]: the reusable execution core behind both one-shot
//! campaigns ([`crate::run_campaign`]) and the long-running `swiftsim
//! serve` daemon.
//!
//! A runner owns the execution *policy* — worker count, retry bound,
//! profiling, the on-disk [`ResultCache`] — and exposes two entry points:
//! [`JobRunner::run`] drives a whole resolved job list on the internal
//! worker pool (the classic campaign path), while [`JobRunner::run_one`]
//! executes a single job on the calling thread (the shape a service's own
//! scheduler wants: it owns the threads, the runner owns one job's
//! cache-check → simulate → store → retry lifecycle). Both honor a
//! [`CancelToken`].

use crate::cache::ResultCache;
use crate::executor::{run_jobs_cancellable, CancelToken, ExecutorOptions, JobOutcome, JobStatus};
use crate::spec::ResolvedJob;
use swiftsim_core::SimulatorBuilder;

/// Reusable executor for resolved campaign jobs: cache consultation,
/// simulation, retries, panic isolation, and cancellation.
#[derive(Debug, Clone)]
pub struct JobRunner {
    opts: ExecutorOptions,
    cache: ResultCache,
}

impl JobRunner {
    /// A runner with the given pool options and result cache.
    pub fn new(opts: ExecutorOptions, cache: ResultCache) -> Self {
        JobRunner { opts, cache }
    }

    /// The runner's pool options.
    pub fn options(&self) -> &ExecutorOptions {
        &self.opts
    }

    /// The runner's on-disk result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Execute `jobs` on the internal worker pool: consult the cache,
    /// simulate misses, store fresh results, retry failures. Jobs not yet
    /// started when `cancel` trips come back as [`JobStatus::Cancelled`].
    /// Outcomes are in job order.
    pub fn run(&self, jobs: &[ResolvedJob], cancel: &CancelToken) -> Vec<JobOutcome> {
        let runs = run_jobs_cancellable(
            jobs,
            &self.opts,
            cancel,
            |job| job.spec.label(),
            |_, job| self.attempt(job),
        );

        jobs.iter()
            .zip(runs)
            .map(|(job, run)| {
                let (status, attempts) = match (run.result, run.cancelled) {
                    (_, true) => (JobStatus::Cancelled, 0),
                    (Ok((result, true)), _) => (JobStatus::Cached(result), 0),
                    (Ok((result, false)), _) => (JobStatus::Completed(result), run.attempts),
                    (Err(error), _) => (JobStatus::Failed { error }, run.attempts),
                };
                JobOutcome {
                    index: job.spec.index,
                    label: job.spec.label(),
                    status,
                    attempts,
                    wall: run.wall,
                }
            })
            .collect()
    }

    /// Execute exactly one job on the *calling* thread, with the same
    /// cache/retry/panic-isolation lifecycle as [`JobRunner::run`].
    ///
    /// This is the building block for external schedulers (the serve
    /// daemon's worker slots): they decide *when and where* a job runs,
    /// the runner decides *how*.
    pub fn run_one(&self, job: &ResolvedJob, cancel: &CancelToken) -> JobOutcome {
        let single = std::slice::from_ref(job);
        let mut opts = self.opts.clone();
        opts.workers = 1;
        opts.heartbeat = None;
        let runner = JobRunner {
            opts,
            cache: self.cache.clone(),
        };
        runner
            .run(single, cancel)
            .pop()
            .expect("one job in, one outcome out")
    }

    /// One cache-check → simulate → store attempt. `Ok((result, true))`
    /// means a cache hit.
    fn attempt(
        &self,
        job: &ResolvedJob,
    ) -> Result<(swiftsim_core::SimulationResult, bool), String> {
        if let Some(hit) = self.cache.lookup(job.key) {
            return Ok((hit, true));
        }
        let sim = SimulatorBuilder::new(job.cfg.clone())
            .fidelity(job.fidelity)
            .threads(job.spec.threads)
            .profile(self.opts.profile)
            .try_build()
            .map_err(|e| e.to_string())?;
        let result = sim.run(job.app.as_ref()).map_err(|e| e.to_string())?;
        self.cache.store(job.key, &job.spec.label(), &result);
        Ok((result, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheMode;
    use crate::spec::CampaignSpec;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swiftsim-runner-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_jobs(n_schedulers: usize) -> Vec<ResolvedJob> {
        let scheds = ["gto", "lrr", "two_level"][..n_schedulers].join(", ");
        CampaignSpec::parse(&format!(
            "workload = nw\nscale = tiny\npreset = swift-memory\nscheduler = {scheds}\n"
        ))
        .unwrap()
        .resolve()
        .unwrap()
    }

    #[test]
    fn run_one_matches_pool_run() {
        let jobs = tiny_jobs(2);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(scratch_dir("one"), CacheMode::Off),
        );
        let pooled = runner.run(&jobs, &CancelToken::new());
        let single = runner.run_one(&jobs[0], &CancelToken::new());
        let (JobStatus::Completed(a), JobStatus::Completed(b)) =
            (&pooled[0].status, &single.status)
        else {
            panic!("both must complete: {pooled:?} / {single:?}");
        };
        assert_eq!(a.cycles, b.cycles, "same job, same prediction");
        assert_eq!(single.index, jobs[0].spec.index);
    }

    #[test]
    fn cancelled_token_skips_unstarted_jobs() {
        let jobs = tiny_jobs(3);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(scratch_dir("cancel"), CacheMode::Off),
        );
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcomes = runner.run(&jobs, &cancel);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert_eq!(o.status, JobStatus::Cancelled, "{o:?}");
            assert_eq!(o.attempts, 0);
        }
        // A single-job run honors the token the same way.
        let one = runner.run_one(&jobs[0], &cancel);
        assert_eq!(one.status, JobStatus::Cancelled);
    }

    #[test]
    fn run_one_hits_the_shared_disk_cache() {
        let dir = scratch_dir("disk");
        let jobs = tiny_jobs(1);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(dir.clone(), CacheMode::Use),
        );
        let first = runner.run_one(&jobs[0], &CancelToken::new());
        assert!(matches!(first.status, JobStatus::Completed(_)), "{first:?}");
        let second = runner.run_one(&jobs[0], &CancelToken::new());
        let JobStatus::Cached(cached) = &second.status else {
            panic!("second run must hit the cache: {second:?}");
        };
        let JobStatus::Completed(fresh) = &first.status else {
            unreachable!();
        };
        assert_eq!(cached.cycles, fresh.cycles);
        assert_eq!(second.attempts, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
