//! [`JobRunner`]: the reusable execution core behind both one-shot
//! campaigns ([`crate::run_campaign`]) and the long-running `swiftsim
//! serve` daemon.
//!
//! A runner owns the execution *policy* — worker count, retry bound,
//! profiling, the on-disk [`ResultCache`] — and exposes two entry points:
//! [`JobRunner::run`] drives a whole resolved job list on the internal
//! worker pool (the classic campaign path), while [`JobRunner::run_one`]
//! executes a single job on the calling thread (the shape a service's own
//! scheduler wants: it owns the threads, the runner owns one job's
//! cache-check → simulate → store → retry lifecycle). Both honor a
//! [`CancelToken`].

use crate::cache::ResultCache;
use crate::executor::{run_jobs_cancellable, CancelToken, ExecutorOptions, JobOutcome, JobStatus};
use crate::spec::ResolvedJob;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use swiftsim_core::SimulatorBuilder;

/// Wall time spent in each stage of one job attempt: cache consultation,
/// simulator construction (config validation + trace open/decode setup),
/// the simulation proper, and storing the fresh result.
///
/// Produced by [`JobRunner::run_one_timed`] so a scheduler (the serve
/// daemon's executor slots) can feed per-stage latency histograms. A cache
/// hit reports only `cache_lookup`; stages not reached stay zero. When a
/// job is retried, the timings describe the final attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Looking the job key up in the on-disk result cache.
    pub cache_lookup: Duration,
    /// `SimulatorBuilder::try_build`: config validation and trace-source
    /// setup — the "decode" side of an attempt.
    pub build: Duration,
    /// Running the simulation itself.
    pub simulate: Duration,
    /// Persisting the fresh result into the cache.
    pub store: Duration,
}

/// Reusable executor for resolved campaign jobs: cache consultation,
/// simulation, retries, panic isolation, and cancellation.
#[derive(Debug, Clone)]
pub struct JobRunner {
    opts: ExecutorOptions,
    cache: ResultCache,
}

impl JobRunner {
    /// A runner with the given pool options and result cache.
    pub fn new(opts: ExecutorOptions, cache: ResultCache) -> Self {
        JobRunner { opts, cache }
    }

    /// The runner's pool options.
    pub fn options(&self) -> &ExecutorOptions {
        &self.opts
    }

    /// The runner's on-disk result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Execute `jobs` on the internal worker pool: consult the cache,
    /// simulate misses, store fresh results, retry failures. Jobs not yet
    /// started when `cancel` trips come back as [`JobStatus::Cancelled`].
    /// Outcomes are in job order.
    pub fn run(&self, jobs: &[ResolvedJob], cancel: &CancelToken) -> Vec<JobOutcome> {
        let runs = run_jobs_cancellable(
            jobs,
            &self.opts,
            cancel,
            |job| job.spec.label(),
            |_, job| self.attempt(job),
        );

        jobs.iter().zip(runs).map(outcome_of).collect()
    }

    /// Execute exactly one job on the *calling* thread, with the same
    /// cache/retry/panic-isolation lifecycle as [`JobRunner::run`].
    ///
    /// This is the building block for external schedulers (the serve
    /// daemon's worker slots): they decide *when and where* a job runs,
    /// the runner decides *how*.
    pub fn run_one(&self, job: &ResolvedJob, cancel: &CancelToken) -> JobOutcome {
        self.run_one_timed(job, cancel).0
    }

    /// Like [`JobRunner::run_one`], but also reports where the wall time of
    /// the (final) attempt went, stage by stage.
    pub fn run_one_timed(
        &self,
        job: &ResolvedJob,
        cancel: &CancelToken,
    ) -> (JobOutcome, StageTimings) {
        let single = std::slice::from_ref(job);
        let mut opts = self.opts.clone();
        opts.workers = 1;
        opts.heartbeat = None;
        let timings = Mutex::new(StageTimings::default());
        let runs = run_jobs_cancellable(
            single,
            &opts,
            cancel,
            |job| job.spec.label(),
            |_, job| self.attempt_timed(job, &timings),
        );
        let run = runs.into_iter().next().expect("one job in, one run out");
        let outcome = outcome_of((job, run));
        let timings = timings.into_inner().unwrap_or_else(|p| p.into_inner());
        (outcome, timings)
    }

    /// One cache-check → simulate → store attempt. `Ok((result, true))`
    /// means a cache hit.
    fn attempt(
        &self,
        job: &ResolvedJob,
    ) -> Result<(swiftsim_core::SimulationResult, bool), String> {
        self.attempt_timed(job, &Mutex::new(StageTimings::default()))
    }

    /// The attempt body, publishing stage durations into `timings` at each
    /// stage boundary (so even a failing attempt reports the stages it
    /// reached). The cell is a `Mutex` because the executor's panic
    /// isolation runs attempts under `catch_unwind`.
    fn attempt_timed(
        &self,
        job: &ResolvedJob,
        timings: &Mutex<StageTimings>,
    ) -> Result<(swiftsim_core::SimulationResult, bool), String> {
        let publish = |t: StageTimings| {
            *timings.lock().unwrap_or_else(|p| p.into_inner()) = t;
        };
        let mut t = StageTimings::default();
        let t0 = Instant::now();
        let hit = self.cache.lookup(job.key);
        t.cache_lookup = t0.elapsed();
        publish(t);
        if let Some(hit) = hit {
            return Ok((hit, true));
        }
        let t1 = Instant::now();
        let sim = SimulatorBuilder::new(job.cfg.clone())
            .fidelity(job.fidelity)
            .threads(job.spec.threads)
            .profile(self.opts.profile)
            .try_build()
            .map_err(|e| e.to_string())?;
        t.build = t1.elapsed();
        publish(t);
        let t2 = Instant::now();
        let result = sim.run(job.app.as_ref()).map_err(|e| e.to_string())?;
        t.simulate = t2.elapsed();
        publish(t);
        let t3 = Instant::now();
        self.cache.store(job.key, &job.spec.label(), &result);
        t.store = t3.elapsed();
        publish(t);
        Ok((result, false))
    }
}

/// Map one executor run back onto the job it executed.
fn outcome_of(
    (job, run): (
        &ResolvedJob,
        crate::executor::JobRun<(swiftsim_core::SimulationResult, bool)>,
    ),
) -> JobOutcome {
    let (status, attempts) = match (run.result, run.cancelled) {
        (_, true) => (JobStatus::Cancelled, 0),
        (Ok((result, true)), _) => (JobStatus::Cached(result), 0),
        (Ok((result, false)), _) => (JobStatus::Completed(result), run.attempts),
        (Err(error), _) => (JobStatus::Failed { error }, run.attempts),
    };
    JobOutcome {
        index: job.spec.index,
        label: job.spec.label(),
        status,
        attempts,
        wall: run.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheMode;
    use crate::spec::CampaignSpec;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swiftsim-runner-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_jobs(n_schedulers: usize) -> Vec<ResolvedJob> {
        let scheds = ["gto", "lrr", "two_level"][..n_schedulers].join(", ");
        CampaignSpec::parse(&format!(
            "workload = nw\nscale = tiny\npreset = swift-memory\nscheduler = {scheds}\n"
        ))
        .unwrap()
        .resolve()
        .unwrap()
    }

    #[test]
    fn run_one_matches_pool_run() {
        let jobs = tiny_jobs(2);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(scratch_dir("one"), CacheMode::Off),
        );
        let pooled = runner.run(&jobs, &CancelToken::new());
        let single = runner.run_one(&jobs[0], &CancelToken::new());
        let (JobStatus::Completed(a), JobStatus::Completed(b)) =
            (&pooled[0].status, &single.status)
        else {
            panic!("both must complete: {pooled:?} / {single:?}");
        };
        assert_eq!(a.cycles, b.cycles, "same job, same prediction");
        assert_eq!(single.index, jobs[0].spec.index);
    }

    #[test]
    fn cancelled_token_skips_unstarted_jobs() {
        let jobs = tiny_jobs(3);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(scratch_dir("cancel"), CacheMode::Off),
        );
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcomes = runner.run(&jobs, &cancel);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert_eq!(o.status, JobStatus::Cancelled, "{o:?}");
            assert_eq!(o.attempts, 0);
        }
        // A single-job run honors the token the same way.
        let one = runner.run_one(&jobs[0], &cancel);
        assert_eq!(one.status, JobStatus::Cancelled);
    }

    #[test]
    fn run_one_timed_attributes_stages() {
        let dir = scratch_dir("timed");
        let jobs = tiny_jobs(1);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(dir.clone(), CacheMode::Use),
        );
        let (fresh, t) = runner.run_one_timed(&jobs[0], &CancelToken::new());
        assert!(matches!(fresh.status, JobStatus::Completed(_)), "{fresh:?}");
        assert!(t.simulate > Duration::ZERO, "{t:?}");
        // The cached re-run never reaches the simulate stage.
        let (cached, t2) = runner.run_one_timed(&jobs[0], &CancelToken::new());
        assert!(matches!(cached.status, JobStatus::Cached(_)), "{cached:?}");
        assert_eq!(t2.simulate, Duration::ZERO, "{t2:?}");
        assert_eq!(t2.build, Duration::ZERO, "{t2:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_one_hits_the_shared_disk_cache() {
        let dir = scratch_dir("disk");
        let jobs = tiny_jobs(1);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(dir.clone(), CacheMode::Use),
        );
        let first = runner.run_one(&jobs[0], &CancelToken::new());
        assert!(matches!(first.status, JobStatus::Completed(_)), "{first:?}");
        let second = runner.run_one(&jobs[0], &CancelToken::new());
        let JobStatus::Cached(cached) = &second.status else {
            panic!("second run must hit the cache: {second:?}");
        };
        let JobStatus::Completed(fresh) = &first.status else {
            unreachable!();
        };
        assert_eq!(cached.cycles, fresh.cycles);
        assert_eq!(second.attempts, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
