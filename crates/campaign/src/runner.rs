//! [`JobRunner`]: the reusable execution core behind both one-shot
//! campaigns ([`crate::run_campaign`]) and the long-running `swiftsim
//! serve` daemon.
//!
//! A runner owns the execution *policy* — worker count, retry bound,
//! profiling, the on-disk [`ResultCache`] — and exposes two entry points:
//! [`JobRunner::run`] drives a whole resolved job list on the internal
//! worker pool (the classic campaign path), while [`JobRunner::run_one`]
//! executes a single job on the calling thread (the shape a service's own
//! scheduler wants: it owns the threads, the runner owns one job's
//! cache-check → simulate → store → retry lifecycle). Both honor a
//! [`CancelToken`].

use crate::cache::ResultCache;
use crate::executor::{run_jobs_cancellable, CancelToken, ExecutorOptions, JobOutcome, JobStatus};
use crate::spec::ResolvedJob;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use swiftsim_config::fnv1a64;
use swiftsim_core::{GpuSimulator, RunOptions, SimError, Snapshot};

/// Wall time spent in each stage of one job attempt: cache consultation,
/// simulator construction (config validation + trace open/decode setup),
/// the simulation proper, and storing the fresh result.
///
/// Produced by [`JobRunner::run_one_timed`] so a scheduler (the serve
/// daemon's executor slots) can feed per-stage latency histograms. A cache
/// hit reports only `cache_lookup`; stages not reached stay zero. When a
/// job is retried, the timings describe the final attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Looking the job key up in the on-disk result cache.
    pub cache_lookup: Duration,
    /// `GpuSimulator::try_new`: config validation and trace-source
    /// setup — the "decode" side of an attempt.
    pub build: Duration,
    /// Running the simulation itself.
    pub simulate: Duration,
    /// Persisting the fresh result into the cache.
    pub store: Duration,
}

/// Reusable executor for resolved campaign jobs: cache consultation,
/// simulation, retries, panic isolation, and cancellation.
#[derive(Debug, Clone)]
pub struct JobRunner {
    opts: ExecutorOptions,
    cache: ResultCache,
    checkpoint_dir: Option<PathBuf>,
}

impl JobRunner {
    /// A runner with the given pool options and result cache.
    pub fn new(opts: ExecutorOptions, cache: ResultCache) -> Self {
        JobRunner {
            opts,
            cache,
            checkpoint_dir: None,
        }
    }

    /// Checkpoint every job at kernel boundaries into `dir` (one
    /// `<key>.sstbckpt` per job, named by the job's cache key). A killed
    /// attempt leaves its last boundary snapshot behind; the next attempt
    /// of the same job resumes from it instead of starting over, and the
    /// snapshot is removed once the job completes.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The directory jobs checkpoint into, when enabled.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    /// Where this job's boundary snapshot lives, when checkpointing is on.
    pub fn snapshot_path(&self, job: &ResolvedJob) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("{}.sstbckpt", job.key_hex())))
    }

    /// The runner's pool options.
    pub fn options(&self) -> &ExecutorOptions {
        &self.opts
    }

    /// The runner's on-disk result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Execute `jobs` on the internal worker pool: consult the cache,
    /// simulate misses, store fresh results, retry failures. Jobs not yet
    /// started when `cancel` trips come back as [`JobStatus::Cancelled`].
    /// Outcomes are in job order.
    pub fn run(&self, jobs: &[ResolvedJob], cancel: &CancelToken) -> Vec<JobOutcome> {
        let runs = run_jobs_cancellable(
            jobs,
            &self.opts,
            cancel,
            |job| job.spec.label(),
            |_, job| self.attempt(job),
        );

        jobs.iter().zip(runs).map(outcome_of).collect()
    }

    /// Execute exactly one job on the *calling* thread, with the same
    /// cache/retry/panic-isolation lifecycle as [`JobRunner::run`].
    ///
    /// This is the building block for external schedulers (the serve
    /// daemon's worker slots): they decide *when and where* a job runs,
    /// the runner decides *how*.
    pub fn run_one(&self, job: &ResolvedJob, cancel: &CancelToken) -> JobOutcome {
        self.run_one_timed(job, cancel).0
    }

    /// Like [`JobRunner::run_one`], but also reports where the wall time of
    /// the (final) attempt went, stage by stage.
    pub fn run_one_timed(
        &self,
        job: &ResolvedJob,
        cancel: &CancelToken,
    ) -> (JobOutcome, StageTimings) {
        let single = std::slice::from_ref(job);
        let mut opts = self.opts.clone();
        opts.workers = 1;
        opts.heartbeat = None;
        let timings = Mutex::new(StageTimings::default());
        let runs = run_jobs_cancellable(
            single,
            &opts,
            cancel,
            |job| job.spec.label(),
            |_, job| self.attempt_timed(job, &timings),
        );
        let run = runs.into_iter().next().expect("one job in, one run out");
        let outcome = outcome_of((job, run));
        let timings = timings.into_inner().unwrap_or_else(|p| p.into_inner());
        (outcome, timings)
    }

    /// One cache-check → simulate → store attempt. `Ok((result, true))`
    /// means a cache hit.
    fn attempt(
        &self,
        job: &ResolvedJob,
    ) -> Result<(swiftsim_core::SimulationResult, bool), String> {
        self.attempt_timed(job, &Mutex::new(StageTimings::default()))
    }

    /// The attempt body, publishing stage durations into `timings` at each
    /// stage boundary (so even a failing attempt reports the stages it
    /// reached). The cell is a `Mutex` because the executor's panic
    /// isolation runs attempts under `catch_unwind`.
    fn attempt_timed(
        &self,
        job: &ResolvedJob,
        timings: &Mutex<StageTimings>,
    ) -> Result<(swiftsim_core::SimulationResult, bool), String> {
        let publish = |t: StageTimings| {
            *timings.lock().unwrap_or_else(|p| p.into_inner()) = t;
        };
        // A snapshot left by an earlier (killed) attempt of this exact job.
        // Its digest is folded into the cache key below: a resumed result
        // is only interchangeable with a fresh one relative to the snapshot
        // it actually grew from, so a different (or tampered) snapshot must
        // not be served a stale entry. Unreadable snapshots are discarded
        // up front rather than failing the attempt.
        let snapshot_path = self.snapshot_path(job);
        let resume_digest = snapshot_path.as_ref().filter(|p| p.exists()).and_then(|p| {
            match Snapshot::read_from(p) {
                Ok(snap) => Some(snap.digest()),
                Err(_) => {
                    let _ = std::fs::remove_file(p);
                    None
                }
            }
        });
        let key = match resume_digest {
            Some(digest) => fold_resume_key(job.key, digest),
            None => job.key,
        };

        let mut t = StageTimings::default();
        let t0 = Instant::now();
        // A completed job's base-key entry satisfies the lookup even when a
        // snapshot lingers (the resumed run would reproduce it bit for bit).
        let hit = self.cache.lookup(key).or_else(|| {
            (key != job.key)
                .then(|| self.cache.lookup(job.key))
                .flatten()
        });
        t.cache_lookup = t0.elapsed();
        publish(t);
        if let Some(hit) = hit {
            return Ok((hit, true));
        }
        let t1 = Instant::now();
        let mut options = RunOptions::default()
            .with_fidelity(job.fidelity)
            .with_threads(job.spec.threads)
            .with_profile(self.opts.profile);
        if let Some(path) = &snapshot_path {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            options = options.with_checkpoint_out(path);
            if resume_digest.is_some() {
                options = options.with_resume(path);
            }
        }
        let sim = GpuSimulator::try_new(job.cfg.clone(), &options).map_err(|e| e.to_string())?;
        t.build = t1.elapsed();
        publish(t);
        let t2 = Instant::now();
        let result = match sim.run(job.app.as_ref()) {
            Ok(result) => result,
            Err(SimError::Checkpoint { .. }) if resume_digest.is_some() => {
                // The snapshot no longer matches the job (config or trace
                // moved underneath it, or it was corrupted after the read
                // above). Drop it and redo the attempt from scratch — the
                // recursion terminates because the snapshot is gone.
                if let Some(path) = &snapshot_path {
                    let _ = std::fs::remove_file(path);
                }
                return self.attempt_timed(job, timings);
            }
            Err(e) => return Err(e.to_string()),
        };
        t.simulate = t2.elapsed();
        publish(t);
        let t3 = Instant::now();
        // Store under the base key (the canonical complete-job result;
        // resumed runs are bit-identical to fresh ones, proven by the
        // checkpoint round-trip suite) and drop the now-redundant snapshot
        // so the next attempt of this job is a plain base-key hit.
        self.cache.store(job.key, &job.spec.label(), &result);
        if key != job.key {
            self.cache.store(key, &job.spec.label(), &result);
        }
        if let Some(path) = &snapshot_path {
            let _ = std::fs::remove_file(path);
        }
        t.store = t3.elapsed();
        publish(t);
        Ok((result, false))
    }
}

/// Fold a resume snapshot's digest (itself a hash over the snapshot's
/// per-section hashes) into a job's cache key, giving the resumed
/// computation its own identity.
pub fn fold_resume_key(base: u64, snapshot_digest: u64) -> u64 {
    fnv1a64(format!("swiftsim-resume;base={base:016x};snapshot={snapshot_digest:016x}").as_bytes())
}

/// Map one executor run back onto the job it executed.
fn outcome_of(
    (job, run): (
        &ResolvedJob,
        crate::executor::JobRun<(swiftsim_core::SimulationResult, bool)>,
    ),
) -> JobOutcome {
    let (status, attempts) = match (run.result, run.cancelled) {
        (_, true) => (JobStatus::Cancelled, 0),
        (Ok((result, true)), _) => (JobStatus::Cached(result), 0),
        (Ok((result, false)), _) => (JobStatus::Completed(result), run.attempts),
        (Err(error), _) => (JobStatus::Failed { error }, run.attempts),
    };
    JobOutcome {
        index: job.spec.index,
        label: job.spec.label(),
        status,
        attempts,
        wall: run.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheMode;
    use crate::spec::CampaignSpec;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swiftsim-runner-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_jobs(n_schedulers: usize) -> Vec<ResolvedJob> {
        let scheds = ["gto", "lrr", "two_level"][..n_schedulers].join(", ");
        CampaignSpec::parse(&format!(
            "workload = nw\nscale = tiny\npreset = swift-memory\nscheduler = {scheds}\n"
        ))
        .unwrap()
        .resolve()
        .unwrap()
    }

    #[test]
    fn run_one_matches_pool_run() {
        let jobs = tiny_jobs(2);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(scratch_dir("one"), CacheMode::Off),
        );
        let pooled = runner.run(&jobs, &CancelToken::new());
        let single = runner.run_one(&jobs[0], &CancelToken::new());
        let (JobStatus::Completed(a), JobStatus::Completed(b)) =
            (&pooled[0].status, &single.status)
        else {
            panic!("both must complete: {pooled:?} / {single:?}");
        };
        assert_eq!(a.cycles, b.cycles, "same job, same prediction");
        assert_eq!(single.index, jobs[0].spec.index);
    }

    #[test]
    fn cancelled_token_skips_unstarted_jobs() {
        let jobs = tiny_jobs(3);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(scratch_dir("cancel"), CacheMode::Off),
        );
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcomes = runner.run(&jobs, &cancel);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert_eq!(o.status, JobStatus::Cancelled, "{o:?}");
            assert_eq!(o.attempts, 0);
        }
        // A single-job run honors the token the same way.
        let one = runner.run_one(&jobs[0], &cancel);
        assert_eq!(one.status, JobStatus::Cancelled);
    }

    #[test]
    fn run_one_timed_attributes_stages() {
        let dir = scratch_dir("timed");
        let jobs = tiny_jobs(1);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(dir.clone(), CacheMode::Use),
        );
        let (fresh, t) = runner.run_one_timed(&jobs[0], &CancelToken::new());
        assert!(matches!(fresh.status, JobStatus::Completed(_)), "{fresh:?}");
        assert!(t.simulate > Duration::ZERO, "{t:?}");
        // The cached re-run never reaches the simulate stage.
        let (cached, t2) = runner.run_one_timed(&jobs[0], &CancelToken::new());
        assert!(matches!(cached.status, JobStatus::Cached(_)), "{cached:?}");
        assert_eq!(t2.simulate, Duration::ZERO, "{t2:?}");
        assert_eq!(t2.build, Duration::ZERO, "{t2:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A multi-kernel job so a `halt_after`-interrupted attempt genuinely
    /// stops mid-application.
    fn backprop_job() -> Vec<ResolvedJob> {
        CampaignSpec::parse("workload = backprop\nscale = tiny\npreset = swift-memory\n")
            .unwrap()
            .resolve()
            .unwrap()
    }

    #[test]
    fn fold_resume_key_is_stable_and_distinct() {
        let base = 0x1234_5678_9abc_def0u64;
        let folded = fold_resume_key(base, 7);
        assert_eq!(folded, fold_resume_key(base, 7), "deterministic");
        assert_ne!(folded, base, "a resumed computation has its own key");
        assert_ne!(folded, fold_resume_key(base, 8), "digest-sensitive");
        assert_ne!(folded, fold_resume_key(base ^ 1, 7), "base-sensitive");
    }

    #[test]
    fn interrupted_job_resumes_and_matches_a_fresh_run() {
        let cache_dir = scratch_dir("ckpt-cache");
        let ckpt_dir = scratch_dir("ckpt-snaps");
        let jobs = backprop_job();
        let job = &jobs[0];
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(cache_dir.clone(), CacheMode::Use),
        )
        .with_checkpoint_dir(ckpt_dir.clone());
        let snap_path = runner.snapshot_path(job).expect("checkpointing is on");
        std::fs::create_dir_all(&ckpt_dir).unwrap();

        // "Kill" an attempt mid-application: the same configuration run
        // with halt_after leaves its boundary snapshot in the job's slot.
        let halted = RunOptions::default()
            .with_fidelity(job.fidelity)
            .with_threads(job.spec.threads)
            .with_checkpoint_out(&snap_path)
            .with_halt_after(1);
        let partial = GpuSimulator::try_new(job.cfg.clone(), &halted)
            .unwrap()
            .run(job.app.as_ref())
            .unwrap();
        assert_eq!(partial.kernels.len(), 1, "halted after the first kernel");
        let digest = Snapshot::read_from(&snap_path).unwrap().digest();

        // The next attempt resumes from the snapshot and completes.
        let outcome = runner.run_one(job, &CancelToken::new());
        let JobStatus::Completed(resumed) = &outcome.status else {
            panic!("resumed attempt must complete: {outcome:?}");
        };
        assert!(resumed.kernels.len() > 1, "covers the whole application");
        assert!(!snap_path.exists(), "snapshot is dropped on completion");
        // The result is canonical: stored under the base key and the
        // folded resume key alike.
        assert!(runner.cache().lookup(job.key).is_some());
        assert!(runner
            .cache()
            .lookup(fold_resume_key(job.key, digest))
            .is_some());

        // Bit-identical to an uninterrupted run of the same job.
        let fresh_runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(scratch_dir("ckpt-fresh"), CacheMode::Off),
        );
        let fresh = fresh_runner.run_one(job, &CancelToken::new());
        let JobStatus::Completed(fresh) = &fresh.status else {
            panic!("fresh run must complete: {fresh:?}");
        };
        assert_eq!(resumed.cycles, fresh.cycles);
        assert_eq!(resumed.kernels, fresh.kernels);
        assert_eq!(resumed.metrics, fresh.metrics);

        let _ = std::fs::remove_dir_all(&cache_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn corrupt_snapshot_is_discarded_and_the_job_completes() {
        let cache_dir = scratch_dir("ckpt-bad-cache");
        let ckpt_dir = scratch_dir("ckpt-bad-snaps");
        let jobs = backprop_job();
        let job = &jobs[0];
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(cache_dir.clone(), CacheMode::Off),
        )
        .with_checkpoint_dir(ckpt_dir.clone());
        let snap_path = runner.snapshot_path(job).unwrap();
        std::fs::create_dir_all(&ckpt_dir).unwrap();
        std::fs::write(&snap_path, "not a snapshot").unwrap();

        let outcome = runner.run_one(job, &CancelToken::new());
        assert!(
            matches!(outcome.status, JobStatus::Completed(_)),
            "a corrupt snapshot must not fail the job: {outcome:?}"
        );
        assert!(!snap_path.exists(), "the corrupt snapshot is removed");

        let _ = std::fs::remove_dir_all(&cache_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn run_one_hits_the_shared_disk_cache() {
        let dir = scratch_dir("disk");
        let jobs = tiny_jobs(1);
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(dir.clone(), CacheMode::Use),
        );
        let first = runner.run_one(&jobs[0], &CancelToken::new());
        assert!(matches!(first.status, JobStatus::Completed(_)), "{first:?}");
        let second = runner.run_one(&jobs[0], &CancelToken::new());
        let JobStatus::Cached(cached) = &second.status else {
            panic!("second run must hit the cache: {second:?}");
        };
        let JobStatus::Completed(fresh) = &first.status else {
            unreachable!();
        };
        assert_eq!(cached.cycles, fresh.cycles);
        assert_eq!(second.attempts, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
