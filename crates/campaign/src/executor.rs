//! The campaign worker pool: whole simulations in parallel, with per-job
//! panic isolation and bounded retries.
//!
//! This is the *coarse-grained* parallelism axis ("Parallelizing a modern
//! GPU simulator" calls it simulation-level): independent jobs on
//! independent threads, embarrassingly parallel. It composes with the
//! *fine-grained* SM-sharded parallelism inside `swiftsim-core` — a
//! campaign of N jobs each using M shard threads runs N×M workers at peak.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use swiftsim_core::{panic_message, SimulationResult};

/// A shared cancellation flag: cancel once, observed by every holder.
///
/// Cancellation is cooperative and job-granular: a job that has not started
/// when the token trips is never started (its [`JobRun`] comes back with
/// [`JobRun::cancelled`] set); a job already simulating runs to completion
/// — the simulator has no mid-run interruption point — and its result is
/// still returned.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trip the token. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Worker-pool configuration.
#[derive(Debug, Clone)]
pub struct ExecutorOptions {
    /// Concurrent workers; `0` means one per available CPU. Always clamped
    /// to the job count.
    pub workers: usize,
    /// Re-runs granted to a job that errors or panics.
    pub max_retries: u32,
    /// Print one line per finished job to stderr.
    pub progress: bool,
    /// Print a periodic `[heartbeat]` status line to stderr while jobs are
    /// still running, at this interval.
    pub heartbeat: Option<Duration>,
    /// Build each job's simulator with self-profiling enabled.
    pub profile: bool,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            workers: 0,
            max_retries: 1,
            progress: false,
            heartbeat: None,
            profile: false,
        }
    }
}

impl ExecutorOptions {
    /// Effective worker count for `n` jobs.
    pub fn effective_workers(&self, n: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, n.max(1))
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Simulated in this run.
    Completed(SimulationResult),
    /// Served from the result cache.
    Cached(SimulationResult),
    /// All attempts errored or panicked; the message is the last failure.
    Failed {
        /// Last error or panic message.
        error: String,
    },
    /// Never started: its [`CancelToken`] tripped first.
    Cancelled,
}

/// Outcome and accounting of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's index in the campaign's expansion order.
    pub index: usize,
    /// The job's human-readable label.
    pub label: String,
    /// How it ended.
    pub status: JobStatus,
    /// Attempts consumed (0 for cache hits, else ≥ 1).
    pub attempts: u32,
    /// Wall-clock time spent on the job, including failed attempts.
    pub wall: Duration,
}

/// One generic job execution: result, attempts consumed, wall time.
#[derive(Debug, Clone)]
pub struct JobRun<R> {
    /// `Ok` from the first successful attempt, or the last failure — an
    /// error string, with panics rendered as `panic: <message>`.
    pub result: Result<R, String>,
    /// Attempts consumed (≥ 1; 0 when the job was cancelled before it
    /// started).
    pub attempts: u32,
    /// Wall time across all attempts.
    pub wall: Duration,
    /// The job never started because the pool's [`CancelToken`] tripped;
    /// `result` holds `Err("cancelled")`.
    pub cancelled: bool,
}

/// Run `run` over every job on a worker pool, isolating panics and
/// retrying failures up to `opts.max_retries` extra attempts.
///
/// Results come back in job order regardless of scheduling. A panic in one
/// job is caught ([`catch_unwind`]) and becomes that job's `Err`; the pool
/// and the other jobs are unaffected.
pub fn run_jobs<J, R>(
    jobs: &[J],
    opts: &ExecutorOptions,
    label: impl Fn(&J) -> String + Sync,
    run: impl Fn(usize, &J) -> Result<R, String> + Sync,
) -> Vec<JobRun<R>>
where
    J: Sync,
    R: Send,
{
    run_jobs_cancellable(jobs, opts, &CancelToken::new(), label, run)
}

/// [`run_jobs`] with a [`CancelToken`]: jobs not yet started when the token
/// trips are skipped and come back with [`JobRun::cancelled`] set.
pub fn run_jobs_cancellable<J, R>(
    jobs: &[J],
    opts: &ExecutorOptions,
    cancel: &CancelToken,
    label: impl Fn(&J) -> String + Sync,
    run: impl Fn(usize, &J) -> Result<R, String> + Sync,
) -> Vec<JobRun<R>>
where
    J: Sync,
    R: Send,
{
    let workers = opts.effective_workers(jobs.len());
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<JobRun<R>>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };

                let started = Instant::now();
                let mut attempts = 0;
                let mut was_cancelled = false;
                let result = loop {
                    if cancel.is_cancelled() {
                        was_cancelled = attempts == 0;
                        break Err("cancelled".to_owned());
                    }
                    attempts += 1;
                    let attempt =
                        catch_unwind(AssertUnwindSafe(|| run(i, job))).unwrap_or_else(|payload| {
                            Err(format!("panic: {}", panic_message(payload.as_ref())))
                        });
                    match attempt {
                        Ok(r) => break Ok(r),
                        Err(e) if attempts > opts.max_retries => break Err(e),
                        Err(_) => {}
                    }
                };
                let outcome = JobRun {
                    result,
                    attempts,
                    wall: started.elapsed(),
                    cancelled: was_cancelled,
                };

                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if opts.progress {
                    let status = match &outcome.result {
                        Ok(_) => "ok".to_owned(),
                        Err(e) => format!("FAILED: {e}"),
                    };
                    eprintln!(
                        "[{finished}/{}] {} — {status} ({:.1} ms, {} attempt{})",
                        jobs.len(),
                        label(job),
                        outcome.wall.as_secs_f64() * 1e3,
                        outcome.attempts,
                        if outcome.attempts == 1 { "" } else { "s" },
                    );
                }

                slots.lock().expect("result slots poisoned")[i] = Some(outcome);
            });
        }

        // The scope's own thread would otherwise just block at the scope
        // end; with a heartbeat configured it polls the done counter and
        // reports liveness for long sweeps.
        if let Some(period) = opts.heartbeat {
            let started = Instant::now();
            let mut last_beat = Instant::now();
            while done.load(Ordering::Relaxed) < jobs.len() {
                std::thread::sleep(period.min(Duration::from_millis(50)));
                if last_beat.elapsed() >= period && done.load(Ordering::Relaxed) < jobs.len() {
                    last_beat = Instant::now();
                    eprintln!(
                        "[heartbeat] {}/{} jobs done, {:.1} s elapsed",
                        done.load(Ordering::Relaxed),
                        jobs.len(),
                        started.elapsed().as_secs_f64(),
                    );
                }
            }
        }
    });

    slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Condvar;

    fn opts(workers: usize, max_retries: u32) -> ExecutorOptions {
        ExecutorOptions {
            workers,
            max_retries,
            progress: false,
            heartbeat: None,
            profile: false,
        }
    }

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<u64> = (0..32).collect();
        let runs = run_jobs(
            &jobs,
            &opts(4, 0),
            |_| String::new(),
            |_, &j| {
                // Stagger completion so out-of-order finishes are likely.
                std::thread::sleep(Duration::from_micros((32 - j) * 50));
                Ok(j * 10)
            },
        );
        let values: Vec<u64> = runs.into_iter().map(|r| r.result.unwrap()).collect();
        assert_eq!(values, (0..32).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<usize> = (0..8).collect();
        let runs = run_jobs(
            &jobs,
            &opts(3, 0),
            |_| String::new(),
            |_, &j| {
                if j == 5 {
                    panic!("injected failure in job {j}");
                }
                Ok(j)
            },
        );
        for (j, run) in runs.iter().enumerate() {
            if j == 5 {
                let err = run.result.as_ref().unwrap_err();
                assert!(err.contains("panic"), "{err}");
                assert!(err.contains("injected failure in job 5"), "{err}");
            } else {
                assert_eq!(*run.result.as_ref().unwrap(), j, "job {j} must complete");
            }
        }
    }

    #[test]
    fn failures_are_retried_within_bounds() {
        let tries = AtomicUsize::new(0);
        let runs = run_jobs(
            &[()],
            &opts(1, 3),
            |_| String::new(),
            |_, ()| {
                // Fails twice, then succeeds: needs 2 retries of the 3 granted.
                if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err("flaky".to_owned())
                } else {
                    Ok(())
                }
            },
        );
        assert!(runs[0].result.is_ok());
        assert_eq!(runs[0].attempts, 3);

        let runs = run_jobs(
            &[()],
            &opts(1, 1),
            |_| String::new(),
            |_, ()| Err::<(), _>("always down".to_owned()),
        );
        assert_eq!(runs[0].result.as_ref().unwrap_err(), "always down");
        assert_eq!(runs[0].attempts, 2, "initial try + 1 retry");
    }

    #[test]
    fn two_workers_run_jobs_concurrently() {
        // Both jobs block until the *other* is also inside the runner; only
        // genuinely concurrent execution lets them release each other.
        let gate = Mutex::new(0usize);
        let cv = Condvar::new();
        let jobs = [0, 1];
        let runs = run_jobs(
            &jobs,
            &opts(2, 0),
            |_| String::new(),
            |_, _| {
                let mut inside = gate.lock().unwrap();
                *inside += 1;
                cv.notify_all();
                let (guard, timeout) = cv
                    .wait_timeout_while(inside, Duration::from_secs(10), |n| *n < 2)
                    .unwrap();
                drop(guard);
                if timeout.timed_out() {
                    Err("never saw a concurrent peer".to_owned())
                } else {
                    Ok(())
                }
            },
        );
        assert!(
            runs.iter().all(|r| r.result.is_ok()),
            "jobs must overlap in time with 2 workers: {:?}",
            runs.iter().map(|r| r.result.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn heartbeat_monitor_does_not_wedge_the_pool() {
        // The monitor runs on the scope's main thread; the pool must still
        // drain every job and return, even with a sub-job-length interval.
        let jobs: Vec<u64> = (0..6).collect();
        let mut o = opts(2, 0);
        o.heartbeat = Some(Duration::from_millis(1));
        let runs = run_jobs(
            &jobs,
            &o,
            |_| String::new(),
            |_, &j| {
                std::thread::sleep(Duration::from_millis(10));
                Ok(j)
            },
        );
        let values: Vec<u64> = runs.into_iter().map(|r| r.result.unwrap()).collect();
        assert_eq!(values, jobs);
    }

    #[test]
    fn worker_count_is_clamped() {
        let o = opts(16, 0);
        assert_eq!(o.effective_workers(3), 3);
        assert_eq!(o.effective_workers(0), 1);
        assert!(opts(0, 0).effective_workers(64) >= 1);
    }
}
