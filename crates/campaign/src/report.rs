//! Campaign results: structured rows, JSON-lines emission, summary table.

use crate::executor::{JobOutcome, JobStatus};
use crate::spec::ResolvedJob;
use swiftsim_core::SimulationResult;
use swiftsim_metrics::{Json, Table};

/// How a row ended (the data-less mirror of [`JobStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// Simulated in this run.
    Ok,
    /// Served from the result cache.
    Cached,
    /// All attempts failed.
    Failed,
    /// Never started: the run's [`crate::CancelToken`] tripped first.
    Cancelled,
}

impl RowStatus {
    /// Lower-case name used in JSONL and tables.
    pub fn name(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Cached => "cached",
            RowStatus::Failed => "failed",
            RowStatus::Cancelled => "cancelled",
        }
    }
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRow {
    /// Index in expansion order.
    pub index: usize,
    /// Human-readable label.
    pub label: String,
    /// Content-addressed cache key (16 hex digits).
    pub key: String,
    /// Workload/trace name.
    pub workload: String,
    /// GPU name (from the resolved config).
    pub gpu: String,
    /// Simulator preset label.
    pub preset: String,
    /// Per-simulation threads.
    pub threads: usize,
    /// Scheduler override, if any.
    pub scheduler: Option<String>,
    /// Replacement-policy override, if any.
    pub replacement: Option<String>,
    /// Outcome kind.
    pub status: RowStatus,
    /// Attempts consumed (0 for cache hits).
    pub attempts: u32,
    /// Wall time spent on the job in this run.
    pub wall: std::time::Duration,
    /// Freshly simulated row whose wall time exceeded ~3× the median of
    /// this campaign's fresh rows — worth a look before blaming the sweep.
    pub slow: bool,
    /// Failure message, for [`RowStatus::Failed`] rows.
    pub error: Option<String>,
    /// The simulation result, for non-failed rows.
    pub result: Option<SimulationResult>,
}

impl JobRow {
    /// Serialize to the JSONL row schema. The `result` field uses exactly
    /// [`SimulationResult::to_json`]'s schema — the same one `swiftsim
    /// --json` prints for single runs.
    pub fn to_json(&self) -> Json {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => Json::str(s.clone()),
            None => Json::Null,
        };
        Json::obj(vec![
            (
                "job",
                Json::obj(vec![
                    ("index", Json::int(self.index as u64)),
                    ("label", Json::str(&self.label)),
                    ("key", Json::str(&self.key)),
                    ("workload", Json::str(&self.workload)),
                    ("gpu", Json::str(&self.gpu)),
                    ("preset", Json::str(&self.preset)),
                    ("threads", Json::int(self.threads as u64)),
                    ("scheduler", opt_str(&self.scheduler)),
                    ("replacement", opt_str(&self.replacement)),
                ]),
            ),
            ("status", Json::str(self.status.name())),
            ("attempts", Json::int(u64::from(self.attempts))),
            ("wall_us", Json::int(self.wall.as_micros() as u64)),
            ("slow", Json::Bool(self.slow)),
            ("error", opt_str(&self.error)),
            (
                "result",
                match &self.result {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "profile",
                match self.result.as_ref().and_then(|r| r.profile.as_ref()) {
                    Some(p) => p.summary_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Flag freshly simulated rows whose wall time exceeds 3× the median wall
/// time of the campaign's fresh rows. Cached and failed rows are neither
/// counted in the median (a cache hit's wall is I/O, not simulation; a
/// failure's includes retries) nor flagged.
pub(crate) fn mark_slow_rows(rows: &mut [JobRow]) {
    let mut fresh: Vec<std::time::Duration> = rows
        .iter()
        .filter(|r| r.status == RowStatus::Ok)
        .map(|r| r.wall)
        .collect();
    if fresh.len() < 2 {
        return;
    }
    fresh.sort_unstable();
    let median = fresh[fresh.len() / 2];
    if median.is_zero() {
        return;
    }
    for row in rows {
        row.slow = row.status == RowStatus::Ok && row.wall > median * 3;
    }
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// One row per job, in expansion order.
    pub rows: Vec<JobRow>,
}

impl CampaignReport {
    /// Assemble a report from resolved jobs and their outcomes.
    ///
    /// `outcomes` need not be in job order (a service scheduler finishes
    /// jobs as workers free up): each outcome is matched to its job by
    /// [`JobOutcome::index`], so the same set of outcomes always yields the
    /// same report. Every job must have exactly one outcome.
    pub fn from_outcomes(
        name: String,
        jobs: Vec<ResolvedJob>,
        mut outcomes: Vec<JobOutcome>,
    ) -> CampaignReport {
        outcomes.sort_by_key(|o| o.index);
        assert_eq!(
            jobs.len(),
            outcomes.len(),
            "one outcome per job required to build a report"
        );
        let rows = jobs
            .into_iter()
            .zip(outcomes)
            .map(|(job, outcome)| {
                assert_eq!(job.spec.index, outcome.index, "outcome/job mismatch");
                let (status, error, result) = match outcome.status {
                    JobStatus::Completed(r) => (RowStatus::Ok, None, Some(r)),
                    JobStatus::Cached(r) => (RowStatus::Cached, None, Some(r)),
                    JobStatus::Failed { error } => (RowStatus::Failed, Some(error), None),
                    JobStatus::Cancelled => (RowStatus::Cancelled, None, None),
                };
                JobRow {
                    index: job.spec.index,
                    label: job.spec.label(),
                    key: job.key_hex(),
                    workload: match &job.spec.workload {
                        crate::spec::WorkloadSource::Builtin(n)
                        | crate::spec::WorkloadSource::TraceFile(n) => n.clone(),
                    },
                    gpu: job.cfg.name.clone(),
                    preset: job.spec.preset.label().to_owned(),
                    threads: job.spec.threads,
                    scheduler: job.spec.scheduler.map(|s| s.to_string()),
                    replacement: job.spec.replacement.map(|r| r.to_string()),
                    status,
                    attempts: outcome.attempts,
                    wall: outcome.wall,
                    slow: false,
                    error,
                    result,
                }
            })
            .collect();
        let mut report = CampaignReport { name, rows };
        mark_slow_rows(&mut report.rows);
        report
    }

    /// Rows that simulated in this run.
    pub fn completed(&self) -> usize {
        self.count(RowStatus::Ok)
    }

    /// Rows served from the cache.
    pub fn cached(&self) -> usize {
        self.count(RowStatus::Cached)
    }

    /// Rows that failed every attempt.
    pub fn failed(&self) -> usize {
        self.count(RowStatus::Failed)
    }

    /// Rows cancelled before they started.
    pub fn cancelled(&self) -> usize {
        self.count(RowStatus::Cancelled)
    }

    fn count(&self, status: RowStatus) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Find a row by (workload, GPU name, preset label) — the lookup the
    /// figure binaries use to join campaign rows with the silicon oracle.
    pub fn find(&self, workload: &str, gpu: &str, preset: &str) -> Option<&JobRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.gpu == gpu && r.preset == preset)
    }

    /// All rows as JSON lines (one compact object per row, trailing
    /// newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_json().dump());
            out.push('\n');
        }
        out
    }

    /// Per-job summary as a fixed-width table.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(vec![
            "Job",
            "Status",
            "Cycles",
            "IPC",
            "Wall (ms)",
            "Attempts",
        ]);
        for row in &self.rows {
            let (cycles, ipc) = match &row.result {
                Some(r) => (r.cycles.to_string(), format!("{:.3}", r.ipc())),
                None => ("-".to_owned(), "-".to_owned()),
            };
            t.row(vec![
                row.label.clone(),
                match (&row.error, row.slow) {
                    (Some(e), _) => format!("{}: {e}", row.status.name()),
                    (None, true) => format!("{} (slow)", row.status.name()),
                    (None, false) => row.status.name().to_owned(),
                },
                cycles,
                ipc,
                format!("{:.1}", row.wall.as_secs_f64() * 1e3),
                row.attempts.to_string(),
            ]);
        }
        t
    }

    /// Rows flagged as outliers (> 3× the median fresh wall time).
    pub fn slow(&self) -> usize {
        self.rows.iter().filter(|r| r.slow).count()
    }

    /// One-line outcome summary, e.g. `30 jobs: 24 ok, 6 cached, 0 failed`.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{} jobs: {} ok, {} cached, {} failed",
            self.rows.len(),
            self.completed(),
            self.cached(),
            self.failed()
        );
        let cancelled = self.cancelled();
        if cancelled > 0 {
            line.push_str(&format!(", {cancelled} cancelled"));
        }
        let slow = self.slow();
        if slow > 0 {
            line.push_str(&format!(" ({slow} flagged slow)"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn row(index: usize, status: RowStatus, wall_ms: u64) -> JobRow {
        JobRow {
            index,
            label: format!("job{index}"),
            key: format!("{index:016x}"),
            workload: "nw".to_owned(),
            gpu: "g".to_owned(),
            preset: "p".to_owned(),
            threads: 1,
            scheduler: None,
            replacement: None,
            status,
            attempts: u32::from(status != RowStatus::Cached),
            wall: Duration::from_millis(wall_ms),
            slow: false,
            error: None,
            result: None,
        }
    }

    #[test]
    fn slow_rows_are_flagged_against_the_fresh_median() {
        let mut rows = vec![
            row(0, RowStatus::Ok, 10),
            row(1, RowStatus::Ok, 12),
            row(2, RowStatus::Ok, 11),
            row(3, RowStatus::Ok, 100), // ~9x the 11-12 ms median
            // A cached row with an extreme wall must be neither flagged nor
            // allowed to drag the median.
            row(4, RowStatus::Cached, 0),
            row(5, RowStatus::Failed, 500),
        ];
        mark_slow_rows(&mut rows);
        let flags: Vec<bool> = rows.iter().map(|r| r.slow).collect();
        assert_eq!(flags, vec![false, false, false, true, false, false]);

        let report = CampaignReport {
            name: "t".to_owned(),
            rows,
        };
        assert_eq!(report.slow(), 1);
        assert!(report.summary_line().contains("1 flagged slow"));
        assert!(report.summary_table().to_string().contains("ok (slow)"));
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"slow\":true"));
    }

    #[test]
    fn slow_flagging_needs_a_meaningful_median() {
        // One fresh row: no median to compare against, nothing flagged.
        let mut rows = vec![row(0, RowStatus::Ok, 500), row(1, RowStatus::Cached, 1)];
        mark_slow_rows(&mut rows);
        assert!(rows.iter().all(|r| !r.slow));
    }
}
