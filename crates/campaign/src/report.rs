//! Campaign results: structured rows, JSON-lines emission, summary table.

use crate::executor::{JobOutcome, JobStatus};
use crate::spec::ResolvedJob;
use swiftsim_core::SimulationResult;
use swiftsim_metrics::{Json, Table};

/// How a row ended (the data-less mirror of [`JobStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// Simulated in this run.
    Ok,
    /// Served from the result cache.
    Cached,
    /// All attempts failed.
    Failed,
}

impl RowStatus {
    /// Lower-case name used in JSONL and tables.
    pub fn name(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Cached => "cached",
            RowStatus::Failed => "failed",
        }
    }
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRow {
    /// Index in expansion order.
    pub index: usize,
    /// Human-readable label.
    pub label: String,
    /// Content-addressed cache key (16 hex digits).
    pub key: String,
    /// Workload/trace name.
    pub workload: String,
    /// GPU name (from the resolved config).
    pub gpu: String,
    /// Simulator preset label.
    pub preset: String,
    /// Per-simulation threads.
    pub threads: usize,
    /// Scheduler override, if any.
    pub scheduler: Option<String>,
    /// Replacement-policy override, if any.
    pub replacement: Option<String>,
    /// Outcome kind.
    pub status: RowStatus,
    /// Attempts consumed (0 for cache hits).
    pub attempts: u32,
    /// Wall time spent on the job in this run.
    pub wall: std::time::Duration,
    /// Failure message, for [`RowStatus::Failed`] rows.
    pub error: Option<String>,
    /// The simulation result, for non-failed rows.
    pub result: Option<SimulationResult>,
}

impl JobRow {
    /// Serialize to the JSONL row schema. The `result` field uses exactly
    /// [`SimulationResult::to_json`]'s schema — the same one `swiftsim
    /// --json` prints for single runs.
    pub fn to_json(&self) -> Json {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => Json::str(s.clone()),
            None => Json::Null,
        };
        Json::obj(vec![
            (
                "job",
                Json::obj(vec![
                    ("index", Json::int(self.index as u64)),
                    ("label", Json::str(&self.label)),
                    ("key", Json::str(&self.key)),
                    ("workload", Json::str(&self.workload)),
                    ("gpu", Json::str(&self.gpu)),
                    ("preset", Json::str(&self.preset)),
                    ("threads", Json::int(self.threads as u64)),
                    ("scheduler", opt_str(&self.scheduler)),
                    ("replacement", opt_str(&self.replacement)),
                ]),
            ),
            ("status", Json::str(self.status.name())),
            ("attempts", Json::int(u64::from(self.attempts))),
            ("wall_us", Json::int(self.wall.as_micros() as u64)),
            ("error", opt_str(&self.error)),
            (
                "result",
                match &self.result {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// One row per job, in expansion order.
    pub rows: Vec<JobRow>,
}

impl CampaignReport {
    pub(crate) fn new(
        name: String,
        jobs: Vec<ResolvedJob>,
        outcomes: Vec<JobOutcome>,
    ) -> CampaignReport {
        let rows = jobs
            .into_iter()
            .zip(outcomes)
            .map(|(job, outcome)| {
                let (status, error, result) = match outcome.status {
                    JobStatus::Completed(r) => (RowStatus::Ok, None, Some(r)),
                    JobStatus::Cached(r) => (RowStatus::Cached, None, Some(r)),
                    JobStatus::Failed { error } => (RowStatus::Failed, Some(error), None),
                };
                JobRow {
                    index: job.spec.index,
                    label: job.spec.label(),
                    key: job.key_hex(),
                    workload: match &job.spec.workload {
                        crate::spec::WorkloadSource::Builtin(n)
                        | crate::spec::WorkloadSource::TraceFile(n) => n.clone(),
                    },
                    gpu: job.cfg.name.clone(),
                    preset: job.spec.preset.label().to_owned(),
                    threads: job.spec.threads,
                    scheduler: job.spec.scheduler.map(|s| s.to_string()),
                    replacement: job.spec.replacement.map(|r| r.to_string()),
                    status,
                    attempts: outcome.attempts,
                    wall: outcome.wall,
                    error,
                    result,
                }
            })
            .collect();
        CampaignReport { name, rows }
    }

    /// Rows that simulated in this run.
    pub fn completed(&self) -> usize {
        self.count(RowStatus::Ok)
    }

    /// Rows served from the cache.
    pub fn cached(&self) -> usize {
        self.count(RowStatus::Cached)
    }

    /// Rows that failed every attempt.
    pub fn failed(&self) -> usize {
        self.count(RowStatus::Failed)
    }

    fn count(&self, status: RowStatus) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Find a row by (workload, GPU name, preset label) — the lookup the
    /// figure binaries use to join campaign rows with the silicon oracle.
    pub fn find(&self, workload: &str, gpu: &str, preset: &str) -> Option<&JobRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.gpu == gpu && r.preset == preset)
    }

    /// All rows as JSON lines (one compact object per row, trailing
    /// newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_json().dump());
            out.push('\n');
        }
        out
    }

    /// Per-job summary as a fixed-width table.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(vec![
            "Job",
            "Status",
            "Cycles",
            "IPC",
            "Wall (ms)",
            "Attempts",
        ]);
        for row in &self.rows {
            let (cycles, ipc) = match &row.result {
                Some(r) => (r.cycles.to_string(), format!("{:.3}", r.ipc())),
                None => ("-".to_owned(), "-".to_owned()),
            };
            t.row(vec![
                row.label.clone(),
                match &row.error {
                    Some(e) => format!("{}: {e}", row.status.name()),
                    None => row.status.name().to_owned(),
                },
                cycles,
                ipc,
                format!("{:.1}", row.wall.as_secs_f64() * 1e3),
                row.attempts.to_string(),
            ]);
        }
        t
    }

    /// One-line outcome summary, e.g. `30 jobs: 24 ok, 6 cached, 0 failed`.
    pub fn summary_line(&self) -> String {
        format!(
            "{} jobs: {} ok, {} cached, {} failed",
            self.rows.len(),
            self.completed(),
            self.cached(),
            self.failed()
        )
    }
}
